"""§3.3 + §3.4: grow the endpoint registry by crawling portals and by
manual user submission.

Reproduces the paper's census: the registry starts at 610 listed / 110
indexed endpoints; crawling the European Data Portal, the EU Open Data
Portal and IO Data Science of Paris with the Listing 1 DCAT query finds
65 + 9 + 15 endpoints (19 already known), raising the list to 680; twenty
of the new ones extract successfully, raising indexed datasets to 130.
A user then submits one more endpoint manually and gets an e-mail.

Run:  python examples/portal_crawl_and_index.py       (~1 minute)
Pass --small for a scaled-down world that runs in seconds.
"""

from __future__ import annotations

import sys

from repro.core import HBold
from repro.datagen import build_world


def main(small: bool = False) -> None:
    if small:
        world = build_world(indexable=20, broken=10, portal_new_indexable=4, flaky=False)
    else:
        world = build_world(flaky=False)  # the paper's 610-endpoint census
    app = HBold(world.network)

    print("== bootstrap: the old registry ==")
    app.bootstrap_registry(world.listed_urls)
    app.update_all(world.indexable_urls)
    counts = app.counts()
    print(f"listed: {counts['listed']}   indexed: {counts['indexed']}")

    print("\n== crawling the three open data portals (Listing 1) ==")
    found = app.crawl_portals(world.portal_urls)
    for key, label in (
        ("edp", "European Data Portal"),
        ("euodp", "EU Open Data Portal"),
        ("iodata", "IO Data Science of Paris"),
    ):
        print(f"{label}: {found[key]} SPARQL endpoints discovered")
    print(f"net new endpoints after overlap removal: {found['new']}")
    print(f"listed endpoints: {counts['listed']} -> {app.counts()['listed']}")

    print("\n== manual insertion with e-mail notification (§3.4) ==")
    # a user submits one of the freshly discovered endpoints by hand
    target = world.portal_new_indexable[0]
    result = app.submit_endpoint(target, "researcher@example.org")
    print(f"submission of {target}: "
          f"{'indexed' if result.indexed else 'failed'} -- {result.message}")
    for message in app.outbox.sent:
        print(f"mail sent: {message.subject!r}")
    print(f"personal addresses still stored: {app.registry.pending_address_count()}")

    print("\n== extracting the remaining discovered endpoints ==")
    results = app.update_all(world.portal_new_indexable[1:])
    print(f"{sum(results.values())} more endpoints indexed successfully")
    final = app.counts()
    print(f"indexed datasets: {counts['indexed']} -> {final['indexed']}")


if __name__ == "__main__":
    main(small="--small" in sys.argv)
