"""Figure 2 + Figure 7 on the Scholarly Linked Data.

Reproduces the paper's running example end to end: index the Scholarly LD,
start from the Cluster Schema, select the "Event" class, expand step by
step to the full Schema Summary, and render every visualization of §3.5 --
including the hierarchical edge bundling with the Event-focused
domain/range highlighting of Figure 7 -- into one standalone HTML page.

Run:  python examples/scholarly_exploration.py
"""

from __future__ import annotations

import os

from repro.core import HBold
from repro.datagen import scholarly_graph
from repro.endpoint import AlwaysAvailable, EndpointNetwork, SimulationClock, SparqlEndpoint
from repro.viz import save_html_page

OUT_DIR = os.path.join(os.path.dirname(__file__), "output")
URL = "http://scholarlydata.example.org/sparql"


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)

    clock = SimulationClock()
    network = EndpointNetwork(clock=clock)
    network.register(
        SparqlEndpoint(
            URL,
            scholarly_graph(scale=0.15, seed=42),
            clock,
            availability=AlwaysAvailable(),
            title="ScholarlyData",
        )
    )
    app = HBold(network)
    app.bootstrap_registry([URL])
    assert app.index_endpoint(URL)

    summary = app.summary(URL)
    schema = app.cluster_schema(URL)
    print(f"Scholarly LD: {len(summary.nodes)} classes, {summary.total_instances} instances")
    print(f"Cluster Schema: {schema.cluster_count} clusters, Q={schema.modularity:.3f}")

    # ---- the Figure 2 walk ------------------------------------------------
    session = app.explore(URL)
    session.start_from_cluster_schema()
    event = next(n.iri for n in summary.nodes if n.label == "Event")
    figures = []

    step2 = session.select_class(event)
    print(f"\nStep 2 - select 'Event': {step2.node_count} nodes, "
          f"{step2.instance_coverage:.1%} of instances")
    figures.append(
        (
            f"Step 2: the Event class and its connections "
            f"({step2.node_count} nodes, {step2.instance_coverage:.0%} of instances)",
            app.render_exploration(session, iterations=150),
        )
    )

    frontier = session.expandable_classes()
    step3 = session.expand(frontier[0])
    print(f"Step 3 - expand: {step3.node_count} nodes, "
          f"{step3.instance_coverage:.1%} of instances")
    figures.append(
        (
            f"Step 3: further expansion ({step3.node_count} nodes, "
            f"{step3.instance_coverage:.0%} of instances)",
            app.render_exploration(session, iterations=150),
        )
    )

    session.expand_all()
    print(f"Step 4 - full Schema Summary: {len(session.visible_classes)} nodes, "
          f"{session.instance_coverage():.1%} of instances")
    figures.append(
        (
            "Step 4: the complete Schema Summary",
            app.render_exploration(session, iterations=200),
        )
    )

    # ---- Figures 4-6: the Cluster Schema layouts ---------------------------
    figures.append(("Figure 4: Treemap of the Cluster Schema", app.render_treemap(URL)))
    figures.append(("Figure 5: Sunburst of the Cluster Schema", app.render_sunburst(URL)))
    figures.append(("Figure 6: Circle Packing of the Cluster Schema", app.render_circlepack(URL)))

    # ---- Figure 7: edge bundling focused on Event --------------------------
    diagram = app.edge_bundling_diagram(URL, focus="Event")
    domains = sorted(n for n, r in diagram.roles.items() if r in ("domain", "both"))
    ranges = sorted(n for n, r in diagram.roles.items() if r in ("range", "both"))
    print(f"\nFigure 7 focus=Event: domains={domains} ranges={ranges}")
    from repro.viz import render_edge_bundling

    figures.append(
        (
            "Figure 7: Hierarchical Edge Bundling of the Schema Summary "
            "(bold: Event; red: domain classes; green: range classes)",
            render_edge_bundling(diagram),
        )
    )

    target = os.path.join(OUT_DIR, "scholarly_exploration.html")
    save_html_page(
        target,
        "H-BOLD on the Scholarly Linked Data",
        figures,
        intro=(
            "Step-by-step exploration of the Scholarly LD reproducing Figure 2, "
            "plus the four supplementary §3.5 visualizations (Figures 4-7)."
        ),
    )
    print(f"\nwrote {target}")


if __name__ == "__main__":
    main()
