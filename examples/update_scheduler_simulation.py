"""§3.1: the daily update scheduler over a flaky endpoint population.

Simulates 30 days of H-BOLD operations: endpoints flap up and down
(SPARQLES-style availability), the scheduler re-extracts weekly, retries
failed endpoints daily, and skips fresh ones.  Compares the paper's policy
against the naive alternatives on query cost and staleness.

Run:  python examples/update_scheduler_simulation.py
"""

from __future__ import annotations

from repro.core import HBold, UpdateScheduler
from repro.datagen import build_world

DAYS = 30


def run_policy(policy: str) -> dict:
    world = build_world(indexable=25, broken=8, portal_new_indexable=0,
                        seed=21, flaky=True)
    app = HBold(world.network)
    app.bootstrap_registry(world.listed_urls)
    scheduler = UpdateScheduler(app.storage, app.extractor, policy=policy)
    scheduler.run_days(DAYS)
    profile = scheduler.staleness_profile(DAYS)
    profile["final_indexed"] = app.counts()["indexed"]
    return profile


def main() -> None:
    print(f"simulating {DAYS} days over 33 endpoints (25 with data, 8 dead)\n")
    print(f"{'policy':<14} {'attempts':>9} {'successes':>10} {'failures':>9} "
          f"{'indexed':>8} {'staleness(d)':>13}")
    for policy in ("paper", "daily", "weekly-rigid"):
        profile = run_policy(policy)
        print(
            f"{profile['policy']:<14} {profile['attempts']:>9} "
            f"{profile['successes']:>10} {profile['failures']:>9} "
            f"{profile['final_indexed']:>8} {profile['mean_staleness_days']:>13.2f}"
        )
    print(
        "\nThe paper's policy (weekly refresh + daily retry after failure) costs a\n"
        "fraction of the daily policy's queries while keeping staleness close to it;\n"
        "the rigid weekly schedule is cheapest but leaves flaky endpoints stale."
    )


if __name__ == "__main__":
    main()
