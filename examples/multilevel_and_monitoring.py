"""Extensions in action: multilevel abstraction, inferred schema, and the
SPARQLES-style availability monitor.

Three capabilities beyond the paper's shipped feature set (all grounded in
its text): the "different levels of abstraction" promised by the abstract,
generalized past two levels; the LODeX "inferred schema" via
``a/rdfs:subClassOf*``; and the availability monitoring that §3.1 builds
its scheduling policy on.

Run:  python examples/multilevel_and_monitoring.py
"""

from __future__ import annotations

import os

from repro.core import HBold, IndexExtractor
from repro.datagen import big_lod_graph, build_world
from repro.endpoint import (
    AlwaysAvailable,
    AvailabilityMonitor,
    EndpointNetwork,
    SimulationClock,
    SparqlClient,
    SparqlEndpoint,
)
from repro.viz import render_sunburst

OUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def multilevel_demo() -> None:
    print("== multilevel abstraction on a 150-class Big-LOD source ==")
    clock = SimulationClock()
    network = EndpointNetwork(clock=clock)
    url = "http://biglod.example.org/sparql"
    network.register(
        SparqlEndpoint(
            url,
            big_lod_graph(class_count=150, group_count=10, instances_per_class=5, seed=8),
            clock,
            availability=AlwaysAvailable(),
        )
    )
    app = HBold(network)
    app.bootstrap_registry([url])
    assert app.index_endpoint(url)

    hierarchy = app.multilevel_hierarchy(url)
    print(f"abstraction pyramid: {hierarchy}")
    for level in hierarchy.levels:
        print(f"  level {level.level}: {level.group_count} units")

    tree = hierarchy.to_hierarchy_node()
    doc = render_sunburst(tree, radius=340)
    target = os.path.join(OUT_DIR, "multilevel_sunburst.svg")
    doc.save(target)
    print(f"wrote {target} ({tree.height()}-ring sunburst)\n")


def inferred_schema_demo() -> None:
    print("== inferred schema (a/rdfs:subClassOf*) on the Scholarly LD ==")
    from repro.datagen import scholarly_graph

    clock = SimulationClock()
    network = EndpointNetwork(clock=clock)
    url = "http://scholarly.example.org/sparql"
    network.register(
        SparqlEndpoint(url, scholarly_graph(scale=0.1, seed=42), clock,
                       availability=AlwaysAvailable())
    )
    client = SparqlClient(network)
    direct = IndexExtractor(client).extract(url)
    inferred = IndexExtractor(client, infer_types=True).extract(url)
    direct_counts = {c.label: c.instance_count for c in direct.classes}
    inferred_counts = {c.label: c.instance_count for c in inferred.classes}
    print(f"{'class':<16} {'direct':>8} {'inferred':>9}")
    for label in ("Event", "AcademicEvent", "Conference", "Document"):
        print(f"{label:<16} {direct_counts.get(label, 0):>8} "
              f"{inferred_counts.get(label, 0):>9}")
    print()


def monitoring_demo() -> None:
    print("== 30 days of SPARQLES-style availability monitoring ==")
    world = build_world(indexable=15, broken=5, portal_new_indexable=0,
                        seed=12, flaky=True)
    monitor = AvailabilityMonitor(world.network)
    monitor.run_days(30, urls=world.indexable_urls + world.broken_urls)

    census = monitor.bucket_census()
    print("availability classes (SPARQLES buckets):")
    for label, count in census.items():
        print(f"  {label:>7}: {count} endpoints")
    flapping = monitor.flapping_endpoints(min_transitions=4)
    print(f"flapping endpoints (>=4 up/down transitions): {len(flapping)}")
    if flapping:
        url = flapping[0]
        states = "".join("U" if r.alive else "." for r in monitor.history(url))
        print(f"  e.g. {url}: {states}")
    print("(the daily-retry rule of §3.1 exists precisely for these)")


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    multilevel_demo()
    inferred_schema_demo()
    monitoring_demo()


if __name__ == "__main__":
    main()
