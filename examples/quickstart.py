"""Quickstart: index a Linked Data endpoint and explore it with H-BOLD.

Builds a small simulated endpoint world, runs the full server pipeline
(index extraction -> Schema Summary -> Cluster Schema -> storage), then
walks the presentation layer: cluster view, class selection, expansion,
and one figure per §3.5 layout written next to this script.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import os

from repro.core import HBold
from repro.datagen import build_world

OUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)

    # A miniature internet: 12 endpoints with data, 3 dead ones.
    world = build_world(indexable=12, broken=3, portal_new_indexable=0, flaky=False)
    app = HBold(world.network)
    app.bootstrap_registry(world.listed_urls)

    print("== indexing ==")
    results = app.update_all(world.indexable_urls)
    print(f"indexed {sum(results.values())}/{len(results)} endpoints")
    print(f"registry: {app.counts()}")

    # Pick one dataset and look at what the server layer produced.
    url = world.indexable_urls[3]
    summary = app.summary(url)
    schema = app.cluster_schema(url)
    print(f"\n== {url} ==")
    print(f"schema summary: {len(summary.nodes)} classes, {len(summary.edges)} arcs, "
          f"{summary.total_instances} instances")
    print(f"cluster schema: {schema.cluster_count} clusters "
          f"(algorithm={schema.algorithm}, modularity={schema.modularity:.3f})")
    for cluster in schema.clusters:
        print(f"  cluster {cluster.cluster_id} '{cluster.label}': "
              f"{cluster.size} classes, {cluster.instance_count} instances")

    # Interactive exploration, Figure 2 style.
    print("\n== exploration ==")
    session = app.explore(url)
    session.start_from_cluster_schema()
    start_class = max(summary.nodes, key=lambda n: summary.degree(n.iri)).iri
    step = session.select_class(start_class)
    print(f"selected {summary.node(start_class).label}: {step.node_count} nodes shown, "
          f"{step.instance_coverage:.0%} of instances")
    for step in session.expand_all():
        print(f"  {step.action}: {step.node_count} nodes, "
              f"{step.instance_coverage:.0%} of instances")

    # Figures.
    print("\n== figures ==")
    for name, method in (
        ("treemap.svg", app.render_treemap),
        ("sunburst.svg", app.render_sunburst),
        ("circlepack.svg", app.render_circlepack),
    ):
        path = os.path.join(OUT_DIR, name)
        method(url).save(path)
        print(f"wrote {path}")
    path = os.path.join(OUT_DIR, "edge_bundling.svg")
    app.render_edge_bundling(url).save(path)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
