"""The visual query interface: from clicks on the schema to SPARQL results.

H-BOLD "provides a visual interface for querying the endpoint that
automatically generates SPARQL queries".  This example scripts the same
interactions a user performs in the UI -- pick a focus class, tick
attributes, follow connections, add a filter -- and runs the generated
query against the (simulated) endpoint.

Run:  python examples/visual_query_builder.py
"""

from __future__ import annotations

from repro.core import HBold
from repro.datagen import trafair_graph
from repro.endpoint import AlwaysAvailable, EndpointNetwork, SimulationClock, SparqlEndpoint

URL = "http://trafair.example.org/sparql"


def main() -> None:
    clock = SimulationClock()
    network = EndpointNetwork(clock=clock)
    network.register(
        SparqlEndpoint(
            URL,
            trafair_graph(scale=0.3, seed=5),
            clock,
            availability=AlwaysAvailable(),
            title="TRAFAIR air quality",
        )
    )
    app = HBold(network)
    app.bootstrap_registry([URL])
    assert app.index_endpoint(URL)
    summary = app.summary(URL)

    ns = "http://trafair.example.org/"
    print("classes available for querying:")
    for node in sorted(summary.nodes, key=lambda n: -n.instance_count):
        print(f"  {node.label:<18} {node.instance_count:>6} instances  "
              f"attrs: {[a.rsplit('/', 1)[-1] for a in node.datatype_properties]}")

    # --- query 1: observations with their measured value ---------------------
    print("\n== query 1: Observation values ==")
    query = app.visual_query(URL, ns + "Observation")
    value_var = query.select_attribute(ns + "observedValue")
    query.set_limit(5)
    print(query.to_sparql())
    result = app.run_visual_query(URL, query)
    for row in result:
        print("  observation:", row[query.focus_variable], "value:", row[value_var])

    # --- query 2: follow a connection: Observation -> Sensor ----------------
    print("\n== query 2: which sensor produced each observation ==")
    query = app.visual_query(URL, ns + "Observation")
    sensor_var = query.follow_connection(ns + "observationBy", ns + "Sensor")
    serial_var = query.select_connection_attribute(sensor_var, ns + "serialNumber")
    query.set_limit(5)
    print(query.to_sparql())
    for row in app.run_visual_query(URL, query):
        print(f"  {row[query.focus_variable]} by sensor {row[serial_var]}")

    # --- query 3: backward connection + filter ------------------------------
    print("\n== query 3: stations hosting a calibrated low-cost sensor ==")
    query = app.visual_query(URL, ns + "Sensor")
    station_var = query.follow_connection(ns + "sensorAtStation", ns + "Station")
    lowcost_var = query.follow_connection(
        ns + "calibratedAgainst", ns + "LowCostSensor", forward=False
    )
    name_var = query.select_connection_attribute(station_var, ns + "name")
    query.add_filter(f"BOUND(?{lowcost_var})")
    print(query.to_sparql())
    result = app.run_visual_query(URL, query)
    stations = sorted({str(row[name_var]) for row in result if row[name_var]})
    print(f"  {len(result)} rows; {len(stations)} distinct stations")
    for station in stations[:5]:
        print("   ", station)


if __name__ == "__main__":
    main()
