"""Setup shim for legacy editable installs.

The evaluation environment is offline and has no ``wheel`` package, so the
PEP 660 editable path is unavailable; ``pip install -e . --no-use-pep517``
(or plain ``pip install -e .`` on older pips) goes through this file.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
