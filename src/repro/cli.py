"""Command-line interface for the H-BOLD reproduction.

Because the endpoint network is simulated, every invocation deterministically
rebuilds the same world from ``--seed``/``--indexable``/``--broken`` and can
persist the server-side store across invocations with ``--store DIR`` --
so a session looks like real operations against a stable endpoint

    python -m repro.cli --store /tmp/hb index --all
    python -m repro.cli --store /tmp/hb list
    python -m repro.cli --store /tmp/hb show --url http://lod3.example.org/sparql
    python -m repro.cli --store /tmp/hb render --url http://lod3.example.org/sparql \
        --figure treemap --out fig4.svg
    python -m repro.cli --store /tmp/hb crawl
    python -m repro.cli --store /tmp/hb schedule --days 7
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import HBold, clusters_to_csv, clusters_to_json, summary_to_turtle
from .core.export import summary_to_void_turtle
from .datagen import build_world
from .docstore import DocumentStore

__all__ = ["main", "build_cli_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_cli_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="H-BOLD reproduction: index, explore and visualize simulated Linked Data.",
    )
    parser.add_argument("--seed", type=int, default=0, help="world seed (default 0)")
    parser.add_argument("--indexable", type=int, default=20,
                        help="endpoints with data in the world (default 20)")
    parser.add_argument("--broken", type=int, default=5,
                        help="dead endpoints in the world (default 5)")
    parser.add_argument("--flaky", action="store_true",
                        help="give endpoints Markov availability")
    parser.add_argument("--parallelism", type=_positive_int, default=1, metavar="N",
                        help="worker-pool width for index/crawl/schedule "
                        "(default 1; stored artifacts are identical at "
                        "every width, only simulated batch latency changes)")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="persist the server store under DIR")

    sub = parser.add_subparsers(dest="command", required=True)

    index = sub.add_parser("index", help="run the server pipeline")
    group = index.add_mutually_exclusive_group(required=True)
    group.add_argument("--url", help="index one endpoint")
    group.add_argument("--all", action="store_true", help="index every known endpoint")

    sub.add_parser("list", help="show the dataset list")

    show = sub.add_parser("show", help="summary + clusters + statistics of a dataset")
    show.add_argument("--url", required=True)

    render = sub.add_parser("render", help="write one §3.5 figure as SVG")
    render.add_argument("--url", required=True)
    render.add_argument(
        "--figure",
        required=True,
        choices=("treemap", "sunburst", "circlepack", "bundling", "clusters"),
    )
    render.add_argument("--focus", default=None, help="focus class label (bundling)")
    render.add_argument("--out", required=True, help="output SVG path")

    explain = sub.add_parser(
        "explain", help="EXPLAIN ANALYZE one query against a simulated endpoint"
    )
    explain.add_argument("--url", required=True)
    explain.add_argument("--query", required=True,
                         help="SPARQL text ('-' = read from stdin)")

    explore = sub.add_parser("explore", help="textual Figure 2 walk")
    explore.add_argument("--url", required=True)
    explore.add_argument("--start", default=None, help="class label to select first")

    sub.add_parser("crawl", help="crawl the three open-data portals (§3.3)")

    submit = sub.add_parser("submit", help="manual endpoint insertion (§3.4)")
    submit.add_argument("--url", required=True)
    submit.add_argument("--email", required=True)

    schedule = sub.add_parser("schedule", help="run the §3.1 daily update")
    schedule.add_argument("--days", type=int, default=1)
    schedule.add_argument("--policy", default="paper",
                          choices=("paper", "daily", "weekly-rigid"))

    export = sub.add_parser("export", help="export artifacts")
    export.add_argument("--url", required=True)
    export.add_argument("--format", required=True,
                        choices=("turtle", "void", "clusters-csv", "clusters-json"))
    export.add_argument("--out", default="-", help="output path ('-' = stdout)")

    return parser


def _make_app(args) -> tuple:
    world = build_world(
        indexable=args.indexable,
        broken=args.broken,
        portal_new_indexable=min(5, args.indexable),
        seed=args.seed,
        flaky=args.flaky,
    )
    store = DocumentStore(persist_dir=args.store) if args.store else DocumentStore()
    app = HBold(world.network, store=store)
    if app.registry.listed_count() == 0:
        app.bootstrap_registry(world.listed_urls)
    return world, app


def _write(path: str, text: str) -> None:
    if path == "-":
        sys.stdout.write(text)
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"wrote {path}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_cli_parser().parse_args(argv)
    world, app = _make_app(args)

    try:
        if args.command == "index":
            targets = [args.url] if args.url else world.indexable_urls
            results = app.update_all(targets, parallelism=args.parallelism)
            for url, ok in results.items():
                print(f"{'OK ' if ok else 'FAIL'} {url}")
            print(f"indexed {sum(results.values())}/{len(results)}")

        elif args.command == "list":
            for record in app.registry.dataset_list():
                status = record.get("status", "listed")
                print(f"{status:<8} {record['url']}")
            counts = app.counts()
            print(f"\n{counts['listed']} listed, {counts['indexed']} indexed")

        elif args.command == "show":
            summary = app.summary(args.url)
            schema = app.cluster_schema(args.url)
            stats = app.statistics(args.url)
            print(f"{args.url}")
            print(f"  classes: {stats.class_count}  instances: {stats.instance_count}")
            print(f"  object links: {stats.link_count}  "
                  f"datatype properties: {stats.datatype_property_count}")
            print(f"  instance skew (gini): {stats.instance_gini:.2f}")
            print(f"  clusters ({schema.algorithm}, Q={schema.modularity:.3f}):")
            for cluster in schema.clusters:
                print(f"    #{cluster.cluster_id} {cluster.label}: "
                      f"{cluster.size} classes, {cluster.instance_count} instances")

        elif args.command == "render":
            if args.figure == "treemap":
                doc = app.render_treemap(args.url)
            elif args.figure == "sunburst":
                doc = app.render_sunburst(args.url)
            elif args.figure == "circlepack":
                doc = app.render_circlepack(args.url)
            elif args.figure == "bundling":
                doc = app.render_edge_bundling(args.url, focus=args.focus)
            else:
                doc = app.render_cluster_schema(args.url)
            doc.save(args.out)
            print(f"wrote {args.out}")

        elif args.command == "explain":
            text = sys.stdin.read() if args.query == "-" else args.query
            endpoint = world.network.get(args.url)
            print(endpoint.explain(text).render())

        elif args.command == "explore":
            summary = app.summary(args.url)
            session = app.explore(args.url)
            session.start_from_cluster_schema()
            if args.start:
                start = next(
                    (n.iri for n in summary.nodes if n.label == args.start), None
                )
                if start is None:
                    print(f"no class labelled {args.start!r}", file=sys.stderr)
                    return 2
            else:
                start = max(summary.nodes, key=lambda n: summary.degree(n.iri)).iri
            step = session.select_class(start)
            print(f"select {summary.node(start).label}: {step.node_count} nodes, "
                  f"{step.instance_coverage:.0%} of instances")
            for step in session.expand_all():
                print(f"{step.action}: {step.node_count} nodes, "
                      f"{step.instance_coverage:.0%} of instances")

        elif args.command == "crawl":
            found = app.crawl_portals(world.portal_urls,
                                      parallelism=args.parallelism)
            for key in ("edp", "euodp", "iodata"):
                print(f"{key}: {found[key]} endpoints discovered")
            print(f"net new: {found['new']}")
            print(f"registry now: {app.counts()}")

        elif args.command == "submit":
            result = app.submit_endpoint(args.url, args.email)
            print(f"{'indexed' if result.indexed else 'failed'}: {result.message}")
            for message in app.outbox.sent:
                print(f"mail: {message.subject}")

        elif args.command == "schedule":
            scheduler = app.scheduler
            if args.policy != "paper":
                from .core import UpdateScheduler

                scheduler = UpdateScheduler(app.storage, app.extractor, policy=args.policy)
            for report in scheduler.run_days(args.days,
                                             parallelism=args.parallelism):
                print(f"day {report.day}: attempted {len(report.attempted)}, "
                      f"ok {len(report.succeeded)}, failed {len(report.failed)}, "
                      f"fresh-skipped {report.skipped_fresh}")

        elif args.command == "export":
            if args.format == "turtle":
                _write(args.out, summary_to_turtle(app.summary(args.url)))
            elif args.format == "void":
                _write(args.out, summary_to_void_turtle(app.summary(args.url)))
            elif args.format == "clusters-csv":
                _write(args.out, clusters_to_csv(app.cluster_schema(args.url)))
            else:
                _write(args.out, clusters_to_json(app.cluster_schema(args.url)))

    except LookupError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        app.storage.flush()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
