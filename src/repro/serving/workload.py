"""Seeded workload generation: sessions, arrival processes, query mix.

The serving benchmark needs "millions of users" in miniature: many
concurrent sessions, each issuing a handful of queries with think time
between them, arriving as a Poisson-like process.  Everything is drawn
from one ``random.Random(seed)`` up front, so a workload is a pure value
-- the same seed always yields byte-identical requests regardless of how
(or at what parallelism) they are later served.  That split is what lets
the scheduler promise deterministic results: the stochastic part happens
here, once.

The default query mix is drawn from the shapes the conformance/bench
corpus exercises -- full scans under LIMIT, typed joins, the class
census aggregate, top-k ORDER BY, DISTINCT and ASK probes -- restricted
to templates that run against any dataset (no dataset-specific IRIs), so
one mix serves every generated world.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "QueryTemplate",
    "Request",
    "Workload",
    "default_query_mix",
    "cache_friendly_mix",
    "generate_workload",
]


class QueryTemplate:
    """One weighted entry of a workload's query mix."""

    __slots__ = ("name", "text", "weight")

    def __init__(self, name: str, text: str, weight: float = 1.0):
        if weight <= 0:
            raise ValueError(f"template weight must be > 0, got {weight}")
        self.name = name
        self.text = text
        self.weight = weight

    def __repr__(self) -> str:
        return f"<QueryTemplate {self.name!r} w={self.weight}>"


_RDFS = "http://www.w3.org/2000/01/rdf-schema#"


def default_query_mix() -> List[QueryTemplate]:
    """The conformance/bench-corpus-flavoured mix: scans, joins, the class
    census, top-k, DISTINCT and ASK probes, weighted towards the cheap
    lookups a public endpoint actually sees."""
    return [
        QueryTemplate(
            "spo-page",
            "SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 50",
            weight=3.0,
        ),
        QueryTemplate(
            "typed-join-page",
            "SELECT ?s ?p ?o WHERE { ?s a ?c . ?s ?p ?o } LIMIT 20",
            weight=2.0,
        ),
        QueryTemplate(
            "class-census",
            "SELECT ?c (COUNT(?s) AS ?n) WHERE { ?s a ?c } GROUP BY ?c",
            weight=2.0,
        ),
        QueryTemplate(
            "top-entities",
            "SELECT ?s (COUNT(?p) AS ?n) WHERE { ?s ?p ?o } "
            "GROUP BY ?s ORDER BY DESC(?n) ?s LIMIT 10",
            weight=1.0,
        ),
        QueryTemplate(
            "distinct-classes",
            "SELECT DISTINCT ?c WHERE { ?s a ?c } LIMIT 30",
            weight=1.0,
        ),
        QueryTemplate(
            "labels-page",
            f"SELECT ?s ?l WHERE {{ ?s <{_RDFS}label> ?l }} LIMIT 25",
            weight=1.0,
        ),
        QueryTemplate("ask-typed", "ASK { ?s a ?c }", weight=2.0),
    ]


def cache_friendly_mix() -> List[QueryTemplate]:
    """The dashboard/portal pattern: a handful of identical heavy queries
    issued over and over -- the workload a result cache exists for."""
    return [
        QueryTemplate(
            "census-dashboard",
            "SELECT ?c (COUNT(?s) AS ?n) WHERE { ?s a ?c } GROUP BY ?c",
            weight=3.0,
        ),
        QueryTemplate(
            "spotlight",
            "SELECT ?s (COUNT(?p) AS ?n) WHERE { ?s ?p ?o } "
            "GROUP BY ?s ORDER BY DESC(?n) ?s LIMIT 10",
            weight=2.0,
        ),
        QueryTemplate(
            "front-page",
            "SELECT ?s ?p ?o WHERE { ?s a ?c . ?s ?p ?o } LIMIT 20",
            weight=2.0,
        ),
    ]


class Request:
    """One query issued by one session at one simulated instant."""

    __slots__ = ("session_id", "tenant", "seq", "arrival_ms", "template",
                 "query", "deadline_ms")

    def __init__(
        self,
        session_id: int,
        tenant: str,
        seq: int,
        arrival_ms: float,
        template: str,
        query: str,
        deadline_ms: Optional[float] = None,
    ):
        self.session_id = session_id
        self.tenant = tenant
        self.seq = seq
        self.arrival_ms = arrival_ms
        self.template = template
        self.query = query
        #: per-request latency budget (retries must fit inside it); None
        #: defers to the serving policy's default deadline
        self.deadline_ms = deadline_ms

    @property
    def key(self) -> Tuple[int, int]:
        """Stable identity: (session, position within session)."""
        return (self.session_id, self.seq)

    def __repr__(self) -> str:
        return (
            f"<Request s{self.session_id}#{self.seq} {self.tenant} "
            f"{self.template} @{self.arrival_ms:.1f}ms>"
        )


class Workload:
    """An immutable batch of requests, sorted by arrival."""

    __slots__ = ("requests", "sessions", "seed")

    def __init__(self, requests: Sequence[Request], sessions: int, seed: int):
        self.requests = sorted(
            requests, key=lambda r: (r.arrival_ms, r.session_id, r.seq)
        )
        self.sessions = sessions
        self.seed = seed

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    def tenants(self) -> List[str]:
        return sorted({request.tenant for request in self.requests})

    def span_ms(self) -> float:
        """Arrival window: first to last request."""
        if not self.requests:
            return 0.0
        return self.requests[-1].arrival_ms - self.requests[0].arrival_ms

    def __repr__(self) -> str:
        return (
            f"<Workload {len(self.requests)} requests / {self.sessions} sessions "
            f"seed={self.seed}>"
        )


def generate_workload(
    sessions: int = 100,
    seed: int = 0,
    mix: Optional[Sequence[QueryTemplate]] = None,
    tenants: Sequence[str] = ("alpha", "beta", "gamma", "delta"),
    mean_session_gap_ms: float = 300.0,
    mean_think_ms: float = 400.0,
    queries_per_session: Tuple[int, int] = (2, 6),
    start_ms: float = 0.0,
    deadline_ms: Optional[float] = None,
) -> Workload:
    """Draw a complete workload from one seeded RNG.

    Session starts form a Poisson process (exponential gaps of mean
    *mean_session_gap_ms*); each session belongs to one tenant, issues a
    uniform ``queries_per_session`` count of queries drawn from *mix* by
    weight, and pauses an exponential think time between them.  Every
    draw comes from ``random.Random(seed)`` in a fixed order, so the
    returned workload is a deterministic value.
    """
    if sessions < 1:
        raise ValueError(f"sessions must be >= 1, got {sessions}")
    low, high = queries_per_session
    if not (1 <= low <= high):
        raise ValueError(f"bad queries_per_session range {queries_per_session}")
    templates = list(mix) if mix is not None else default_query_mix()
    if not templates:
        raise ValueError("query mix must not be empty")
    weights = [template.weight for template in templates]
    rng = random.Random(seed)

    requests: List[Request] = []
    session_start = start_ms
    for session_id in range(sessions):
        session_start += rng.expovariate(1.0 / mean_session_gap_ms)
        tenant = tenants[rng.randrange(len(tenants))]
        arrival = session_start
        for seq in range(rng.randint(low, high)):
            if seq:
                arrival += rng.expovariate(1.0 / mean_think_ms)
            template = rng.choices(templates, weights=weights, k=1)[0]
            requests.append(
                Request(
                    session_id, tenant, seq, arrival,
                    template.name, template.text, deadline_ms=deadline_ms,
                )
            )
    return Workload(requests, sessions=sessions, seed=seed)
