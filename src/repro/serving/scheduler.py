"""The concurrent-query scheduler: a discrete-event loop over sim time.

DESP-C++-style discrete event simulation (Darmont, PAPERS.md): the state
is ``parallelism`` server worker threads (a
:class:`~repro.core.parallel.SimWorkerPool`), a bounded fair admission
queue, and two event sources -- request **arrivals** (known up front from
the workload) and request **completions** (computed as each request
starts).  The loop walks the merged event stream in time order:

* an arrival starts immediately when a worker is idle and nobody waits,
  queues when the server is busy, and is rejected when the queue is full
  or -- with backpressure enabled -- **shed** when the queue's expected
  wait already exceeds the request's deadline budget;
* a completion frees a worker, which immediately picks up the next
  queued request under the per-tenant fairness rotation (dropping
  requests whose queue wait exceeded the admission deadline).

Service costs are *measured*, not assumed: starting a request advances
the shared :class:`~repro.endpoint.clock.SimulationClock` to the start
instant and runs the executor under
:func:`~repro.core.parallel.measure_task`, so whatever the endpoint
charges (profile latency, backoff waits, failure-path connect costs)
becomes that request's service time, and the clock itself only ever
advances along the event timeline.  Requests execute one at a time under
the hood in event order -- the same determinism construction as the
batch pool -- so per-request results are independent of how many workers
the schedule overlaps them on.

When a :class:`~repro.serving.faults.FaultInjector` is attached, the
scheduler stamps each record with the fault kinds active at its dispatch
instant -- pure observability (the injector is stateless), so operators
can correlate latency spikes and degraded serves with the injected
weather.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.parallel import SimWorkerPool, measure_task
from ..endpoint.clock import SimulationClock
from ..endpoint.errors import EndpointTimeout, QueryRejected
from ..obs.trace import NULL_TRACER, defer, result_digest
from .admission import FairAdmissionQueue
from .faults import FaultInjector
from .workload import Request

__all__ = ["RequestRecord", "Scheduler"]


class RequestRecord:
    """What happened to one request: timing, outcome, resilience trail.

    ``status`` is one of ``"ok"`` (executed), ``"cache-hit"`` (served
    from the result cache), ``"stale"`` (served degraded data after the
    fresh path failed), ``"rejected"`` (admission queue full), ``"shed"``
    (backpressure: the queue's expected wait already blew the deadline),
    ``"queue-timeout"`` (waited past the admission deadline), or the
    endpoint failure statuses ``"unavailable"`` / ``"feature-rejected"``
    / ``"endpoint-timeout"`` / ``"circuit-open"``.  ``error`` holds the
    error instance for every non-served outcome -- admission control
    reuses the endpoint's own error types.
    """

    __slots__ = (
        "request",
        "status",
        "error",
        "start_ms",
        "completion_ms",
        "service_ms",
        "result",
        "attempts",
        "hedged",
        "degraded",
        "faults_at_dispatch",
    )

    def __init__(self, request: Request, status: str, error=None,
                 start_ms: float = 0.0, completion_ms: float = 0.0,
                 service_ms: float = 0.0, result=None, attempts: int = 0,
                 hedged: bool = False, degraded: Optional[str] = None,
                 faults_at_dispatch: Tuple[str, ...] = ()):
        self.request = request
        self.status = status
        self.error = error
        self.start_ms = start_ms
        self.completion_ms = completion_ms
        self.service_ms = service_ms
        self.result = result
        #: endpoint dispatches this request consumed (0 for cache hits
        #: and requests that never reached the executor)
        self.attempts = attempts
        self.hedged = hedged
        #: which rung of the degradation ladder served it, when status is
        #: "stale": "stale-cache" or "replica"
        self.degraded = degraded
        #: fault kinds active at the dispatch instant (observability)
        self.faults_at_dispatch = faults_at_dispatch

    @property
    def served(self) -> bool:
        """Did the client get rows?  Degraded serves count: stale data
        with a staleness tag is a response, not an error."""
        return self.status in ("ok", "cache-hit", "stale")

    @property
    def wait_ms(self) -> float:
        """Queue wait: arrival to service start."""
        return self.start_ms - self.request.arrival_ms

    @property
    def latency_ms(self) -> float:
        """What the client saw: arrival to completion."""
        return self.completion_ms - self.request.arrival_ms

    def __repr__(self) -> str:
        return (
            f"<RequestRecord {self.request.key} {self.status} "
            f"latency={self.latency_ms:.1f}ms>"
        )


class Scheduler:
    """Interleaves concurrent in-flight queries over the shared sim clock.

    *execute* is the server's executor: called with a request while the
    clock sits at the request's start instant; whatever simulated time it
    consumes is the request's service time.  It returns a ``(status,
    result)`` pair -- or, from the resilience layer, a ``(status, result,
    meta)`` triple whose meta dict carries the attempt count, hedging
    flag, degradation rung and folded error -- or raises an endpoint
    error (measured and captured, never propagated).

    With *backpressure_deadline_ms* set, an arrival that would queue
    behind ``depth x mean-service`` milliseconds of expected wait larger
    than that deadline is shed at admission instead of queued.  The mean
    is the running mean of completed service times, so shedding -- like
    queue-full rejection -- is a property of realized load: it varies
    with ``parallelism`` by design (more workers, less queue).
    """

    def __init__(
        self,
        clock: SimulationClock,
        execute: Callable[[Request], object],
        parallelism: int = 1,
        queue_capacity: int = 64,
        queue_timeout_ms: Optional[float] = None,
        faults: Optional[FaultInjector] = None,
        backpressure_deadline_ms: Optional[float] = None,
        obs=None,
    ):
        self.clock = clock
        self.execute = execute
        self.parallelism = parallelism
        self.queue_capacity = queue_capacity
        self.queue_timeout_ms = queue_timeout_ms
        self.faults = faults
        self.backpressure_deadline_ms = backpressure_deadline_ms
        self.shed = 0
        #: span recorder (a ``repro.obs`` tracer).  Every request gets a
        #: root ``request`` span keyed on ``request.key``, so executor/
        #: endpoint/engine spans nest under it.
        self.obs = obs if obs is not None else NULL_TRACER
        #: admission-queue counters of the last run() (metrics bridge)
        self.last_queue_info: dict = {}

    def run(self, requests: Sequence[Request]) -> List[RequestRecord]:
        """Serve *requests* (sorted by arrival); return one record each,
        in arrival order.  The clock ends at the last completion."""
        clock = self.clock
        pool = SimWorkerPool(clock, self.parallelism)
        queue = FairAdmissionQueue(self.queue_capacity)
        ordered = sorted(
            requests, key=lambda r: (r.arrival_ms, r.session_id, r.seq)
        )
        records: List[RequestRecord] = []
        #: (completion_ms, start order) heap; the payload is the record
        in_flight: List = []
        start_counter = 0
        completed_service_ms = 0.0
        completed_count = 0

        def advance_to(instant_ms: float) -> None:
            if instant_ms > clock.now_ms:
                clock.advance(instant_ms - clock.now_ms)

        def weather(now_ms: float) -> Tuple[str, ...]:
            return self.faults.active_kinds(now_ms) if self.faults else ()

        tracer = self.obs
        tracing = tracer.enabled

        def identity_canon(request: Request) -> dict:
            # The canonical tier only carries arrival-anchored facts --
            # request identity and arrival-time weather are invariant
            # across parallelism/cache config, dispatch-time facts are
            # not (same contract as ServingReport.digest()).
            return {
                "key": list(request.key),
                "tenant": request.tenant,
                "template": request.template,
                "arrival_ms": request.arrival_ms,
                "arrival_faults": list(weather(request.arrival_ms)),
            }

        def closed_root(request: Request, status: str, now_ms: float) -> None:
            """Root span for a request that never reached a worker."""
            canon = identity_canon(request)
            canon["outcome"] = status
            tracer.open_trace(request.key, "request", canon=canon, status=status)
            tracer.end(end_ms=now_ms)

        def start(request: Request, now_ms: float) -> None:
            nonlocal start_counter, completed_service_ms, completed_count
            advance_to(now_ms)
            if tracing:
                tracer.open_trace(request.key, "request", canon=identity_canon(request))
                if now_ms > request.arrival_ms:
                    tracer.event(
                        "queue.wait",
                        start_ms=request.arrival_ms,
                        end_ms=now_ms,
                        wait_ms=round(now_ms - request.arrival_ms, 6),
                    )
            outcome = measure_task(clock, request.key, lambda: self.execute(request))
            meta = {}
            if outcome.error is not None:
                status, result = _failure_status(outcome.error), None
                error = outcome.error
            else:
                value = outcome.value
                if len(value) == 3:
                    status, result, meta = value
                else:
                    status, result = value
                error = meta.get("error")
            completion = pool.start(now_ms, outcome.elapsed_ms)
            record = RequestRecord(
                request,
                status,
                error=error,
                start_ms=now_ms,
                completion_ms=completion,
                service_ms=outcome.elapsed_ms,
                result=result,
                attempts=meta.get("attempts", 0 if status == "cache-hit" else 1),
                hedged=bool(meta.get("hedged", False)),
                degraded=meta.get("degraded"),
                faults_at_dispatch=weather(now_ms),
            )
            if tracing:
                # Served requests pin the canonical result rows, unserved
                # ones pin the outcome -- mirroring ServingReport.digest().
                if record.served:
                    # Deferred: serialized at export/digest time, not here.
                    result = record.result
                    canon = {"result": defer(lambda result=result: result_digest(result))}
                else:
                    canon = {"outcome": status}
                tracer.end(
                    end_ms=completion,
                    canon=canon,
                    status=status,
                    service_ms=round(outcome.elapsed_ms, 6),
                    attempts=record.attempts,
                    hedged=record.hedged,
                    degraded=record.degraded,
                    faults_at_dispatch=list(record.faults_at_dispatch),
                )
            records.append(record)
            heapq.heappush(in_flight, (completion, start_counter, record))
            start_counter += 1
            completed_service_ms += outcome.elapsed_ms
            completed_count += 1

        def drain(now_ms: float) -> None:
            """Hand queued requests to idle workers, skipping the stale."""
            while pool.idle_workers(now_ms) > 0:
                request = queue.take()
                if request is None:
                    return
                waited = now_ms - request.arrival_ms
                if (
                    self.queue_timeout_ms is not None
                    and waited > self.queue_timeout_ms
                ):
                    if tracing:
                        closed_root(request, "queue-timeout", now_ms)
                    records.append(
                        RequestRecord(
                            request,
                            "queue-timeout",
                            error=EndpointTimeout(
                                f"queued {waited:.0f} ms, admission deadline "
                                f"{self.queue_timeout_ms:.0f} ms"
                            ),
                            start_ms=now_ms,
                            completion_ms=now_ms,
                            faults_at_dispatch=weather(now_ms),
                        )
                    )
                    continue
                start(request, now_ms)

        index = 0
        while index < len(ordered) or in_flight:
            next_arrival = (
                ordered[index].arrival_ms if index < len(ordered) else float("inf")
            )
            next_completion = in_flight[0][0] if in_flight else float("inf")
            if next_completion <= next_arrival:
                # completion first: the freed worker is visible to an
                # arrival at the same instant
                now, _, _ = heapq.heappop(in_flight)
                advance_to(now)
                drain(now)
            else:
                request = ordered[index]
                index += 1
                # an arrival earlier than the clock (e.g. a second serve()
                # on the same server) is admitted at the current instant
                now = max(request.arrival_ms, clock.now_ms)
                advance_to(now)
                if pool.idle_workers(now) > 0 and len(queue) == 0:
                    start(request, now)
                    continue
                if (
                    self.backpressure_deadline_ms is not None
                    and completed_count > 0
                    and queue.pressure_ms(completed_service_ms / completed_count)
                    > self.backpressure_deadline_ms
                ):
                    self.shed += 1
                    if tracing:
                        closed_root(request, "shed", now)
                    records.append(
                        RequestRecord(
                            request,
                            "shed",
                            error=QueryRejected(
                                f"backpressure: expected queue wait exceeds "
                                f"{self.backpressure_deadline_ms:.0f} ms deadline"
                            ),
                            start_ms=now,
                            completion_ms=now,
                            faults_at_dispatch=weather(now),
                        )
                    )
                elif not queue.offer(request):
                    if tracing:
                        closed_root(request, "rejected", now)
                    records.append(
                        RequestRecord(
                            request,
                            "rejected",
                            error=QueryRejected(
                                f"admission queue full "
                                f"({queue.capacity} waiting)"
                            ),
                            start_ms=now,
                            completion_ms=now,
                            faults_at_dispatch=weather(now),
                        )
                    )
        self.last_queue_info = queue.info()
        # arrival order is the report's canonical order
        records.sort(
            key=lambda r: (r.request.arrival_ms, r.request.session_id, r.request.seq)
        )
        return records


def _failure_status(error: BaseException) -> str:
    from ..endpoint.errors import (
        CircuitOpen,
        EndpointTimeout,
        EndpointUnavailable,
        QueryRejected,
    )

    if isinstance(error, CircuitOpen):
        return "circuit-open"
    if isinstance(error, EndpointUnavailable):
        return "unavailable"
    if isinstance(error, QueryRejected):
        return "feature-rejected"
    if isinstance(error, EndpointTimeout):
        return "endpoint-timeout"
    raise error
