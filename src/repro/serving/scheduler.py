"""The concurrent-query scheduler: a discrete-event loop over sim time.

DESP-C++-style discrete event simulation (Darmont, PAPERS.md): the state
is ``parallelism`` server worker threads (a
:class:`~repro.core.parallel.SimWorkerPool`), a bounded fair admission
queue, and two event sources -- request **arrivals** (known up front from
the workload) and request **completions** (computed as each request
starts).  The loop walks the merged event stream in time order:

* an arrival starts immediately when a worker is idle and nobody waits,
  queues when the server is busy, and is rejected when the queue is full;
* a completion frees a worker, which immediately picks up the next
  queued request under the per-tenant fairness rotation (dropping
  requests whose queue wait exceeded the admission deadline).

Service costs are *measured*, not assumed: starting a request advances
the shared :class:`~repro.endpoint.clock.SimulationClock` to the start
instant and runs the executor under
:func:`~repro.core.parallel.measure_task`, so whatever the endpoint
charges (profile latency, shard-pool makespans, failure-path connect
costs) becomes that request's service time, and the clock itself only
ever advances along the event timeline.  Requests execute one at a time
under the hood in event order -- the same determinism construction as
the batch pool -- so per-request results are independent of how many
workers the schedule overlaps them on.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Sequence

from ..core.parallel import SimWorkerPool, measure_task
from ..endpoint.clock import SimulationClock
from ..endpoint.errors import EndpointTimeout, QueryRejected
from .admission import FairAdmissionQueue
from .workload import Request

__all__ = ["RequestRecord", "Scheduler"]


class RequestRecord:
    """What happened to one request: timing plus outcome.

    ``status`` is one of ``"ok"`` (executed), ``"cache-hit"`` (served
    from the result cache), ``"rejected"`` (admission queue full),
    ``"queue-timeout"`` (waited past the admission deadline), or the
    endpoint failure statuses ``"unavailable"`` / ``"feature-rejected"``
    / ``"endpoint-timeout"``.  ``error`` holds the endpoint-error
    instance for every non-served outcome -- admission control reuses
    the endpoint's own error types.
    """

    __slots__ = (
        "request",
        "status",
        "error",
        "start_ms",
        "completion_ms",
        "service_ms",
        "result",
    )

    def __init__(self, request: Request, status: str, error=None,
                 start_ms: float = 0.0, completion_ms: float = 0.0,
                 service_ms: float = 0.0, result=None):
        self.request = request
        self.status = status
        self.error = error
        self.start_ms = start_ms
        self.completion_ms = completion_ms
        self.service_ms = service_ms
        self.result = result

    @property
    def served(self) -> bool:
        return self.status in ("ok", "cache-hit")

    @property
    def wait_ms(self) -> float:
        """Queue wait: arrival to service start."""
        return self.start_ms - self.request.arrival_ms

    @property
    def latency_ms(self) -> float:
        """What the client saw: arrival to completion."""
        return self.completion_ms - self.request.arrival_ms

    def __repr__(self) -> str:
        return (
            f"<RequestRecord {self.request.key} {self.status} "
            f"latency={self.latency_ms:.1f}ms>"
        )


class Scheduler:
    """Interleaves concurrent in-flight queries over the shared sim clock.

    *execute* is the server's executor: called with a request while the
    clock sits at the request's start instant; whatever simulated time it
    consumes is the request's service time.  It returns a
    ``(status, result)`` pair or raises an endpoint error (measured and
    captured, never propagated).
    """

    def __init__(
        self,
        clock: SimulationClock,
        execute: Callable[[Request], object],
        parallelism: int = 1,
        queue_capacity: int = 64,
        queue_timeout_ms: Optional[float] = None,
    ):
        self.clock = clock
        self.execute = execute
        self.parallelism = parallelism
        self.queue_capacity = queue_capacity
        self.queue_timeout_ms = queue_timeout_ms

    def run(self, requests: Sequence[Request]) -> List[RequestRecord]:
        """Serve *requests* (sorted by arrival); return one record each,
        in arrival order.  The clock ends at the last completion."""
        clock = self.clock
        pool = SimWorkerPool(clock, self.parallelism)
        queue = FairAdmissionQueue(self.queue_capacity)
        ordered = sorted(
            requests, key=lambda r: (r.arrival_ms, r.session_id, r.seq)
        )
        records: List[RequestRecord] = []
        #: (completion_ms, start order) heap; the payload is the record
        in_flight: List = []
        start_counter = 0

        def advance_to(instant_ms: float) -> None:
            if instant_ms > clock.now_ms:
                clock.advance(instant_ms - clock.now_ms)

        def start(request: Request, now_ms: float) -> None:
            nonlocal start_counter
            advance_to(now_ms)
            outcome = measure_task(clock, request.key, lambda: self.execute(request))
            if outcome.error is not None:
                status, result = _failure_status(outcome.error), None
            else:
                status, result = outcome.value
            completion = pool.start(now_ms, outcome.elapsed_ms)
            record = RequestRecord(
                request,
                status,
                error=outcome.error,
                start_ms=now_ms,
                completion_ms=completion,
                service_ms=outcome.elapsed_ms,
                result=result,
            )
            records.append(record)
            heapq.heappush(in_flight, (completion, start_counter, record))
            start_counter += 1

        def drain(now_ms: float) -> None:
            """Hand queued requests to idle workers, skipping the stale."""
            while pool.idle_workers(now_ms) > 0:
                request = queue.take()
                if request is None:
                    return
                waited = now_ms - request.arrival_ms
                if (
                    self.queue_timeout_ms is not None
                    and waited > self.queue_timeout_ms
                ):
                    records.append(
                        RequestRecord(
                            request,
                            "queue-timeout",
                            error=EndpointTimeout(
                                f"queued {waited:.0f} ms, admission deadline "
                                f"{self.queue_timeout_ms:.0f} ms"
                            ),
                            start_ms=now_ms,
                            completion_ms=now_ms,
                        )
                    )
                    continue
                start(request, now_ms)

        index = 0
        while index < len(ordered) or in_flight:
            next_arrival = (
                ordered[index].arrival_ms if index < len(ordered) else float("inf")
            )
            next_completion = in_flight[0][0] if in_flight else float("inf")
            if next_completion <= next_arrival:
                # completion first: the freed worker is visible to an
                # arrival at the same instant
                now, _, _ = heapq.heappop(in_flight)
                advance_to(now)
                drain(now)
            else:
                request = ordered[index]
                index += 1
                # an arrival earlier than the clock (e.g. a second serve()
                # on the same server) is admitted at the current instant
                now = max(request.arrival_ms, clock.now_ms)
                advance_to(now)
                if pool.idle_workers(now) > 0 and len(queue) == 0:
                    start(request, now)
                elif not queue.offer(request):
                    records.append(
                        RequestRecord(
                            request,
                            "rejected",
                            error=QueryRejected(
                                f"admission queue full "
                                f"({queue.capacity} waiting)"
                            ),
                            start_ms=now,
                            completion_ms=now,
                        )
                    )
        # arrival order is the report's canonical order
        records.sort(
            key=lambda r: (r.request.arrival_ms, r.request.session_id, r.request.seq)
        )
        return records


def _failure_status(error: BaseException) -> str:
    from ..endpoint.errors import (
        EndpointTimeout,
        EndpointUnavailable,
        QueryRejected,
    )

    if isinstance(error, EndpointUnavailable):
        return "unavailable"
    if isinstance(error, QueryRejected):
        return "feature-rejected"
    if isinstance(error, EndpointTimeout):
        return "endpoint-timeout"
    raise error
