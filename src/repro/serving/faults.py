"""Deterministic fault injection: a seeded timeline of chaos events.

The paper's field observation is that real LOD endpoints fail
*constantly* -- unreachable hosts, server-side timeouts, silent
truncation -- and §3.1's daily-retry schedule exists precisely because of
it.  PR 6's serving tier only ever saw a healthy endpoint; this module
gives it weather.  Following the discrete-event simulators in PAPERS.md
(DESP-C++, the in-database algorithm simulator), injected faults are
first-class *scheduled events* on the shared simulation clock, not ad-hoc
random errors: a :class:`FaultPlan` is a pure value (like
:class:`~repro.serving.workload.Workload`) holding four kinds of windows
on the timeline --

* **outage windows** -- the endpoint is unreachable, typically produced
  from a :class:`~repro.endpoint.availability.MarkovAvailability` day
  trace via :meth:`FaultPlan.from_markov` (so long-horizon serving runs
  finally cross day boundaries);
* **transient error bursts** -- ``(start, end, p_fail)``: each dispatch
  in the window fails with probability ``p_fail`` (flaky LB, packet
  loss), drawn by request so retries can win;
* **slowdowns** -- ``(start, end, factor)``: the execution-cost term of
  the endpoint latency model is multiplied by ``factor`` (an overloaded
  shard / noisy neighbour), fed into ``_estimate_latency`` through
  ``SparqlEndpoint.query(latency_scale=...)``;
* **timeout spikes** -- ``(start, end, timeout_scale)``: the endpoint's
  server-side deadline shrinks by ``timeout_scale`` (< 1), so queries
  that normally fit start timing out.

**The determinism construction.**  Every chaos decision is a pure
function of ``(plan seed, request identity, attempt number, probe
instant)``, and the probe instant for attempt *k* is **anchored at the
request's arrival time** plus the resilience layer's deterministic
backoff ledger -- never at the wall of the shared clock.  Arrival times
are workload values, so a request meets exactly the same weather no
matter how many server threads the scheduler overlaps it on: same seed +
same plan => byte-identical report digests at any ``parallelism``.
(Physically: the fault a request experiences is the state of the world
when it hit the front door.)  Probabilistic decisions inside a window use
:meth:`FaultInjector.draw` -- a stateless SHA-256 hash over (seed, kind,
request key, attempt) -- so no draw ever depends on execution order.
"""

from __future__ import annotations

import bisect
import hashlib
import random
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..endpoint.availability import MarkovAvailability
from ..endpoint.clock import MS_PER_DAY

__all__ = ["FaultState", "FaultPlan", "FaultInjector", "chaos_profile"]


class FaultState:
    """The injected weather at one instant of the timeline."""

    __slots__ = ("outage", "burst_p", "slowdown", "timeout_scale")

    def __init__(
        self,
        outage: bool = False,
        burst_p: float = 0.0,
        slowdown: float = 1.0,
        timeout_scale: float = 1.0,
    ):
        self.outage = outage
        self.burst_p = burst_p
        self.slowdown = slowdown
        self.timeout_scale = timeout_scale

    @property
    def calm(self) -> bool:
        return (
            not self.outage
            and self.burst_p == 0.0
            and self.slowdown == 1.0
            and self.timeout_scale == 1.0
        )

    def kinds(self) -> Tuple[str, ...]:
        """The active fault kinds, for observability surfaces."""
        active = []
        if self.outage:
            active.append("outage")
        if self.burst_p > 0.0:
            active.append("burst")
        if self.slowdown != 1.0:
            active.append("slowdown")
        if self.timeout_scale != 1.0:
            active.append("timeout-spike")
        return tuple(active)

    def __repr__(self) -> str:
        return (
            f"<FaultState outage={self.outage} burst_p={self.burst_p} "
            f"slowdown={self.slowdown} timeout_scale={self.timeout_scale}>"
        )


def _normalize(windows, arity: int, label: str):
    """Validate and sort one window category into a tuple of tuples."""
    out = []
    for window in windows:
        window = tuple(float(part) for part in window)
        if len(window) != arity:
            raise ValueError(
                f"{label} window must have {arity} fields, got {window}"
            )
        if window[1] <= window[0]:
            raise ValueError(f"{label} window {window} is empty or inverted")
        out.append(window)
    out.sort()
    return tuple(out)


def _value_at(windows, t_ms: float, default):
    """The third field of the window covering *t_ms* (or *default*).

    Windows are sorted by start; overlapping windows resolve to the
    latest-starting one covering *t_ms* (deterministic and documented,
    though plans are normally built disjoint per category).
    """
    index = bisect.bisect_right(windows, (t_ms, float("inf"), float("inf"))) - 1
    while index >= 0:
        window = windows[index]
        if window[0] <= t_ms < window[1]:
            return window[2] if len(window) > 2 else True
        # an earlier-starting (longer) window can still cover t_ms when
        # windows overlap, so keep walking back; categories are small.
        index -= 1
    return default


class FaultPlan:
    """A pure, seeded value: every injectable event of one chaos run.

    Two plans built with the same arguments are interchangeable; handing
    the same plan (and workload seed) to two serving runs makes the runs
    byte-comparable.  ``seed`` feeds only the *per-request* hashed draws
    (burst failures, breaker probes) -- the windows themselves are fixed
    by construction.
    """

    __slots__ = ("seed", "horizon_ms", "outages", "bursts", "slowdowns", "timeout_spikes")

    def __init__(
        self,
        seed: int = 0,
        horizon_ms: float = 30 * MS_PER_DAY,
        outages: Sequence[Tuple[float, float]] = (),
        bursts: Sequence[Tuple[float, float, float]] = (),
        slowdowns: Sequence[Tuple[float, float, float]] = (),
        timeout_spikes: Sequence[Tuple[float, float, float]] = (),
    ):
        if horizon_ms <= 0:
            raise ValueError(f"horizon must be positive, got {horizon_ms}")
        self.seed = seed
        self.horizon_ms = float(horizon_ms)
        self.outages = _normalize(outages, 2, "outage")
        self.bursts = _normalize(bursts, 3, "burst")
        self.slowdowns = _normalize(slowdowns, 3, "slowdown")
        self.timeout_spikes = _normalize(timeout_spikes, 3, "timeout-spike")

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_markov(
        cls,
        url: str = "chaos",
        seed: int = 0,
        horizon_days: int = 30,
        p_fail: float = 0.25,
        p_recover: float = 0.55,
        **extra,
    ) -> "FaultPlan":
        """Outage windows sampled from a Markov availability day trace.

        This is §3.1's endpoint weather projected onto the serving
        timeline: the two-state chain is sampled per day exactly as the
        crawl scheduler sees it, and consecutive down days merge into
        multi-day outage windows (mean length ``1/p_recover`` days).
        """
        model = MarkovAvailability(
            url, p_fail=p_fail, p_recover=p_recover, seed=seed
        )
        return cls(
            seed=seed,
            horizon_ms=horizon_days * MS_PER_DAY,
            outages=model.outage_windows_ms(horizon_days),
            **extra,
        )

    # -- introspection -----------------------------------------------------

    def outage_ratio(self) -> float:
        """Fraction of the horizon covered by outage windows."""
        covered = sum(
            min(end, self.horizon_ms) - min(start, self.horizon_ms)
            for start, end in self.outages
        )
        return covered / self.horizon_ms

    def describe(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "horizon_days": self.horizon_ms / MS_PER_DAY,
            "outage_windows": len(self.outages),
            "outage_ratio": round(self.outage_ratio(), 4),
            "burst_windows": len(self.bursts),
            "slowdown_windows": len(self.slowdowns),
            "timeout_spike_windows": len(self.timeout_spikes),
        }

    def injector(self) -> "FaultInjector":
        return FaultInjector(self)

    def __repr__(self) -> str:
        return (
            f"<FaultPlan seed={self.seed} outage={self.outage_ratio():.0%} "
            f"bursts={len(self.bursts)} slowdowns={len(self.slowdowns)} "
            f"spikes={len(self.timeout_spikes)}>"
        )


class FaultInjector:
    """The compiled, queryable form of a :class:`FaultPlan`.

    Pure reads only -- the injector holds no mutable state, which is what
    lets one instance be consulted by the scheduler (at dispatch, for
    observability) and by every execution attempt (for fault fate)
    without any ordering sensitivity.
    """

    __slots__ = ("plan",)

    def __init__(self, plan: FaultPlan):
        self.plan = plan

    # -- timeline lookups --------------------------------------------------

    def state_at(self, t_ms: float) -> FaultState:
        plan = self.plan
        return FaultState(
            outage=bool(_value_at(plan.outages, t_ms, False)),
            burst_p=float(_value_at(plan.bursts, t_ms, 0.0)),
            slowdown=float(_value_at(plan.slowdowns, t_ms, 1.0)),
            timeout_scale=float(_value_at(plan.timeout_spikes, t_ms, 1.0)),
        )

    def active_kinds(self, t_ms: float) -> Tuple[str, ...]:
        return self.state_at(t_ms).kinds()

    # -- seeded stateless draws --------------------------------------------

    def draw(self, kind: str, key: Hashable, attempt: int) -> float:
        """A uniform [0, 1) draw that is a pure function of its arguments.

        No shared RNG stream: two runs that evaluate draws in different
        orders (different parallelism, hedging on/off) still agree on
        every individual value.
        """
        token = f"{self.plan.seed}:{kind}:{key!r}:{attempt}".encode("utf-8")
        digest = hashlib.sha256(token).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def burst_fails(self, t_ms: float, key: Hashable, attempt: int) -> bool:
        """Does attempt *attempt* of request *key* die in an error burst?"""
        p = self.state_at(t_ms).burst_p
        return p > 0.0 and self.draw("burst", key, attempt) < p

    def __repr__(self) -> str:
        return f"<FaultInjector {self.plan!r}>"


def chaos_profile(
    seed: int = 0,
    horizon_days: int = 30,
    p_fail: float = 0.25,
    p_recover: float = 0.55,
    burst_windows: int = 14,
    burst_coverage: float = 0.35,
    burst_p: float = 0.9,
    slowdown_windows: int = 6,
    slowdown_range: Tuple[float, float] = (3.0, 8.0),
    spike_windows: int = 5,
    spike_timeout_scale: float = 0.004,
) -> FaultPlan:
    """The canonical "~30%-outage" chaos profile the benchmark replays.

    Outages come from the Markov day chain (stationary down fraction
    ``p_fail / (p_fail + p_recover)`` ~ 31%); transient bursts, slowdowns
    and timeout spikes are placed by one ``random.Random(seed)`` drawn up
    front, so the whole profile -- like a workload -- is a pure value of
    its arguments.
    """
    plan_rng = random.Random(seed ^ 0x5EED)
    horizon_ms = horizon_days * MS_PER_DAY

    def place(count: int, length_ms: float) -> List[Tuple[float, float]]:
        windows = []
        for _ in range(count):
            start = plan_rng.uniform(0.0, horizon_ms - length_ms)
            windows.append((start, start + length_ms))
        return windows

    burst_len = burst_coverage * horizon_ms / burst_windows
    bursts = [(s, e, burst_p) for s, e in place(burst_windows, burst_len)]
    slowdowns = [
        (s, e, plan_rng.uniform(*slowdown_range))
        for s, e in place(slowdown_windows, 0.5 * MS_PER_DAY)
    ]
    spikes = [
        (s, e, spike_timeout_scale)
        for s, e in place(spike_windows, 0.4 * MS_PER_DAY)
    ]
    return FaultPlan.from_markov(
        url=f"chaos-{seed}",
        seed=seed,
        horizon_days=horizon_days,
        p_fail=p_fail,
        p_recover=p_recover,
        bursts=bursts,
        slowdowns=slowdowns,
        timeout_spikes=spikes,
    )
