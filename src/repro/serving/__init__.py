"""The concurrent query serving tier -- the "millions of users" front door.

Everything below this package accelerates one query at a time; this layer
serves *load*: seeded session workloads (:mod:`.workload`), bounded
admission with per-tenant fairness (:mod:`.admission`), a discrete-event
scheduler interleaving concurrent in-flight queries over the shared
simulation clock (:mod:`.scheduler`), and a generation-keyed result
cache (:mod:`.cache`), orchestrated by :class:`.server.QueryServer`.
p50/p95/p99 latency and throughput under load are first-class outputs
(:class:`.server.ServingReport`, ``benchmarks/bench_q4_serving.py``).
"""

from .admission import FairAdmissionQueue
from .cache import ResultCache
from .scheduler import RequestRecord, Scheduler
from .server import QueryServer, ServingReport
from .workload import (
    QueryTemplate,
    Request,
    Workload,
    cache_friendly_mix,
    default_query_mix,
    generate_workload,
)

__all__ = [
    "FairAdmissionQueue",
    "QueryServer",
    "QueryTemplate",
    "Request",
    "RequestRecord",
    "ResultCache",
    "Scheduler",
    "ServingReport",
    "Workload",
    "cache_friendly_mix",
    "default_query_mix",
    "generate_workload",
]
