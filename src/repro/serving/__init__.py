"""The concurrent query serving tier -- the "millions of users" front door.

Everything below this package accelerates one query at a time; this layer
serves *load*: seeded session workloads (:mod:`.workload`), bounded
admission with per-tenant fairness (:mod:`.admission`), a discrete-event
scheduler interleaving concurrent in-flight queries over the shared
simulation clock (:mod:`.scheduler`), and a generation-keyed result
cache (:mod:`.cache`), orchestrated by :class:`.server.QueryServer`.
p50/p95/p99 latency and throughput under load are first-class outputs
(:class:`.server.ServingReport`, ``benchmarks/bench_q4_serving.py``).

PR 7 gives the tier weather and an immune system: seeded fault-injection
timelines (:mod:`.faults` -- outages from the §3.1 Markov availability
chain, transient error bursts, backend slowdowns, timeout spikes) and
the client-side resilience policies answering them (:mod:`.resilience`
-- retry with jittered exponential backoff, per-endpoint circuit
breakers, hedged requests, graceful degradation to stale/replica data).
Chaos runs stay byte-deterministic across parallelism
(``benchmarks/bench_q5_resilience.py``).
"""

from .admission import FairAdmissionQueue
from .cache import ResultCache
from .faults import FaultInjector, FaultPlan, FaultState, chaos_profile
from .resilience import (
    CircuitBreaker,
    ResiliencePolicy,
    ResilientExecutor,
    full_jitter_backoff_ms,
)
from .scheduler import RequestRecord, Scheduler
from .server import QueryServer, ServingReport
from .workload import (
    QueryTemplate,
    Request,
    Workload,
    cache_friendly_mix,
    default_query_mix,
    generate_workload,
)

__all__ = [
    "CircuitBreaker",
    "FairAdmissionQueue",
    "FaultInjector",
    "FaultPlan",
    "FaultState",
    "QueryServer",
    "QueryTemplate",
    "Request",
    "RequestRecord",
    "ResiliencePolicy",
    "ResilientExecutor",
    "ResultCache",
    "Scheduler",
    "ServingReport",
    "Workload",
    "cache_friendly_mix",
    "chaos_profile",
    "default_query_mix",
    "full_jitter_backoff_ms",
    "generate_workload",
]
