"""The generation-keyed query result cache.

The plan cache (PR 3) memoizes *compiled plans* per graph; this is its
missing sibling for *results*: a bounded LRU keyed on ``(query text,
Graph.generation)``.  Invalidation costs nothing -- a mutation bumps the
graph's generation, every entry tagged with the old generation stops
matching, and stale entries are dropped lazily on their next lookup.
Because the generation counter bumps **only on actual content change**
(the PR 5 contract: duplicate adds, absent removes and all-duplicate
batches are no-ops), a duplicate-heavy ingest cannot evict still-valid
results.

The serving tier consults this cache before dispatching to the endpoint;
a hit serves the stored result object for a flat cache-service charge
instead of the full endpoint execution.  Results are treated as
immutable -- every layer that touches ``SelectResult``/``AskResult``
reads them only -- so hits return the stored object without copying.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

__all__ = ["ResultCache"]


class ResultCache:
    """Bounded LRU of query results, invalidated by ``Graph.generation``.

    One entry per query text, tagged with the generation it was computed
    at.  ``get`` with a newer generation drops the stale entry (counted
    as an *invalidation*, distinct from a capacity *eviction*) and
    reports a miss.
    """

    __slots__ = ("capacity", "min_service_ms", "keep_stale", "_entries",
                 "hits", "misses", "evictions", "invalidations", "skipped_cheap")

    def __init__(
        self,
        capacity: int = 256,
        min_service_ms: float = 0.0,
        keep_stale: bool = False,
    ):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: admission floor: results cheaper than this are not worth a slot
        #: (a hit would cost about as much as recomputing them)
        self.min_service_ms = min_service_ms
        #: retain generation-stale entries for :meth:`get_stale` instead of
        #: dropping them on sight -- the degradation ladder's food supply
        self.keep_stale = keep_stale
        #: query text -> (generation, result), in LRU order (oldest first)
        self._entries: "OrderedDict[str, Tuple[int, object]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.skipped_cheap = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, text: str, generation: int) -> Optional[object]:
        """The cached result for *text* at *generation*, or None.

        A stale entry (older generation) is normally dropped on sight: it
        can never become *fresh* again, so keeping it would only displace
        live entries from the LRU window.  With ``keep_stale`` it stays
        put (still a miss here) so :meth:`get_stale` can serve it as
        degraded data when the endpoint is unreachable.
        """
        entry = self._entries.get(text)
        if entry is None:
            self.misses += 1
            return None
        cached_generation, result = entry
        if cached_generation != generation:
            if not self.keep_stale:
                del self._entries[text]
                self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(text)
        self.hits += 1
        return result

    def get_stale(self, text: str) -> Optional[object]:
        """The stored result for *text* at *any* generation, or None.

        The degradation read: freshness is already lost (the endpoint is
        down and retries are exhausted), so the last result this cache
        ever saw for the query is strictly better than an error page.
        Does not touch the hit/miss counters -- callers account the serve
        as a *degraded* outcome, not a cache hit.
        """
        entry = self._entries.get(text)
        if entry is None:
            return None
        self._entries.move_to_end(text)
        return entry[1]

    def put(
        self,
        text: str,
        generation: int,
        result: object,
        service_ms: Optional[float] = None,
    ) -> None:
        """Store *result* for *text* computed at *generation*.

        When the caller passes the measured *service_ms*, results cheaper
        than ``min_service_ms`` are skipped (counted in ``skipped_cheap``):
        caching them cannot beat recomputation, and admitting them would
        evict entries whose recomputation is actually expensive.
        """
        if service_ms is not None and service_ms < self.min_service_ms:
            self.skipped_cheap += 1
            return
        if text in self._entries:
            del self._entries[text]
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[text] = (generation, result)

    def clear(self) -> None:
        self._entries.clear()

    def info(self) -> Dict[str, int]:
        """Counter snapshot (the shape ``QueryServer.status`` publishes)."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "skipped_cheap": self.skipped_cheap,
        }

    def __repr__(self) -> str:
        return (
            f"<ResultCache {len(self._entries)}/{self.capacity} "
            f"hits={self.hits} misses={self.misses}>"
        )
