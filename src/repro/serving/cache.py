"""The generation-keyed query result cache.

The plan cache (PR 3) memoizes *compiled plans* per graph; this is its
missing sibling for *results*: a bounded LRU keyed on ``(query text,
Graph.generation)``.  Invalidation costs nothing -- a mutation bumps the
graph's generation, every entry tagged with the old generation stops
matching, and stale entries are dropped lazily on their next lookup.
Because the generation counter bumps **only on actual content change**
(the PR 5 contract: duplicate adds, absent removes and all-duplicate
batches are no-ops), a duplicate-heavy ingest cannot evict still-valid
results.

The serving tier consults this cache before dispatching to the endpoint;
a hit serves the stored result object for a flat cache-service charge
instead of the full endpoint execution.  Results are treated as
immutable -- every layer that touches ``SelectResult``/``AskResult``
reads them only -- so hits return the stored object without copying.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

__all__ = ["ResultCache"]


class ResultCache:
    """Bounded LRU of query results, invalidated by ``Graph.generation``.

    One entry per query text, tagged with the generation it was computed
    at.  ``get`` with a newer generation drops the stale entry (counted
    as an *invalidation*, distinct from a capacity *eviction*) and
    reports a miss.
    """

    __slots__ = ("capacity", "_entries", "hits", "misses", "evictions", "invalidations")

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: query text -> (generation, result), in LRU order (oldest first)
        self._entries: "OrderedDict[str, Tuple[int, object]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, text: str, generation: int) -> Optional[object]:
        """The cached result for *text* at *generation*, or None.

        A stale entry (older generation) is dropped on sight: it can
        never become valid again, so keeping it would only displace live
        entries from the LRU window.
        """
        entry = self._entries.get(text)
        if entry is None:
            self.misses += 1
            return None
        cached_generation, result = entry
        if cached_generation != generation:
            del self._entries[text]
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(text)
        self.hits += 1
        return result

    def put(self, text: str, generation: int, result: object) -> None:
        """Store *result* for *text* computed at *generation*."""
        if text in self._entries:
            del self._entries[text]
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[text] = (generation, result)

    def clear(self) -> None:
        self._entries.clear()

    def info(self) -> Dict[str, int]:
        """Counter snapshot (the shape ``QueryServer.status`` publishes)."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    def __repr__(self) -> str:
        return (
            f"<ResultCache {len(self._entries)}/{self.capacity} "
            f"hits={self.hits} misses={self.misses}>"
        )
