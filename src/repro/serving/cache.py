"""The generation-keyed query result cache.

The plan cache (PR 3) memoizes *compiled plans* per graph; this is its
missing sibling for *results*: a bounded LRU keyed on ``(query text,
Graph.generation)``.  Invalidation costs nothing -- a mutation bumps the
graph's generation, every entry tagged with the old generation stops
matching, and stale entries are dropped lazily on their next lookup.
Because the generation counter bumps **only on actual content change**
(the PR 5 contract: duplicate adds, absent removes and all-duplicate
batches are no-ops), a duplicate-heavy ingest cannot evict still-valid
results.

The serving tier consults this cache before dispatching to the endpoint;
a hit serves the stored result object for a flat cache-service charge
instead of the full endpoint execution.  Results are treated as
immutable -- every layer that touches ``SelectResult``/``AskResult``
reads them only -- so hits return the stored object without copying.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

__all__ = ["ResultCache"]


class ResultCache:
    """Bounded LRU of query results, invalidated by ``Graph.generation``.

    One entry per query text, tagged with the generation it was computed
    at.  ``get`` with a newer generation drops the stale entry (counted
    as an *invalidation*, distinct from a capacity *eviction*) and
    reports a miss.
    """

    __slots__ = ("capacity", "min_service_ms", "keep_stale", "tenant_share",
                 "_entries", "_tenant_stats", "hits", "misses", "evictions",
                 "invalidations", "skipped_cheap", "quota_evictions")

    def __init__(
        self,
        capacity: int = 256,
        min_service_ms: float = 0.0,
        keep_stale: bool = False,
        tenant_share: float = 1.0,
    ):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        if not 0.0 < tenant_share <= 1.0:
            raise ValueError(
                f"tenant_share must be in (0, 1], got {tenant_share}"
            )
        self.capacity = capacity
        #: admission floor: results cheaper than this are not worth a slot
        #: (a hit would cost about as much as recomputing them)
        self.min_service_ms = min_service_ms
        #: retain generation-stale entries for :meth:`get_stale` instead of
        #: dropping them on sight -- the degradation ladder's food supply
        self.keep_stale = keep_stale
        #: the fraction of capacity any single tenant may occupy; 1.0
        #: disables the quota (a tenant can fill the whole cache)
        self.tenant_share = tenant_share
        #: query text -> (generation, result, owner tenant), in LRU order
        #: (oldest first)
        self._entries: "OrderedDict[str, Tuple[int, object, Optional[str]]]" = OrderedDict()
        #: tenant -> {"hits": .., "evictions": ..}; populated lazily so
        #: tenant-unaware callers see no change in :meth:`info`
        self._tenant_stats: Dict[str, Dict[str, int]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.skipped_cheap = 0
        self.quota_evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def tenant_quota(self) -> int:
        """Max entries one tenant may own (at least one slot)."""
        return max(1, int(self.capacity * self.tenant_share))

    def _stats(self, tenant: str) -> Dict[str, int]:
        stats = self._tenant_stats.get(tenant)
        if stats is None:
            stats = self._tenant_stats[tenant] = {"hits": 0, "evictions": 0}
        return stats

    def _owned_keys(self, tenant: str):
        """The tenant's entries, oldest first (the global LRU order is the
        within-tenant LRU order: a subsequence of an ordered dict)."""
        return [
            text for text, entry in self._entries.items() if entry[2] == tenant
        ]

    def get(
        self, text: str, generation: int, tenant: Optional[str] = None
    ) -> Optional[object]:
        """The cached result for *text* at *generation*, or None.

        A stale entry (older generation) is normally dropped on sight: it
        can never become *fresh* again, so keeping it would only displace
        live entries from the LRU window.  With ``keep_stale`` it stays
        put (still a miss here) so :meth:`get_stale` can serve it as
        degraded data when the endpoint is unreachable.
        """
        entry = self._entries.get(text)
        if entry is None:
            self.misses += 1
            return None
        cached_generation, result, _owner = entry
        if cached_generation != generation:
            if not self.keep_stale:
                del self._entries[text]
                self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(text)
        self.hits += 1
        if tenant is not None:
            self._stats(tenant)["hits"] += 1
        return result

    def get_stale(self, text: str) -> Optional[object]:
        """The stored result for *text* at *any* generation, or None.

        The degradation read: freshness is already lost (the endpoint is
        down and retries are exhausted), so the last result this cache
        ever saw for the query is strictly better than an error page.
        Does not touch the hit/miss counters -- callers account the serve
        as a *degraded* outcome, not a cache hit.
        """
        entry = self._entries.get(text)
        if entry is None:
            return None
        self._entries.move_to_end(text)
        return entry[1]

    def put(
        self,
        text: str,
        generation: int,
        result: object,
        service_ms: Optional[float] = None,
        tenant: Optional[str] = None,
    ) -> None:
        """Store *result* for *text* computed at *generation*.

        When the caller passes the measured *service_ms*, results cheaper
        than ``min_service_ms`` are skipped (counted in ``skipped_cheap``):
        caching them cannot beat recomputation, and admitting them would
        evict entries whose recomputation is actually expensive.

        With a *tenant* and a ``tenant_share`` below 1.0, a tenant at its
        quota evicts its **own** least-recent entry first -- one tenant's
        burst can never push another tenant's entries out of the cache.
        """
        if service_ms is not None and service_ms < self.min_service_ms:
            self.skipped_cheap += 1
            return
        if text in self._entries:
            del self._entries[text]
        else:
            if tenant is not None and self.tenant_share < 1.0:
                owned = self._owned_keys(tenant)
                if len(owned) >= self.tenant_quota:
                    del self._entries[owned[0]]
                    self.quota_evictions += 1
                    self._stats(tenant)["evictions"] += 1
            if len(self._entries) >= self.capacity:
                _evicted, (_, _, owner) = self._entries.popitem(last=False)
                self.evictions += 1
                if owner is not None:
                    self._stats(owner)["evictions"] += 1
        self._entries[text] = (generation, result, tenant)

    def clear(self) -> None:
        self._entries.clear()

    def tenant_info(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant counters: hits by the tenant's requests, evictions of
        the tenant's entries (quota and capacity alike), current size."""
        sizes: Dict[str, int] = {}
        for _, _, owner in self._entries.values():
            if owner is not None:
                sizes[owner] = sizes.get(owner, 0) + 1
        out: Dict[str, Dict[str, int]] = {}
        for tenant in sorted(set(self._tenant_stats) | set(sizes)):
            stats = self._tenant_stats.get(tenant, {"hits": 0, "evictions": 0})
            out[tenant] = {
                "hits": stats["hits"],
                "evictions": stats["evictions"],
                "size": sizes.get(tenant, 0),
            }
        return out

    def info(self) -> Dict[str, int]:
        """Counter snapshot (the shape ``QueryServer.status`` publishes)."""
        info: Dict[str, object] = {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "skipped_cheap": self.skipped_cheap,
        }
        tenants = self.tenant_info()
        if tenants:
            info["quota_evictions"] = self.quota_evictions
            info["tenants"] = tenants
        return info

    def __repr__(self) -> str:
        return (
            f"<ResultCache {len(self._entries)}/{self.capacity} "
            f"hits={self.hits} misses={self.misses}>"
        )
