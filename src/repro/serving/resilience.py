"""Client-side resilience policies for the serving tier.

The paper's crawler answers endpoint flakiness with a daily-retry
schedule; a *serving* tier answering interactive users needs the
millisecond-scale equivalent.  This module is that policy layer, wrapped
around ``QueryServer``'s executor:

* **retry with exponential backoff + full jitter** over the simulation
  clock, budgeted against a per-request deadline so retries never push a
  request past ``deadline_ms``;
* a per-endpoint **circuit breaker** (closed -> open -> half-open, seeded
  probe admission) so a dead endpoint fails fast instead of eating a
  connect charge per request;
* optional **hedged requests**: when an execution outlives the tracked
  p95, a second attempt fires and the first completion wins
  (:func:`~repro.core.parallel.race_hedged`; the loser's remaining
  simulated time is cancelled).  Both attempts return the same rows, so
  hedging moves timing only -- digests stay byte-identical;
* **graceful degradation** on exhausted retries or an open breaker:
  serve a stale :class:`~repro.serving.cache.ResultCache` entry tagged
  ``status="stale"``, falling back to the local materialized replica
  (a direct engine read, charged like a cache hit) -- the serving-tier
  mirror of the paper's truncate-don't-error observation.  The
  degradation ladder is fresh -> cached -> stale -> replica -> failed.

Like the fault timeline, every *outcome-relevant* decision here is
deterministic per request: backoff delays and breaker probes come from
stateless seeded hashes, and fault fate is probed on the arrival-anchored
ledger (:mod:`.faults`).  Stateful pieces -- the breaker's open windows,
the p95 tracker -- only ever shape *timing* and *which cheap path* served
a request, never the rows it got, so report digests stay invariant
across parallelism and hedging.
"""

from __future__ import annotations

import hashlib
from collections import deque
from math import ceil
from typing import Dict, Hashable, List, Optional, Tuple

from ..core.parallel import race_hedged
from ..endpoint.errors import (
    CircuitOpen,
    EndpointError,
    EndpointTimeout,
    EndpointUnavailable,
    QueryRejected,
)
from .faults import FaultInjector, FaultState
from .workload import Request

__all__ = [
    "full_jitter_backoff_ms",
    "CircuitBreaker",
    "ResiliencePolicy",
    "ResilientExecutor",
]

_CALM = FaultState()


def full_jitter_backoff_ms(
    seed: int,
    key: Hashable,
    attempt: int,
    base_ms: float,
    cap_ms: float,
) -> float:
    """Exponential backoff with *full jitter*, as a pure seeded function.

    The AWS-style construction: ``delay = U(0, min(cap, base * 2^attempt))``
    with the uniform draw taken from a SHA-256 hash of ``(seed, key,
    attempt)`` instead of a shared RNG stream.  Determinism per request
    (replays are byte-identical) *and* desynchronization across callers
    (two clients with different seeds spread their retry storms) fall out
    of the same construction.
    """
    if attempt < 0:
        raise ValueError(f"attempt must be >= 0, got {attempt}")
    ceiling = min(cap_ms, base_ms * (2.0 ** attempt))
    token = f"{seed}:backoff:{key!r}:{attempt}".encode("utf-8")
    digest = hashlib.sha256(token).digest()
    return (int.from_bytes(digest[:8], "big") / 2**64) * ceiling


class CircuitBreaker:
    """Closed -> open -> half-open breaker over the simulation clock.

    ``threshold`` consecutive failures open the breaker for
    ``cooldown_ms``; after the cooldown it goes half-open and admits
    *probe* calls by a seeded per-request draw (``probe_p``), so under
    concurrency a deterministic subset of requests tests the water while
    the rest keep failing fast.  A successful probe closes the breaker; a
    failed one re-opens it for another cooldown.  Every transition is
    recorded with its clock instant for the serving report.
    """

    __slots__ = (
        "threshold", "cooldown_ms", "probe_p", "seed",
        "state", "failures", "opened_at_ms", "transitions", "fast_fails",
    )

    def __init__(
        self,
        threshold: int = 5,
        cooldown_ms: float = 60_000.0,
        probe_p: float = 0.5,
        seed: int = 0,
    ):
        if threshold < 1:
            raise ValueError(f"breaker threshold must be >= 1, got {threshold}")
        if cooldown_ms <= 0:
            raise ValueError(f"breaker cooldown must be positive, got {cooldown_ms}")
        if not 0.0 < probe_p <= 1.0:
            raise ValueError(f"probe admission must be in (0, 1], got {probe_p}")
        self.threshold = threshold
        self.cooldown_ms = cooldown_ms
        self.probe_p = probe_p
        self.seed = seed
        self.state = "closed"
        self.failures = 0
        self.opened_at_ms = 0.0
        #: [(clock ms, from-state, to-state)], the report's breaker trace
        self.transitions: List[Tuple[float, str, str]] = []
        self.fast_fails = 0

    def _transition(self, now_ms: float, to_state: str) -> None:
        self.transitions.append((now_ms, self.state, to_state))
        self.state = to_state

    def allow(self, now_ms: float, key: Hashable, attempt: int = 0) -> bool:
        """May this call go out at *now_ms*?  (Counts refused calls.)"""
        if self.state == "closed":
            return True
        if self.state == "open":
            if now_ms - self.opened_at_ms >= self.cooldown_ms:
                self._transition(now_ms, "half-open")
            else:
                self.fast_fails += 1
                return False
        # half-open: admit a seeded subset as probes
        token = f"{self.seed}:probe:{key!r}:{attempt}:{len(self.transitions)}"
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        if int.from_bytes(digest[:8], "big") / 2**64 < self.probe_p:
            return True
        self.fast_fails += 1
        return False

    def record_success(self, now_ms: float) -> None:
        self.failures = 0
        if self.state == "half-open":
            self._transition(now_ms, "closed")

    def record_failure(self, now_ms: float) -> None:
        self.failures += 1
        if self.state == "half-open" or (
            self.state == "closed" and self.failures >= self.threshold
        ):
            self._transition(now_ms, "open")
            self.opened_at_ms = now_ms

    def __repr__(self) -> str:
        return (
            f"<CircuitBreaker {self.state} failures={self.failures}/"
            f"{self.threshold}>"
        )


class ResiliencePolicy:
    """Pure configuration of the resilience behaviours.

    ``ResiliencePolicy()`` is the everything-on default; ``naive()`` is
    the PR 6 behaviour (one attempt, no breaker, fail like the endpoint
    failed) used as the chaos benchmark's baseline arm.
    """

    __slots__ = (
        "max_retries", "backoff_base_ms", "backoff_cap_ms", "deadline_ms",
        "breaker_threshold", "breaker_cooldown_ms", "breaker_probe_p",
        "hedging", "hedge_min_samples", "hedge_window",
        "degrade_stale", "degrade_replica", "fail_fast_ms", "seed",
    )

    def __init__(
        self,
        max_retries: int = 3,
        backoff_base_ms: float = 200.0,
        backoff_cap_ms: float = 5_000.0,
        deadline_ms: float = 30_000.0,
        breaker_threshold: Optional[int] = 5,
        breaker_cooldown_ms: float = 60_000.0,
        breaker_probe_p: float = 0.5,
        hedging: bool = False,
        hedge_min_samples: int = 16,
        hedge_window: int = 64,
        degrade_stale: bool = True,
        degrade_replica: bool = True,
        fail_fast_ms: float = 0.5,
        seed: int = 0,
    ):
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if deadline_ms <= 0:
            raise ValueError(f"deadline must be positive, got {deadline_ms}")
        self.max_retries = max_retries
        self.backoff_base_ms = backoff_base_ms
        self.backoff_cap_ms = backoff_cap_ms
        self.deadline_ms = deadline_ms
        #: None disables the breaker entirely
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_ms = breaker_cooldown_ms
        self.breaker_probe_p = breaker_probe_p
        self.hedging = hedging
        self.hedge_min_samples = hedge_min_samples
        self.hedge_window = hedge_window
        self.degrade_stale = degrade_stale
        self.degrade_replica = degrade_replica
        self.fail_fast_ms = fail_fast_ms
        self.seed = seed

    @classmethod
    def naive(cls) -> "ResiliencePolicy":
        """PR 6 semantics: one attempt, no breaker, no degradation."""
        return cls(
            max_retries=0,
            breaker_threshold=None,
            hedging=False,
            degrade_stale=False,
            degrade_replica=False,
        )

    def __repr__(self) -> str:
        return (
            f"<ResiliencePolicy retries={self.max_retries} "
            f"breaker={self.breaker_threshold} hedging={self.hedging} "
            f"degrade={self.degrade_stale or self.degrade_replica}>"
        )


class ResilientExecutor:
    """``QueryServer``'s executor with the full policy stack applied.

    One instance lives as long as its server: breaker state and the p95
    tracker carry across ``serve`` calls (a long-running server remembers
    that its backend was just down), while per-run counters reset at
    every ``begin_run``.

    The call protocol extends PR 6's executor: instead of raising,
    failures are folded into the returned ``(status, result, meta)``
    triple so the scheduler can record attempt counts and degradation
    provenance alongside the failure.
    """

    #: statuses the degradation ladder can end on
    _RETRYABLE = (EndpointUnavailable, EndpointTimeout)

    def __init__(
        self,
        server,
        policy: ResiliencePolicy,
        faults: Optional[FaultInjector] = None,
    ):
        self.server = server
        self.policy = policy
        self.faults = faults
        self.breakers: Dict[str, CircuitBreaker] = {}
        self._latency_window = deque(maxlen=policy.hedge_window)
        self.counters: Dict[str, int] = {}
        self.begin_run()

    # -- lifecycle ---------------------------------------------------------

    def begin_run(self) -> None:
        """Reset the per-run counters (breakers and p95 carry over)."""
        self.counters = {
            "attempts": 0,
            "retries": 0,
            "recovered_by_retry": 0,
            "injected_outage_failures": 0,
            "injected_transient_failures": 0,
            "breaker_fast_fails": 0,
            "deadline_exhausted": 0,
            "degraded_stale_cache": 0,
            "degraded_replica": 0,
            "hedges_fired": 0,
            "hedges_won": 0,
        }

    def _breaker(self) -> Optional[CircuitBreaker]:
        if self.policy.breaker_threshold is None:
            return None
        url = self.server.endpoint.url
        breaker = self.breakers.get(url)
        if breaker is None:
            breaker = self.breakers[url] = CircuitBreaker(
                threshold=self.policy.breaker_threshold,
                cooldown_ms=self.policy.breaker_cooldown_ms,
                probe_p=self.policy.breaker_probe_p,
                seed=self.policy.seed,
            )
        return breaker

    def breaker_transitions(self) -> List[Tuple[float, str, str]]:
        out: List[Tuple[float, str, str]] = []
        for breaker in self.breakers.values():
            out.extend(breaker.transitions)
        return sorted(out)

    # -- hedging -----------------------------------------------------------

    def _hedge_delay_ms(self) -> Optional[float]:
        """The tracked p95 of recent service times, or None (don't hedge)."""
        if not self.policy.hedging:
            return None
        if len(self._latency_window) < self.policy.hedge_min_samples:
            return None
        ordered = sorted(self._latency_window)
        rank = max(1, ceil(len(ordered) * 0.95))
        return ordered[rank - 1]

    # -- the executor ------------------------------------------------------

    def __call__(self, request: Request):
        server = self.server
        policy = self.policy
        clock = server.endpoint.clock
        tracer = server._tracer
        tracing = tracer.enabled
        meta: Dict[str, object] = {"attempts": 0, "hedged": False}

        # Fresh path: the result cache sits in front of everything,
        # including the fault gate -- the cache is the serving tier's own
        # memory and survives endpoint weather.
        generation = server.endpoint.graph.generation
        if server.cache is not None:
            cached = server.cache.get(
                request.query, generation, tenant=request.tenant
            )
            if cached is not None:
                if tracing:
                    tracer.event("cache.lookup", outcome="hit")
                clock.advance(server.cache_hit_ms)
                return ("cache-hit", cached, meta)
            if tracing:
                tracer.event("cache.lookup", outcome="miss")

        deadline_ms = (
            request.deadline_ms
            if request.deadline_ms is not None
            else policy.deadline_ms
        )
        breaker = self._breaker()
        nominal_penalty = server.endpoint.profile.connect_ms * 2.0
        ledger_ms = 0.0  # deterministic elapsed estimate anchoring probes
        last_error: Optional[EndpointError] = None

        for attempt in range(policy.max_retries + 1):
            if breaker is not None and not breaker.allow(
                clock.now_ms, request.key, attempt
            ):
                clock.advance(policy.fail_fast_ms)
                self.counters["breaker_fast_fails"] += 1
                if tracing:
                    tracer.event("breaker.fast_fail", attempt=attempt + 1)
                last_error = CircuitOpen(
                    f"breaker open for {server.endpoint.url}",
                    url=server.endpoint.url,
                )
                break  # an open breaker is not worth backing off against
            meta["attempts"] = attempt + 1
            self.counters["attempts"] += 1
            if attempt > 0:
                self.counters["retries"] += 1
            probe_ms = request.arrival_ms + ledger_ms
            if tracing:
                tracer.begin(
                    "attempt", number=attempt + 1, probe_ms=round(probe_ms, 6)
                )
            try:
                status, result = self._attempt(request, attempt, probe_ms, meta)
            except EndpointError as error:
                if tracing:
                    tracer.end(error=type(error).__name__)
                if isinstance(error, QueryRejected):
                    # a capability rejection is permanent: retrying or
                    # serving stale data would mask a client error
                    meta["error"] = error
                    return ("feature-rejected", None, meta)
                if breaker is not None:
                    breaker.record_failure(clock.now_ms)
                last_error = error
                if attempt >= policy.max_retries:
                    break
                delay_ms = full_jitter_backoff_ms(
                    policy.seed, request.key, attempt,
                    policy.backoff_base_ms, policy.backoff_cap_ms,
                )
                if ledger_ms + nominal_penalty + delay_ms + nominal_penalty > deadline_ms:
                    self.counters["deadline_exhausted"] += 1
                    meta["deadline_exhausted"] = True
                    break
                if tracing:
                    tracer.event("backoff", delay_ms=round(delay_ms, 6))
                clock.advance(delay_ms)
                ledger_ms += nominal_penalty + delay_ms
                continue
            if tracing:
                tracer.end(outcome=status)
            if breaker is not None:
                breaker.record_success(clock.now_ms)
            if attempt > 0:
                self.counters["recovered_by_retry"] += 1
            return (status, result, meta)

        return self._degrade(request, generation, last_error, meta)

    # -- one attempt -------------------------------------------------------

    def _attempt(self, request: Request, attempt: int, probe_ms: float, meta):
        """One dispatch: fault gate, then the real endpoint."""
        server = self.server
        clock = server.endpoint.clock
        state = self.faults.state_at(probe_ms) if self.faults else _CALM
        if state.outage:
            # a dead endpoint still costs the doomed connect attempt
            clock.advance(server.endpoint.profile.connect_ms * 2.0)
            self.counters["injected_outage_failures"] += 1
            raise EndpointUnavailable(
                f"injected outage at t={probe_ms:.0f}ms",
                url=server.endpoint.url,
            )
        if state.burst_p > 0.0 and self.faults.burst_fails(
            probe_ms, request.key, attempt
        ):
            clock.advance(server.endpoint.profile.connect_ms)
            self.counters["injected_transient_failures"] += 1
            raise EndpointUnavailable(
                f"injected transient error at t={probe_ms:.0f}ms",
                url=server.endpoint.url,
            )

        def call():
            return server.endpoint.query(
                request.query,
                latency_scale=state.slowdown,
                timeout_scale=state.timeout_scale,
            )

        start_ms = clock.now_ms
        hedge_delay = self._hedge_delay_ms()
        if hedge_delay is not None:
            outcome, fired, won = race_hedged(
                clock, request.key, call, call, hedge_delay
            )
            if fired:
                self.counters["hedges_fired"] += 1
                meta["hedged"] = True
            if won:
                self.counters["hedges_won"] += 1
            if outcome.error is not None:
                raise outcome.error
            result = outcome.value
        else:
            result = call()
        service_ms = clock.now_ms - start_ms
        self._latency_window.append(service_ms)
        if server.cache is not None:
            server.cache.put(
                request.query,
                server.endpoint.graph.generation,
                result,
                service_ms=service_ms,
                tenant=request.tenant,
            )
        return ("ok", result)

    # -- the degradation ladder --------------------------------------------

    def _degrade(self, request: Request, generation: int, last_error, meta):
        """Exhausted retries / open breaker: stale -> replica -> failed."""
        server = self.server
        policy = self.policy
        clock = server.endpoint.clock
        tracer = server._tracer
        meta["error"] = last_error
        if policy.degrade_stale and server.cache is not None:
            stale = server.cache.get_stale(request.query)
            if stale is not None:
                clock.advance(server.cache_hit_ms)
                self.counters["degraded_stale_cache"] += 1
                meta["degraded"] = "stale-cache"
                if tracer.enabled:
                    tracer.event("degrade", rung="stale-cache")
                return ("stale", stale, meta)
        if policy.degrade_replica:
            if tracer.enabled:
                tracer.event("degrade", rung="replica")
            result = server.replica_read(request.query)
            clock.advance(server.cache_hit_ms)
            self.counters["degraded_replica"] += 1
            meta["degraded"] = "replica"
            return ("stale", result, meta)
        return (_failure_status(last_error), None, meta)


def _failure_status(error: Optional[BaseException]) -> str:
    if isinstance(error, EndpointUnavailable):
        return "unavailable"
    if isinstance(error, CircuitOpen):
        return "circuit-open"
    if isinstance(error, QueryRejected):
        return "feature-rejected"
    if isinstance(error, EndpointTimeout):
        return "endpoint-timeout"
    return "failed"
