"""The query server: thin front door -> orchestrator -> status/results.

Follows the route-handler + orchestrator + status pattern of the API
layers in SNIPPETS.md: :class:`QueryServer` owns the moving parts (the
wrapped endpoint, the admission queue configuration, the result cache,
the resilience policy), ``serve`` is the one orchestration entry point,
and ``status()`` / :class:`ServingReport` are the status- and
results-shaped read surfaces.  Route handlers stay thin -- the executor
is the only code that touches the endpoint, and the scheduler owns all
timing.

The result cache sits *in front of* the endpoint: a hit serves the
stored result for a flat ``cache_hit_ms`` charge without consuming an
endpoint worker's full execution cost, and -- because the endpoint never
runs -- without reading any engine state (the exec-stats leakage class
of bug the endpoint layer guards against since PR 6 cannot reach here).
Entries are keyed on ``(query text, Graph.generation)``, so any actual
mutation of the served graph invalidates the whole cache for free while
no-op writes keep it warm.  Results cheaper than the cache-hit charge
itself are not admitted (``skipped_cheap``): a hit on them saves nothing
and the slot displaces something expensive.

Fault injection and resilience plug in here: handing ``serve`` a
:class:`~repro.serving.faults.FaultInjector` subjects the run to its
seeded weather, and a :class:`~repro.serving.resilience.ResiliencePolicy`
(default: on, whenever faults are present) wraps the executor in
retry/backoff, circuit breaking, optional hedging and graceful
degradation.  Faults *without* a policy run the naive PR 6 executor
against the weather -- the baseline arm of the chaos benchmark.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Dict, List, Optional, Sequence, Union

from ..endpoint.endpoint import SparqlEndpoint
from ..obs import Observatory
from ..obs.trace import NULL_TRACER
from ..sparql.parser import parse_query
from ..sparql.results import AskResult, SelectResult
from .cache import ResultCache
from .faults import FaultInjector, FaultPlan
from .resilience import ResiliencePolicy, ResilientExecutor
from .scheduler import RequestRecord, Scheduler
from .workload import Request, Workload

__all__ = ["QueryServer", "ServingReport"]

#: default flat charge for serving a cached result: the connect handshake
#: is still paid, execution is not (a small constant, deliberately far
#: below any profile's execution floor)
CACHE_HIT_MS = 2.0


class ServingReport:
    """The results surface of one ``serve`` run.

    Latency percentiles are nearest-rank over served requests (what the
    clients saw: arrival to completion, queue wait included); throughput
    is served requests over the simulated busy period.  ``digest()``
    canonicalizes every served result, so two runs serving identical rows
    -- whatever the parallelism -- produce byte-identical digests.
    """

    __slots__ = ("records", "parallelism", "start_ms", "end_ms", "cache_info",
                 "resilience_info", "fault_info", "obs")

    def __init__(
        self,
        records: List[RequestRecord],
        parallelism: int,
        start_ms: float,
        end_ms: float,
        cache_info: Optional[Dict[str, int]],
        resilience_info: Optional[Dict[str, object]] = None,
        fault_info: Optional[Dict[str, object]] = None,
        obs: Optional[Observatory] = None,
    ):
        self.records = records
        self.parallelism = parallelism
        self.start_ms = start_ms
        self.end_ms = end_ms
        self.cache_info = cache_info
        #: per-run resilience counters + breaker transition trace, when a
        #: policy ran this workload
        self.resilience_info = resilience_info
        #: the fault plan's describe() payload, when weather was injected
        self.fault_info = fault_info
        #: the server's Observatory, when serve() ran instrumented --
        #: the report's trace/export surfaces read it
        self.obs = obs

    # -- outcomes ----------------------------------------------------------

    @property
    def served(self) -> List[RequestRecord]:
        return [record for record in self.records if record.served]

    @property
    def degraded(self) -> List[RequestRecord]:
        """Served, but off the degradation ladder (status ``"stale"``)."""
        return [record for record in self.records if record.status == "stale"]

    def served_ratio(self) -> float:
        """Fraction of requests that got rows -- the resilience headline."""
        if not self.records:
            return float("nan")
        return len(self.served) / len(self.records)

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.status] = counts.get(record.status, 0) + 1
        return counts

    def degraded_counts(self) -> Dict[str, int]:
        """Which rung of the ladder served the degraded requests."""
        counts: Dict[str, int] = {}
        for record in self.degraded:
            rung = record.degraded or "unknown"
            counts[rung] = counts.get(rung, 0) + 1
        return counts

    def tenant_cache_counts(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant cache hit/evict counters ({} when untracked)."""
        if not self.cache_info:
            return {}
        return dict(self.cache_info.get("tenants", {}))

    # -- latency / throughput ---------------------------------------------

    def latency_percentiles(
        self, percentiles: Sequence[float] = (50.0, 95.0, 99.0)
    ) -> Dict[str, float]:
        """Nearest-rank percentiles of served-request latency, in ms."""
        latencies = sorted(record.latency_ms for record in self.served)
        out: Dict[str, float] = {}
        for percentile in percentiles:
            label = f"p{percentile:g}"
            if not latencies:
                out[label] = float("nan")
                continue
            rank = math.ceil(len(latencies) * percentile / 100.0)
            rank = min(max(rank, 1), len(latencies))
            out[label] = latencies[rank - 1]
        return out

    def mean_latency_ms(self) -> float:
        served = self.served
        if not served:
            return float("nan")
        return sum(record.latency_ms for record in served) / len(served)

    def makespan_ms(self) -> float:
        """The simulated busy period: first arrival to last completion."""
        return self.end_ms - self.start_ms

    def throughput_qps(self) -> float:
        """Served queries per simulated second."""
        span = self.makespan_ms()
        if span <= 0.0:
            return float("nan")
        return len(self.served) / (span / 1000.0)

    # -- determinism -------------------------------------------------------

    def digest(self) -> str:
        """SHA-256 over every served request's canonical result rows.

        Covers request identity + rows, not timing or provenance: a cache
        hit, a hedged execution or a degraded replica read serving the
        same rows as a cold execution digests identically, and scheduling
        changes *when* things run, never *what* they return -- so the
        digest is the byte-identical contract across parallelism settings,
        cache on/off, and hedging on/off.  Unserved requests contribute
        identity + failure status (a rejection is an outcome too).
        """
        payload = []
        for record in self.records:
            if not record.served:
                payload.append([list(record.request.key), record.status])
                continue
            payload.append([list(record.request.key), _canonical(record.result)])
        blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # -- observability ------------------------------------------------------

    def trace(self, request_id) -> str:
        """Rendered span tree for one request (``(session_id, seq)``).

        Answers "where did request X spend its time": queue wait,
        resilience attempts/backoffs, endpoint execution, engine
        operators, shard fan-out -- each with sim-clock timestamps.
        """
        if self.obs is None:
            raise ValueError(
                "serve() ran without an Observatory; pass QueryServer(obs=...)"
            )
        tracer = self.obs.tracer
        trace_id = tracer.find_trace(tuple(request_id))
        if trace_id is None:
            return f"(no trace recorded for request {tuple(request_id)!r})"
        return tracer.render(trace_id)

    def export_jsonl(self) -> str:
        """JSON-lines span + metric export (profile tier)."""
        if self.obs is None:
            raise ValueError(
                "serve() ran without an Observatory; pass QueryServer(obs=...)"
            )
        return self.obs.export_jsonl()

    def summary(self) -> Dict[str, object]:
        """The /results-shaped payload benchmarks and tests read."""
        summary: Dict[str, object] = {
            "requests": len(self.records),
            "served": len(self.served),
            "served_ratio": self.served_ratio(),
            "parallelism": self.parallelism,
            "statuses": self.status_counts(),
            "latency_ms": self.latency_percentiles(),
            "mean_latency_ms": self.mean_latency_ms(),
            "makespan_ms": self.makespan_ms(),
            "throughput_qps": self.throughput_qps(),
            "digest": self.digest(),
        }
        if self.degraded:
            summary["degraded"] = self.degraded_counts()
        if self.cache_info is not None:
            summary["cache"] = dict(self.cache_info)
        if self.resilience_info is not None:
            summary["resilience"] = dict(self.resilience_info)
        if self.fault_info is not None:
            summary["faults"] = dict(self.fault_info)
        return summary

    def __repr__(self) -> str:
        return (
            f"<ServingReport {len(self.served)}/{len(self.records)} served "
            f"p={self.parallelism} makespan={self.makespan_ms():.0f}ms>"
        )


def _canonical(result: Union[SelectResult, AskResult, None]):
    """JSON-stable form of a query result (rows in engine order)."""
    if isinstance(result, AskResult):
        return bool(result)
    if isinstance(result, SelectResult):
        return [
            [
                [name, row[name].n3() if row[name] is not None else None]
                for name in sorted(row)
            ]
            for row in result.rows
        ]
    return None


class QueryServer:
    """Concurrent serving tier over one :class:`SparqlEndpoint`.

    ``parallelism`` models the endpoint's server threads; the bounded
    admission queue, optional queue deadline and optional backpressure
    deadline model its load shedding; the generation-keyed result cache
    is shared across ``serve`` calls (a long-running server keeps its
    cache warm between workloads).

    *faults* subjects every run to a seeded chaos timeline (a
    :class:`FaultPlan` or its injector); *resilience* is the client-side
    policy answering it.  Passing faults without a policy runs the naive
    executor against the weather -- that asymmetry is the chaos
    benchmark's A/B.  The resilient executor (breaker state, hedge p95
    tracker) persists across ``serve`` calls like the cache does.
    """

    def __init__(
        self,
        endpoint: SparqlEndpoint,
        parallelism: int = 1,
        queue_capacity: int = 64,
        queue_timeout_ms: Optional[float] = None,
        cache_capacity: Optional[int] = 256,
        cache_hit_ms: float = CACHE_HIT_MS,
        cache_tenant_share: float = 1.0,
        resilience: Optional[ResiliencePolicy] = None,
        faults: Optional[Union[FaultPlan, FaultInjector]] = None,
        backpressure_deadline_ms: Optional[float] = None,
        obs: Optional[Observatory] = None,
    ):
        self.endpoint = endpoint
        self.parallelism = parallelism
        self.queue_capacity = queue_capacity
        self.queue_timeout_ms = queue_timeout_ms
        self.cache_hit_ms = cache_hit_ms
        self.backpressure_deadline_ms = backpressure_deadline_ms
        if isinstance(faults, FaultPlan):
            faults = faults.injector()
        self.faults = faults
        if resilience is None and faults is not None:
            # chaos without a policy: the naive executor must still meet
            # the weather, it just has no answer to it
            resilience = ResiliencePolicy.naive()
        self.resilience = resilience
        keep_stale = resilience is not None and resilience.degrade_stale
        self.cache = (
            ResultCache(
                cache_capacity,
                min_service_ms=cache_hit_ms,
                keep_stale=keep_stale,
                tenant_share=cache_tenant_share,
            )
            if cache_capacity
            else None
        )
        self._executor = (
            ResilientExecutor(self, resilience, faults)
            if resilience is not None
            else None
        )
        self._runs = 0
        #: observability: with an Observatory attached, the endpoint and
        #: its engine trace into it and every stat surface of this server
        #: registers in the unified metrics registry.
        self.obs = obs
        self._tracer = obs.tracer if obs is not None else NULL_TRACER
        if obs is not None:
            endpoint.attach_obs(obs.tracer)
            self._register_metrics(obs.metrics)

    def _register_metrics(self, registry) -> None:
        """Bind every stat surface into the unified metrics registry.

        Pull gauges read the live counters at dump time — registration
        changes no behavior.  Names follow the ARCHITECTURE.md metric
        vocabulary (enforced by ``tests/test_repo_hygiene.py``).  Only
        ``faults.*`` values are flagged canonical: they derive from the
        seeded plan alone, so they are parallelism-invariant; every
        execution-order-dependent surface stays profile-tier.
        """
        stats = self.endpoint.stats
        for name in ("queries", "failures", "timeouts", "rejected", "truncated",
                     "total_latency_ms"):
            registry.bind(
                f"endpoint.{name}",
                lambda n=name: getattr(stats, n),
                help=f"EndpointStats.{name} of the served endpoint",
            )
        if self.cache is not None:
            cache = self.cache
            for key in ("size", "hits", "misses", "evictions", "invalidations",
                        "skipped_cheap", "quota_evictions"):
                registry.bind(
                    f"cache.{key}",
                    lambda k=key: cache.info().get(k, 0),
                    help=f"ResultCache.info()[{key!r}]",
                )
        if self._executor is not None:
            executor = self._executor
            for key in ("attempts", "retries", "recovered_by_retry",
                        "injected_outage_failures", "injected_transient_failures",
                        "breaker_fast_fails", "deadline_exhausted",
                        "degraded_stale_cache", "degraded_replica",
                        "hedges_fired", "hedges_won"):
                registry.bind(
                    f"resilience.{key}",
                    lambda k=key: executor.counters.get(k, 0),
                    help=f"ResilientExecutor per-run counter {key!r}",
                )
            registry.bind(
                "resilience.breaker_transitions",
                lambda: len(executor.breaker_transitions()),
                help="circuit-breaker state transitions across all breakers",
            )
        if self.faults is not None:
            # FaultPlan windows/transitions: derived from the seeded plan
            # alone, never from execution order — the canonical tier.
            describe = self.faults.plan.describe()
            for key in ("outage_windows", "burst_windows", "slowdown_windows",
                        "timeout_spike_windows", "outage_ratio"):
                gauge = registry.gauge(
                    f"faults.{key}",
                    help=f"FaultPlan.describe()[{key!r}]",
                    canonical=True,
                )
                gauge.set(describe[key])
        graph = self.endpoint.graph
        if getattr(graph, "is_sharded", False):
            for key in ("batches", "parallel_ms", "sequential_ms", "rows"):
                registry.bind(
                    f"sparql.shard_{key}",
                    lambda k=key: graph.shard_stats[k],
                    help=f"ShardedTripleStore.shard_stats[{key!r}]",
                )

    # -- the one orchestration entry point ---------------------------------

    def serve(self, workload: Union[Workload, Sequence[Request]]) -> ServingReport:
        """Schedule and execute *workload*; return the full report."""
        requests = list(workload)
        execute = self._executor if self._executor is not None else self._execute
        if self._executor is not None:
            self._executor.begin_run()
        scheduler = Scheduler(
            self.endpoint.clock,
            execute,
            parallelism=self.parallelism,
            queue_capacity=self.queue_capacity,
            queue_timeout_ms=self.queue_timeout_ms,
            faults=self.faults,
            backpressure_deadline_ms=self.backpressure_deadline_ms,
            obs=self._tracer,
        )
        records = scheduler.run(requests)
        self._runs += 1
        if self.obs is not None:
            self._push_run_metrics(requests, records, scheduler)
        start_ms = min((r.request.arrival_ms for r in records), default=0.0)
        end_ms = max((r.completion_ms for r in records), default=start_ms)
        resilience_info: Optional[Dict[str, object]] = None
        if self._executor is not None:
            resilience_info = dict(self._executor.counters)
            resilience_info["breaker_transitions"] = [
                [instant, before, after]
                for instant, before, after in self._executor.breaker_transitions()
            ]
            resilience_info["shed"] = scheduler.shed
        return ServingReport(
            records,
            parallelism=self.parallelism,
            start_ms=start_ms,
            end_ms=end_ms,
            cache_info=self.cache.info() if self.cache is not None else None,
            resilience_info=resilience_info,
            fault_info=self.faults.plan.describe() if self.faults else None,
            obs=self.obs,
        )

    def _push_run_metrics(
        self,
        requests: Sequence[Request],
        records: List[RequestRecord],
        scheduler: Scheduler,
    ) -> None:
        """Per-run serving metrics.  ``serving.requests_total`` is
        canonical (workload-derived); everything else depends on realized
        scheduling (cache hits, shed, latency) and is profile-tier."""
        metrics = self.obs.metrics
        metrics.counter(
            "serving.requests_total",
            help="requests offered to serve()",
            canonical=True,
        ).inc(len(requests))
        served = 0
        latency = metrics.histogram(
            "serving.latency_ms", help="served-request latency (arrival→completion)"
        )
        wait = metrics.histogram(
            "serving.queue_wait_ms", help="served-request admission-queue wait"
        )
        for record in records:
            if record.served:
                served += 1
                latency.observe(record.latency_ms)
                wait.observe(record.wait_ms)
        metrics.counter("serving.served_total", help="requests that got rows").inc(served)
        metrics.counter(
            "serving.shed_total", help="requests shed by backpressure"
        ).inc(scheduler.shed)
        queue_info = scheduler.last_queue_info
        metrics.counter(
            "admission.offered", help="requests offered to the fair admission queue"
        ).inc(queue_info.get("offered", 0))
        metrics.counter(
            "admission.rejected", help="requests bounced by a full admission queue"
        ).inc(queue_info.get("rejected", 0))

    # -- executors (the only code paths that touch the endpoint) -----------

    def _execute(self, request: Request):
        """The plain (pre-resilience) executor: cache, then endpoint.

        Cache hits charge the flat hit cost and return the stored result
        *without* executing the endpoint; misses run the real query and
        store the result -- with its measured service time, so the cache
        can refuse results cheaper than a hit -- at the generation it was
        computed for.  Endpoint errors propagate to the scheduler, which
        measures and records them (their connect/timeout charges are real
        service time).
        """
        generation = self.endpoint.graph.generation
        tracer = self._tracer
        if self.cache is not None:
            cached = self.cache.get(
                request.query, generation, tenant=request.tenant
            )
            if cached is not None:
                if tracer.enabled:
                    tracer.event("cache.lookup", outcome="hit")
                self.endpoint.clock.advance(self.cache_hit_ms)
                return ("cache-hit", cached)
            if tracer.enabled:
                tracer.event("cache.lookup", outcome="miss")
        start_ms = self.endpoint.clock.now_ms
        result = self.endpoint.query(request.query)
        if self.cache is not None:
            self.cache.put(
                request.query,
                generation,
                result,
                service_ms=self.endpoint.clock.now_ms - start_ms,
                tenant=request.tenant,
            )
        return ("ok", result)

    def replica_read(self, text: str) -> Union[SelectResult, AskResult]:
        """Degraded read off the local materialized replica.

        The last rung of the degradation ladder before giving up: run the
        query against the server's own copy of the graph, bypassing the
        (unreachable) endpoint entirely.  Applies the endpoint profile's
        row cap so replica rows are byte-identical to what a fresh serve
        would have returned -- the digest-invariance contract.  Charges
        nothing itself; the caller accounts the degraded-serve cost.
        """
        result = self.endpoint._engine.run(parse_query(text))
        if isinstance(result, SelectResult):
            cap = self.endpoint.profile.max_result_rows
            if cap is not None and len(result.rows) > cap:
                result = SelectResult(
                    result.variables, result.rows[:cap], truncated=True
                )
        return result

    # -- status surface ----------------------------------------------------

    def status(self) -> Dict[str, object]:
        """Counter snapshot: what a /status route would publish."""
        stats = self.endpoint.stats
        status: Dict[str, object] = {
            "endpoint": self.endpoint.url,
            "parallelism": self.parallelism,
            "queue_capacity": self.queue_capacity,
            "queue_timeout_ms": self.queue_timeout_ms,
            "runs": self._runs,
            "endpoint_stats": {
                "queries": stats.queries,
                "failures": stats.failures,
                "timeouts": stats.timeouts,
                "rejected": stats.rejected,
                "truncated": stats.truncated,
                "total_latency_ms": stats.total_latency_ms,
            },
        }
        status["cache"] = self.cache.info() if self.cache is not None else None
        if self._executor is not None:
            status["breakers"] = {
                url: breaker.state
                for url, breaker in sorted(self._executor.breakers.items())
            }
        return status

    def __repr__(self) -> str:
        return (
            f"<QueryServer {self.endpoint.url!r} parallelism={self.parallelism} "
            f"queue={self.queue_capacity}>"
        )
