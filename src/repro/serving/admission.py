"""Admission control: a bounded queue with per-tenant fair dequeue.

A public endpoint under load does two things this module models: it
**bounds** how much work it will hold (anything beyond the queue capacity
is rejected immediately -- the serving analogue of the endpoint layer's
:class:`~repro.endpoint.errors.QueryRejected`), and it keeps one chatty
tenant from starving everyone else.  Dequeue is deficit-free round-robin
over tenants in first-seen order: each turn serves the next tenant with
queued work, so a tenant that queues 100 requests interleaves 1:1 with a
tenant that queues 2 instead of running them first.

Everything is plain deterministic data structure work -- no RNG, no wall
clock -- so the scheduler above it stays reproducible.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional

from .workload import Request

__all__ = ["FairAdmissionQueue"]


class FairAdmissionQueue:
    """Bounded FIFO-per-tenant queue with round-robin dequeue.

    ``offer`` returns False when the queue is at capacity (the caller
    rejects the request); ``take`` returns the next request under the
    fairness rotation, or None when empty.
    """

    __slots__ = ("capacity", "_by_tenant", "_rotation", "_cursor", "_size",
                 "offered", "rejected")

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: tenant -> waiting requests, insertion order preserved per tenant
        self._by_tenant: "OrderedDict[str, Deque[Request]]" = OrderedDict()
        #: tenants in first-seen order; the rotation walks this list
        self._rotation: List[str] = []
        self._cursor = 0
        self._size = 0
        self.offered = 0
        self.rejected = 0

    def __len__(self) -> int:
        return self._size

    def depth(self, tenant: str) -> int:
        queue = self._by_tenant.get(tenant)
        return len(queue) if queue is not None else 0

    def offer(self, request: Request) -> bool:
        """Enqueue *request*, or refuse it when the queue is full."""
        self.offered += 1
        if self._size >= self.capacity:
            self.rejected += 1
            return False
        queue = self._by_tenant.get(request.tenant)
        if queue is None:
            queue = self._by_tenant[request.tenant] = deque()
            self._rotation.append(request.tenant)
        queue.append(request)
        self._size += 1
        return True

    def take(self) -> Optional[Request]:
        """The next request under round-robin fairness, or None.

        The rotation remembers where it stopped: after serving tenant i,
        the next take starts at tenant i+1, so burst tenants cannot
        monopolize consecutive dequeues while others wait.
        """
        if self._size == 0:
            return None
        for _ in range(len(self._rotation)):
            tenant = self._rotation[self._cursor]
            self._cursor = (self._cursor + 1) % len(self._rotation)
            queue = self._by_tenant.get(tenant)
            if queue:
                self._size -= 1
                return queue.popleft()
        return None  # unreachable while _size is kept consistent

    def pressure_ms(self, mean_service_ms: float) -> float:
        """The queue-depth backpressure signal: expected wait in line.

        ``depth x mean service time`` is Little's-law arithmetic for how
        long a request admitted *now* will sit before a worker picks it
        up.  The scheduler compares this against the request's deadline
        budget at admission time and sheds requests that would time out
        in the queue anyway -- rejecting early is strictly kinder than
        accepting work we already know we cannot finish in time.
        """
        return self._size * mean_service_ms

    def info(self) -> Dict[str, int]:
        return {
            "depth": self._size,
            "capacity": self.capacity,
            "offered": self.offered,
            "rejected": self.rejected,
        }

    def __repr__(self) -> str:
        return f"<FairAdmissionQueue {self._size}/{self.capacity}>"
