"""Community detection substrate for Cluster Schema construction.

H-BOLD groups the classes of a Schema Summary into clusters with community
detection (§2.1; algorithm analysis in Po & Malvezzi 2018).  This package
implements the algorithms from scratch on a small weighted-graph type:

* :func:`louvain` -- the production algorithm (fast, high modularity)
* :func:`label_propagation` -- near-linear baseline
* :func:`greedy_modularity` -- CNM-style agglomeration
* :func:`girvan_newman` -- divisive quality reference (small graphs only)

plus :func:`modularity` and partition-comparison metrics for the E5
ablation benchmark.
"""

from .girvan_newman import edge_betweenness, girvan_newman
from .graphs import UndirectedGraph
from .greedy_modularity import greedy_modularity
from .label_propagation import label_propagation
from .louvain import louvain
from .partition import (
    Partition,
    modularity,
    normalized_mutual_information,
    partition_entropy,
)

__all__ = [
    "Partition",
    "UndirectedGraph",
    "edge_betweenness",
    "girvan_newman",
    "greedy_modularity",
    "label_propagation",
    "louvain",
    "modularity",
    "normalized_mutual_information",
    "partition_entropy",
]
