"""Label propagation (Raghavan et al. 2007) -- near-linear community
detection, the cheap baseline in the E5 algorithm ablation.

Asynchronous update: each node adopts the label carrying the largest total
edge weight among its neighbours; ties break by smallest label id for
determinism.  Terminates when every node already holds a locally maximal
label or after ``max_sweeps``.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable

from .graphs import UndirectedGraph
from .partition import Partition

__all__ = ["label_propagation"]

Node = Hashable


def label_propagation(
    graph: UndirectedGraph, seed: int = 0, max_sweeps: int = 100
) -> Partition:
    """Run asynchronous label propagation; returns a :class:`Partition`."""
    rng = random.Random(seed)
    nodes = sorted(graph.nodes(), key=repr)
    labels: Dict[Node, int] = {node: index for index, node in enumerate(nodes)}

    for _sweep in range(max_sweeps):
        order = list(nodes)
        rng.shuffle(order)
        changed = 0
        for node in order:
            neighbours = graph.neighbours(node)
            if not neighbours:
                continue
            weight_by_label: Dict[int, float] = {}
            for neighbour, weight in neighbours.items():
                if neighbour == node:
                    continue  # self-loops don't vote
                label = labels[neighbour]
                weight_by_label[label] = weight_by_label.get(label, 0.0) + weight
            if not weight_by_label:
                continue
            best_weight = max(weight_by_label.values())
            candidates = sorted(
                label for label, weight in weight_by_label.items()
                if weight >= best_weight - 1e-12
            )
            new_label = candidates[0]
            if labels[node] not in candidates:
                labels[node] = new_label
                changed += 1
        if changed == 0:
            break
    return Partition(labels)
