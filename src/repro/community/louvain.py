"""The Louvain method (Blondel et al. 2008), implemented from scratch.

This is the community detection algorithm H-BOLD runs server-side to build
the Cluster Schema (Po & Malvezzi 2018 selected it after comparing several
algorithms on Big Linked Data schema graphs).

Two-phase iteration:

1. *Local moving*: repeatedly move nodes to the neighbouring community with
   the highest positive modularity gain until no move improves Q.
2. *Aggregation*: collapse each community into a super-node (intra-community
   weight becomes a self-loop) and repeat on the condensed graph.

Determinism: node visiting order is shuffled with a seeded ``random.Random``
so results are reproducible for a given seed.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Optional, Tuple

from .graphs import UndirectedGraph
from .partition import Partition

__all__ = ["louvain"]

Node = Hashable


def louvain(
    graph: UndirectedGraph,
    seed: int = 0,
    resolution: float = 1.0,
    max_levels: int = 32,
) -> Partition:
    """Run Louvain on *graph*; returns a flat :class:`Partition`.

    ``resolution`` > 1 favours smaller communities, < 1 larger ones (the
    standard resolution-limit dial).  Isolated nodes become singleton
    communities.
    """
    if len(graph) == 0:
        return Partition({})
    rng = random.Random(seed)

    # node -> community over the *original* nodes, refined level by level.
    current_graph = graph
    # Mapping from current_graph nodes to sets of original nodes.
    contains: Dict[Node, List[Node]] = {node: [node] for node in graph.nodes()}

    final_assignment: Dict[Node, int] = {}
    for node in graph.nodes():
        final_assignment[node] = len(final_assignment)

    for _level in range(max_levels):
        assignment, improved = _one_level(current_graph, rng, resolution)
        if not improved and _level > 0:
            break

        # Fold this level's communities into the final assignment.
        community_ids: Dict[int, int] = {}
        for node, community in assignment.items():
            community_ids.setdefault(community, len(community_ids))
        for node, community in assignment.items():
            cid = community_ids[community]
            for original in contains[node]:
                final_assignment[original] = cid

        if not improved:
            break

        # Build the aggregated graph for the next level.
        aggregated = UndirectedGraph()
        new_contains: Dict[Node, List[Node]] = {}
        for node, community in assignment.items():
            cid = community_ids[community]
            aggregated.add_node(cid)
            new_contains.setdefault(cid, []).extend(contains[node])
        edge_accumulator: Dict[Tuple[int, int], float] = {}
        for u, v, weight in current_graph.edges():
            cu = community_ids[assignment[u]]
            cv = community_ids[assignment[v]]
            key = (min(cu, cv), max(cu, cv))
            edge_accumulator[key] = edge_accumulator.get(key, 0.0) + weight
        for (cu, cv), weight in edge_accumulator.items():
            aggregated.add_edge(cu, cv, weight)

        if len(aggregated) == len(current_graph):
            break  # no contraction happened; a fixed point
        current_graph = aggregated
        contains = new_contains

    return Partition(final_assignment)


def _one_level(
    graph: UndirectedGraph, rng: random.Random, resolution: float
) -> Tuple[Dict[Node, int], bool]:
    """Phase 1: local moving on one graph. Returns (assignment, improved)."""
    nodes = sorted(graph.nodes(), key=repr)  # deterministic base order
    rng.shuffle(nodes)

    community: Dict[Node, int] = {node: index for index, node in enumerate(nodes)}
    m = graph.total_weight()
    if m <= 0:
        return community, False

    # Sigma_tot per community: sum of degrees of member nodes.
    sigma_tot: Dict[int, float] = {}
    degree: Dict[Node, float] = {}
    for node in nodes:
        degree[node] = graph.degree(node)
        sigma_tot[community[node]] = sigma_tot.get(community[node], 0.0) + degree[node]

    improved_any = False
    for _sweep in range(100):  # safety bound; converges in a handful of sweeps
        moves = 0
        for node in nodes:
            node_community = community[node]
            k_i = degree[node]

            # Weight from node to each neighbouring community.
            weights_to: Dict[int, float] = {}
            self_loop = 0.0
            for neighbour, weight in graph.neighbours(node).items():
                if neighbour == node:
                    self_loop = weight
                    continue
                weights_to[community[neighbour]] = (
                    weights_to.get(community[neighbour], 0.0) + weight
                )

            # Remove node from its community for the gain computation.
            sigma_tot[node_community] -= k_i
            weight_own = weights_to.get(node_community, 0.0)

            best_community = node_community
            best_gain = 0.0
            # Consider neighbouring communities in deterministic order.
            for candidate in sorted(weights_to):
                gain = weights_to[candidate] - weight_own
                gain -= (
                    resolution
                    * k_i
                    * (sigma_tot.get(candidate, 0.0) - sigma_tot.get(node_community, 0.0))
                    / (2.0 * m)
                )
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_community = candidate

            sigma_tot[best_community] = sigma_tot.get(best_community, 0.0) + k_i
            if best_community != node_community:
                community[node] = best_community
                moves += 1
                improved_any = True
            # self_loop intentionally unused beyond clarity: it cancels out
            # of the move gain because it moves with the node.
            del self_loop
        if moves == 0:
            break
    return community, improved_any
