"""The Louvain method (Blondel et al. 2008), implemented from scratch.

This is the community detection algorithm H-BOLD runs server-side to build
the Cluster Schema (Po & Malvezzi 2018 selected it after comparing several
algorithms on Big Linked Data schema graphs).

Two-phase iteration:

1. *Local moving*: repeatedly move nodes to the neighbouring community with
   the highest positive modularity gain until no move improves Q.
2. *Aggregation*: collapse each community into a super-node (intra-community
   weight becomes a self-loop) and repeat on the condensed graph.

The whole run happens in the dictionary-encoded integer space of the
graph's :class:`~repro.community.graphs.CompactGraph` snapshot: level-0
nodes are interned once, aggregated levels are plain integer ranges, and
the sweep loops index flat arrays.  Visiting order, community numbering and
tie-breaking replicate the reference object-level formulation exactly, so
results are reproducible for a given seed (node visiting order is shuffled
with a seeded ``random.Random``).
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Tuple

from .graphs import UndirectedGraph
from .partition import Partition

__all__ = ["louvain"]

Node = Hashable


def louvain(
    graph: UndirectedGraph,
    seed: int = 0,
    resolution: float = 1.0,
    max_levels: int = 32,
) -> Partition:
    """Run Louvain on *graph*; returns a flat :class:`Partition`.

    ``resolution`` > 1 favours smaller communities, < 1 larger ones (the
    standard resolution-limit dial).  Isolated nodes become singleton
    communities.
    """
    if len(graph) == 0:
        return Partition({})
    rng = random.Random(seed)

    compact = graph.compact()
    original_nodes = compact.nodes
    # Per-level state, all in integer space.
    count = len(original_nodes)
    base_order = compact.repr_order()
    neighbours = compact.neighbours
    degrees = compact.degrees
    m = graph.total_weight()
    # contains[i]: the original node indexes folded into level node i.
    contains: List[List[int]] = [[index] for index in range(count)]

    final_assignment = list(range(count))

    for _level in range(max_levels):
        assignment, order, improved = _one_level(
            base_order, neighbours, degrees, m, rng, resolution
        )
        if not improved and _level > 0:
            break

        # Renumber communities first-seen in visiting order and fold this
        # level into the final assignment (as the reference formulation
        # does, iterating nodes in shuffled order).
        community_ids: Dict[int, int] = {}
        for node_index in order:
            community = assignment[node_index]
            if community not in community_ids:
                community_ids[community] = len(community_ids)
        for node_index in order:
            cid = community_ids[assignment[node_index]]
            for original in contains[node_index]:
                final_assignment[original] = cid

        if not improved:
            break

        # Aggregate each community into a super-node; every undirected edge
        # is visited once via the index ordering (self-loops included).
        new_count = len(community_ids)
        new_contains: List[List[int]] = [[] for _ in range(new_count)]
        for node_index in order:
            new_contains[community_ids[assignment[node_index]]].extend(
                contains[node_index]
            )
        aggregated: List[Dict[int, float]] = [{} for _ in range(new_count)]
        for u_index, neighbour_items in enumerate(neighbours):
            cu = community_ids[assignment[u_index]]
            row_u = aggregated[cu]
            for v_index, weight in neighbour_items:
                if v_index < u_index:
                    continue
                cv = community_ids[assignment[v_index]]
                row_u[cv] = row_u.get(cv, 0.0) + weight
                if cv != cu:
                    aggregated[cv][cu] = aggregated[cv].get(cu, 0.0) + weight

        if new_count == count:
            break  # no contraction happened; a fixed point
        count = new_count
        base_order = _int_repr_order(new_count)
        neighbours = [list(row.items()) for row in aggregated]
        degrees = [
            sum(row.values()) + row.get(index, 0.0)
            for index, row in enumerate(aggregated)
        ]
        contains = new_contains

    return Partition(
        {
            node: final_assignment[index]
            for index, node in enumerate(original_nodes)
        }
    )


_INT_ORDER_CACHE: Dict[int, Tuple[int, ...]] = {}


def _int_repr_order(count: int) -> List[int]:
    """``range(count)`` sorted by repr (aggregated-level node labels are
    plain ints and their deterministic base order is lexicographic)."""
    cached = _INT_ORDER_CACHE.get(count)
    if cached is None:
        cached = _INT_ORDER_CACHE[count] = tuple(sorted(range(count), key=repr))
    return list(cached)


def _one_level(
    base_order: List[int],
    neighbours: List[List[Tuple[int, float]]],
    degrees: List[float],
    m: float,
    rng: random.Random,
    resolution: float,
) -> Tuple[List[int], List[int], bool]:
    """Phase 1: local moving on one level.

    Returns ``(assignment, order, improved)`` where ``assignment[i]`` is the
    community of level node ``i`` and ``order`` is the shuffled visiting
    order (community numbering downstream depends on it).  ``base_order``
    is the deterministic repr-sorted visiting order, consumed (shuffled in
    place) by this call.
    """
    count = len(base_order)
    # Deterministic base order (by repr, as the reference formulation sorts
    # node objects), then a seeded shuffle.
    order = base_order
    rng.shuffle(order)

    community = [0] * count
    for position, node_index in enumerate(order):
        community[node_index] = position
    if m <= 0:
        return community, order, False

    # Sigma_tot per community: sum of degrees of member nodes.
    sigma_tot = [0.0] * count
    for node_index in order:
        sigma_tot[community[node_index]] = degrees[node_index]

    two_m = 2.0 * m
    improved_any = False
    for _sweep in range(100):  # safety bound; converges in a handful of sweeps
        moves = 0
        for node_index in order:
            node_community = community[node_index]
            k_i = degrees[node_index]

            # Weight from node to each neighbouring community.
            weights_to: Dict[int, float] = {}
            for neighbour, weight in neighbours[node_index]:
                if neighbour == node_index:
                    continue  # the self-loop moves with the node; it cancels
                neighbour_community = community[neighbour]
                weights_to[neighbour_community] = (
                    weights_to.get(neighbour_community, 0.0) + weight
                )

            # Remove node from its community for the gain computation.
            sigma_tot[node_community] -= k_i
            weight_own = weights_to.get(node_community, 0.0)
            sigma_own = sigma_tot[node_community]

            best_community = node_community
            best_gain = 0.0
            # Consider neighbouring communities in deterministic order.
            for candidate in sorted(weights_to):
                gain = weights_to[candidate] - weight_own
                gain -= resolution * k_i * (sigma_tot[candidate] - sigma_own) / two_m
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_community = candidate

            sigma_tot[best_community] += k_i
            if best_community != node_community:
                community[node_index] = best_community
                moves += 1
                improved_any = True
        if moves == 0:
            break
    return community, order, improved_any
