"""Greedy modularity agglomeration (Clauset-Newman-Moore style).

Starts from singletons and repeatedly merges the pair of connected
communities with the largest modularity gain until no merge improves Q.
O(k^2) per step in this straightforward form -- fine for schema graphs,
which have at most a few hundred classes, and the point of the E5 ablation
is quality comparison, not asymptotics.
"""

from __future__ import annotations

from typing import Dict, Hashable, Set, Tuple

from .graphs import UndirectedGraph
from .partition import Partition

__all__ = ["greedy_modularity"]

Node = Hashable


def greedy_modularity(graph: UndirectedGraph) -> Partition:
    """Agglomerate for maximum modularity; returns a :class:`Partition`."""
    nodes = sorted(graph.nodes(), key=repr)
    if not nodes:
        return Partition({})
    m = graph.total_weight()
    if m <= 0:
        return Partition.singletons(nodes)

    community_of: Dict[Node, int] = {node: index for index, node in enumerate(nodes)}
    members: Dict[int, Set[Node]] = {index: {node} for index, node in enumerate(nodes)}
    degree_sum: Dict[int, float] = {
        index: graph.degree(node) for index, node in enumerate(nodes)
    }
    # weight between communities (and internal weight on the diagonal)
    between: Dict[Tuple[int, int], float] = {}
    for u, v, weight in graph.edges():
        cu, cv = community_of[u], community_of[v]
        key = (min(cu, cv), max(cu, cv))
        between[key] = between.get(key, 0.0) + weight

    def gain(ci: int, cj: int) -> float:
        key = (min(ci, cj), max(ci, cj))
        e_ij = between.get(key, 0.0)
        return e_ij / m - degree_sum[ci] * degree_sum[cj] / (2.0 * m * m)

    while len(members) > 1:
        best: Tuple[float, int, int] = (0.0, -1, -1)
        for (ci, cj), _weight in between.items():
            if ci == cj:
                continue
            if ci not in members or cj not in members:
                continue
            delta = gain(ci, cj)
            if delta > best[0] + 1e-12:
                best = (delta, ci, cj)
        if best[1] < 0:
            break

        _, ci, cj = best
        # Merge cj into ci.
        for node in members[cj]:
            community_of[node] = ci
        members[ci] |= members.pop(cj)
        degree_sum[ci] += degree_sum.pop(cj)

        # Fold cj's between-weights into ci's.
        updates: Dict[Tuple[int, int], float] = {}
        for (a, b), weight in between.items():
            a2 = ci if a == cj else a
            b2 = ci if b == cj else b
            key = (min(a2, b2), max(a2, b2))
            updates[key] = updates.get(key, 0.0) + weight
        between = updates

    return Partition(community_of)
