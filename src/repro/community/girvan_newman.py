"""Girvan-Newman divisive clustering via edge betweenness (Brandes BFS).

The classical but expensive algorithm: repeatedly remove the highest
edge-betweenness edge, tracking the partition (connected components) with
the best modularity.  Included as the quality-reference point of the E5
ablation; only run it on small schema graphs.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Tuple

from .graphs import UndirectedGraph
from .partition import Partition, modularity

__all__ = ["girvan_newman", "edge_betweenness"]

Node = Hashable


def edge_betweenness(graph: UndirectedGraph) -> Dict[Tuple[Node, Node], float]:
    """Brandes' algorithm for edge betweenness (unweighted shortest paths).

    Keys are node pairs in an arbitrary but consistent orientation; each
    undirected edge appears once.
    """
    betweenness: Dict[Tuple[Node, Node], float] = {}
    canonical: Dict[frozenset, Tuple[Node, Node]] = {}
    for u, v, _ in graph.edges():
        if u == v:
            continue  # self-loops never lie on shortest paths
        key = frozenset((u, v))
        canonical[key] = (u, v)
        betweenness[(u, v)] = 0.0

    for source in graph.nodes():
        # single-source shortest paths (BFS; edges treated as unit length)
        stack: List[Node] = []
        predecessors: Dict[Node, List[Node]] = {node: [] for node in graph.nodes()}
        sigma: Dict[Node, float] = {node: 0.0 for node in graph.nodes()}
        distance: Dict[Node, int] = {node: -1 for node in graph.nodes()}
        sigma[source] = 1.0
        distance[source] = 0
        queue = deque([source])
        while queue:
            node = queue.popleft()
            stack.append(node)
            for neighbour in graph.neighbours(node):
                if neighbour == node:
                    continue
                if distance[neighbour] < 0:
                    distance[neighbour] = distance[node] + 1
                    queue.append(neighbour)
                if distance[neighbour] == distance[node] + 1:
                    sigma[neighbour] += sigma[node]
                    predecessors[neighbour].append(node)

        # accumulation
        dependency: Dict[Node, float] = {node: 0.0 for node in graph.nodes()}
        while stack:
            node = stack.pop()
            for predecessor in predecessors[node]:
                share = (sigma[predecessor] / sigma[node]) * (1.0 + dependency[node])
                key = canonical[frozenset((predecessor, node))]
                betweenness[key] += share
                dependency[predecessor] += share

    # Each pair counted from both endpoints -> halve.
    for key in betweenness:
        betweenness[key] /= 2.0
    return betweenness


def girvan_newman(graph: UndirectedGraph, max_removals: int = None) -> Partition:
    """Remove high-betweenness edges; return the best-modularity partition."""
    working = graph.copy()
    best_partition = Partition.from_communities(working.connected_components())
    best_q = modularity(graph, best_partition)

    total_edges = sum(1 for u, v, _ in graph.edges() if u != v)
    removals = max_removals if max_removals is not None else total_edges

    for _step in range(removals):
        scores = edge_betweenness(working)
        if not scores:
            break
        # Deterministic arg-max: highest score, ties by repr.
        (u, v), _score = max(
            scores.items(), key=lambda item: (item[1], repr(item[0]))
        )
        working.remove_edge(u, v)
        candidate = Partition.from_communities(working.connected_components())
        q = modularity(graph, candidate)
        if q > best_q + 1e-12:
            best_q = q
            best_partition = candidate
    return best_partition
