"""Undirected weighted graphs for community detection.

The Schema Summary is a directed pseudograph; community detection (Po &
Malvezzi 2018, the companion work H-BOLD builds on) runs on its undirected
weighted projection: parallel edges sum their weights, direction is
dropped, self-loops are kept (they matter in the modularity formula).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

__all__ = ["UndirectedGraph", "CompactGraph"]

Node = Hashable
Edge = Tuple[Node, Node, float]


class CompactGraph:
    """A dictionary-encoded projection of an :class:`UndirectedGraph`.

    Nodes are interned to dense integers (insertion order), adjacency
    becomes a list of ``(neighbour_index, weight)`` lists and weighted
    degrees are precomputed -- the same encoding trick the RDF layer uses,
    applied to community detection so the inner Louvain loops hash ints
    instead of arbitrary node objects.  Instances are immutable snapshots;
    the owning graph invalidates its cached snapshot on mutation.
    """

    __slots__ = ("nodes", "index", "neighbours", "degrees", "total_weight", "_repr_order")

    def __init__(self, adjacency: Dict[Node, Dict[Node, float]], total_weight: float):
        self._repr_order: Optional[List[int]] = None
        self.nodes: List[Node] = list(adjacency)
        self.index: Dict[Node, int] = {node: i for i, node in enumerate(self.nodes)}
        index = self.index
        self.neighbours: List[List[Tuple[int, float]]] = []
        self.degrees: List[float] = []
        for node in self.nodes:
            items = adjacency[node]
            self.neighbours.append([(index[other], w) for other, w in items.items()])
            # Self-loops count twice, matching UndirectedGraph.degree().
            self.degrees.append(sum(items.values()) + items.get(node, 0.0))
        self.total_weight = total_weight

    def __len__(self) -> int:
        return len(self.nodes)

    def repr_order(self) -> List[int]:
        """Node indexes sorted by ``repr`` of their node -- the deterministic
        base visiting order community detection shuffles from.  Cached; a
        fresh copy is returned because callers shuffle it in place."""
        if self._repr_order is None:
            nodes = self.nodes
            self._repr_order = sorted(range(len(nodes)), key=lambda i: repr(nodes[i]))
        return list(self._repr_order)


class UndirectedGraph:
    """An adjacency-map weighted undirected graph with self-loops.

    Node objects only need to be hashable.  Edge weights accumulate when
    the same edge is added twice (pseudograph projection).
    """

    def __init__(self):
        self._adjacency: Dict[Node, Dict[Node, float]] = {}
        self._total_weight = 0.0  # sum of edge weights, self-loops counted once
        self._compact: Optional[CompactGraph] = None

    # -- construction ----------------------------------------------------------

    def add_node(self, node: Node) -> None:
        if node not in self._adjacency:
            self._adjacency[node] = {}
            self._compact = None

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight}")
        self.add_node(u)
        self.add_node(v)
        self._adjacency[u][v] = self._adjacency[u].get(v, 0.0) + weight
        if u != v:
            self._adjacency[v][u] = self._adjacency[v].get(u, 0.0) + weight
        self._total_weight += weight
        self._compact = None

    def remove_edge(self, u: Node, v: Node) -> float:
        """Remove the edge entirely; return its weight (0 if absent)."""
        weight = self._adjacency.get(u, {}).pop(v, 0.0)
        if weight and u != v:
            self._adjacency[v].pop(u, None)
        if weight:
            self._total_weight -= weight
            self._compact = None
        return weight

    # -- dictionary-encoded snapshot -------------------------------------------

    def compact(self) -> CompactGraph:
        """The cached :class:`CompactGraph` snapshot (rebuilt after mutation)."""
        if self._compact is None:
            self._compact = CompactGraph(self._adjacency, self._total_weight)
        return self._compact

    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[Node, Node]], weights: Iterable[float] = None
    ) -> "UndirectedGraph":
        graph = cls()
        if weights is None:
            for u, v in edges:
                graph.add_edge(u, v)
        else:
            for (u, v), w in zip(edges, weights):
                graph.add_edge(u, v, w)
        return graph

    def copy(self) -> "UndirectedGraph":
        out = UndirectedGraph()
        for node in self._adjacency:
            out.add_node(node)
        for u, v, w in self.edges():
            out.add_edge(u, v, w)
        return out

    # -- accessors --------------------------------------------------------------

    def nodes(self) -> List[Node]:
        return list(self._adjacency)

    def __len__(self) -> int:
        return len(self._adjacency)

    def __contains__(self, node: Node) -> bool:
        return node in self._adjacency

    def edges(self) -> Iterator[Edge]:
        """Each undirected edge once (u <= v by insertion discipline)."""
        seen: Set[object] = set()
        for u, neighbours in self._adjacency.items():
            for v, weight in neighbours.items():
                key = (u,) if u == v else frozenset((u, v))
                if key in seen:
                    continue
                seen.add(key)
                yield u, v, weight

    def edge_count(self) -> int:
        return sum(1 for _ in self.edges())

    def neighbours(self, node: Node) -> Dict[Node, float]:
        """Mapping neighbour -> accumulated weight (includes self if loop)."""
        return dict(self._adjacency.get(node, {}))

    def has_edge(self, u: Node, v: Node) -> bool:
        return v in self._adjacency.get(u, {})

    def edge_weight(self, u: Node, v: Node) -> float:
        return self._adjacency.get(u, {}).get(v, 0.0)

    def degree(self, node: Node) -> float:
        """Weighted degree; self-loops count twice (modularity convention)."""
        neighbours = self._adjacency.get(node, {})
        total = sum(neighbours.values())
        loop = neighbours.get(node, 0.0)
        return total + loop

    def total_weight(self) -> float:
        """Sum of edge weights (m in the modularity formula)."""
        return self._total_weight

    def connected_components(self) -> List[Set[Node]]:
        """Connected components as sets of nodes (iterative DFS)."""
        remaining = set(self._adjacency)
        components: List[Set[Node]] = []
        while remaining:
            start = next(iter(remaining))
            stack = [start]
            component: Set[Node] = set()
            while stack:
                node = stack.pop()
                if node in component:
                    continue
                component.add(node)
                stack.extend(
                    neighbour
                    for neighbour in self._adjacency[node]
                    if neighbour not in component
                )
            components.append(component)
            remaining -= component
        return components

    def subgraph(self, nodes: Set[Node]) -> "UndirectedGraph":
        out = UndirectedGraph()
        for node in nodes:
            if node in self._adjacency:
                out.add_node(node)
        for u, v, w in self.edges():
            if u in nodes and v in nodes:
                out.add_edge(u, v, w)
        return out

    def __repr__(self) -> str:
        return f"<UndirectedGraph {len(self)} nodes, {self.edge_count()} edges>"
