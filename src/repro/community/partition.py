"""Partitions of a node set into communities, plus quality metrics.

The Cluster Schema construction requires *non-overlapping* communities
("the possibility that a node belongs to several Clusters is avoided",
§2.1), which is exactly what a partition encodes.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Mapping, Set

from .graphs import UndirectedGraph

__all__ = ["Partition", "modularity"]

Node = Hashable


class Partition:
    """A node -> community-id mapping with set-level views.

    Community ids are normalized to dense integers ``0..k-1`` ordered by
    first appearance, so two logically equal partitions compare equal.
    """

    def __init__(self, assignment: Mapping[Node, int]):
        remap: Dict[int, int] = {}
        normalized: Dict[Node, int] = {}
        for node, community in assignment.items():
            if community not in remap:
                remap[community] = len(remap)
            normalized[node] = remap[community]
        self._assignment = normalized

    @classmethod
    def from_communities(cls, communities: Iterable[Iterable[Node]]) -> "Partition":
        assignment: Dict[Node, int] = {}
        for index, community in enumerate(communities):
            for node in community:
                if node in assignment:
                    raise ValueError(f"node {node!r} appears in two communities")
                assignment[node] = index
        return cls(assignment)

    @classmethod
    def singletons(cls, nodes: Iterable[Node]) -> "Partition":
        return cls({node: index for index, node in enumerate(nodes)})

    # -- views -------------------------------------------------------------------

    def community_of(self, node: Node) -> int:
        return self._assignment[node]

    def __getitem__(self, node: Node) -> int:
        return self._assignment[node]

    def __contains__(self, node: Node) -> bool:
        return node in self._assignment

    def __len__(self) -> int:
        return len(self._assignment)

    def nodes(self) -> List[Node]:
        return list(self._assignment)

    def as_dict(self) -> Dict[Node, int]:
        return dict(self._assignment)

    def communities(self) -> Dict[int, Set[Node]]:
        out: Dict[int, Set[Node]] = {}
        for node, community in self._assignment.items():
            out.setdefault(community, set()).add(node)
        return out

    def community_count(self) -> int:
        return len(set(self._assignment.values()))

    def sizes(self) -> List[int]:
        """Community sizes, largest first."""
        return sorted((len(c) for c in self.communities().values()), reverse=True)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        # Equality up to community relabelling.
        if set(self._assignment) != set(other._assignment):
            return False
        mapping: Dict[int, int] = {}
        reverse: Dict[int, int] = {}
        for node, mine in self._assignment.items():
            theirs = other._assignment[node]
            if mapping.setdefault(mine, theirs) != theirs:
                return False
            if reverse.setdefault(theirs, mine) != mine:
                return False
        return True

    def __hash__(self):
        return hash(frozenset(frozenset(c) for c in self.communities().values()))

    def __repr__(self) -> str:
        return f"<Partition {len(self)} nodes into {self.community_count()} communities>"

    # -- validation -----------------------------------------------------------

    def covers(self, nodes: Iterable[Node]) -> bool:
        """True if every node of *nodes* is assigned (total partition)."""
        return all(node in self._assignment for node in nodes)


def modularity(graph: UndirectedGraph, partition: Partition) -> float:
    """Newman weighted modularity Q of *partition* on *graph*.

    Q = (1/2m) * sum_ij [A_ij - k_i k_j / 2m] delta(c_i, c_j), computed via
    the per-community form: sum_c (w_in_c / m - (deg_c / 2m)^2), where
    ``w_in_c`` counts intra-community edge weight (self-loops once) and
    ``deg_c`` is the summed weighted degree (self-loops twice).

    Returns 0.0 for an empty graph (no edges), matching networkx.
    """
    m = graph.total_weight()
    if m <= 0:
        return 0.0
    internal: Dict[int, float] = {}
    degree: Dict[int, float] = {}
    compact = graph.compact()
    degrees = compact.degrees
    communities: List[int] = []
    for index, node in enumerate(compact.nodes):
        if node not in partition:
            raise ValueError(f"partition does not cover node {node!r}")
        community = partition[node]
        communities.append(community)
        degree[community] = degree.get(community, 0.0) + degrees[index]
    # Each undirected edge once via the index ordering (self-loops kept).
    for u, neighbour_items in enumerate(compact.neighbours):
        cu = communities[u]
        for v, weight in neighbour_items:
            if v < u:
                continue
            if communities[v] == cu:
                internal[cu] = internal.get(cu, 0.0) + weight
    q = 0.0
    for community, deg in degree.items():
        w_in = internal.get(community, 0.0)
        q += w_in / m - (deg / (2.0 * m)) ** 2
    return q


def partition_entropy(partition: Partition) -> float:
    """Shannon entropy of community sizes -- a balance measure for ablations."""
    total = len(partition)
    if total == 0:
        return 0.0
    entropy = 0.0
    for size in partition.sizes():
        p = size / total
        entropy -= p * math.log2(p)
    return entropy


def normalized_mutual_information(left: Partition, right: Partition) -> float:
    """NMI between two partitions of the same node set (ablation metric)."""
    nodes = set(left.nodes())
    if nodes != set(right.nodes()):
        raise ValueError("partitions cover different node sets")
    n = len(nodes)
    if n == 0:
        return 1.0
    left_comms = left.communities()
    right_comms = right.communities()
    if len(left_comms) == 1 and len(right_comms) == 1:
        return 1.0

    def entropy(communities: Dict[int, Set[Node]]) -> float:
        h = 0.0
        for members in communities.values():
            p = len(members) / n
            if p > 0:
                h -= p * math.log(p)
        return h

    h_left = entropy(left_comms)
    h_right = entropy(right_comms)
    mutual = 0.0
    for left_members in left_comms.values():
        for right_members in right_comms.values():
            overlap = len(left_members & right_members)
            if overlap == 0:
                continue
            p_joint = overlap / n
            p_left = len(left_members) / n
            p_right = len(right_members) / n
            mutual += p_joint * math.log(p_joint / (p_left * p_right))
    denominator = math.sqrt(h_left * h_right)
    if denominator == 0:
        return 1.0 if left == right else 0.0
    return mutual / denominator
