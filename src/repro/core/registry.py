"""Endpoint registry: the dataset list users pick from, plus manual
insertion with e-mail notification (§3.4).

The registry wraps the storage layer's ``endpoints`` collection with the
workflows the paper describes: listing datasets, submitting a new endpoint
URL with an e-mail address, running the (possibly slow) extraction, mailing
the outcome and deleting the address.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .cluster_schema import build_cluster_schema
from .index_extraction import ExtractionFailed, IndexExtractor
from .models import SchemaSummary
from .notifications import EmailOutbox
from .persistence import HboldStorage

__all__ = ["EndpointRegistry", "SubmissionResult"]


class SubmissionResult:
    """Outcome of a manual endpoint submission."""

    __slots__ = ("url", "accepted", "indexed", "message")

    def __init__(self, url: str, accepted: bool, indexed: bool, message: str):
        self.url = url
        self.accepted = accepted
        self.indexed = indexed
        self.message = message

    def __repr__(self) -> str:
        state = "indexed" if self.indexed else ("accepted" if self.accepted else "rejected")
        return f"<SubmissionResult {self.url!r}: {state}>"


class EndpointRegistry:
    """Dataset list management over :class:`HboldStorage`."""

    def __init__(
        self,
        storage: HboldStorage,
        extractor: IndexExtractor,
        outbox: Optional[EmailOutbox] = None,
        cluster_algorithm: str = "louvain",
    ):
        self.storage = storage
        self.extractor = extractor
        # NB: an empty outbox is falsy (it has __len__), so test identity.
        self.outbox = outbox if outbox is not None else EmailOutbox()
        self.cluster_algorithm = cluster_algorithm
        #: submitted e-mail addresses pending notification, keyed by URL.
        #: This is the ONLY place an address ever lives, and entries are
        #: deleted in `_notify` right after sending.
        self._pending_addresses: Dict[str, str] = {}

    # -- dataset list -------------------------------------------------------------

    def listed_count(self) -> int:
        return self.storage.endpoint_count()

    def indexed_count(self) -> int:
        return self.storage.endpoint_count(status="indexed")

    def dataset_list(self) -> List[Dict]:
        """What the presentation layer shows: indexed datasets first."""
        records = self.storage.list_endpoints()
        return sorted(
            records,
            key=lambda r: (0 if r.get("status") == "indexed" else 1, r["url"]),
        )

    def add_listed(self, url: str, source: str = "registry", title: str = "") -> None:
        """Add a URL to the list without extracting (bulk registry import)."""
        self.storage.upsert_endpoint(url, source=source, title=title or url)

    # -- manual insertion (§3.4) --------------------------------------------------

    def submit(self, url: str, email: str) -> SubmissionResult:
        """The §3.4 workflow: upload URL, extract, notify, delete address."""
        url = url.strip()
        if not url.startswith(("http://", "https://")):
            return SubmissionResult(url, False, False, "invalid URL")
        if self.storage.endpoint_record(url) is not None and (
            self.storage.endpoint_record(url).get("status") == "indexed"
        ):
            return SubmissionResult(url, False, True, "already indexed")

        self.storage.upsert_endpoint(url, source="manual")
        self._pending_addresses[url] = email
        indexed, message = self._extract_and_store(url)
        self._notify(url, indexed, message)
        return SubmissionResult(url, True, indexed, message)

    def _extract_and_store(self, url: str) -> tuple:
        clock = self.extractor.client.network.clock
        try:
            indexes = self.extractor.extract(url)
        except ExtractionFailed as exc:
            self.storage.record_extraction_failure(url, clock.today, exc.reason)
            return False, exc.reason
        summary = SchemaSummary.from_indexes(indexes, computed_at_ms=clock.now_ms)
        cluster_schema = build_cluster_schema(
            summary, algorithm=self.cluster_algorithm, computed_at_ms=clock.now_ms
        )
        self.storage.save_indexes(indexes)
        self.storage.save_summary(summary)
        self.storage.save_cluster_schema(cluster_schema)
        self.storage.record_extraction_success(url, clock.today)
        return True, (
            f"indexed {indexes.class_count} classes / {indexes.instance_count} instances"
        )

    def _notify(self, url: str, indexed: bool, message: str) -> None:
        address = self._pending_addresses.pop(url, None)  # delete the address
        if address is None:
            return
        subject = (
            "H-BOLD: your dataset is now available"
            if indexed
            else "H-BOLD: extraction failed"
        )
        body = (
            f"The index extraction for {url} "
            + ("completed successfully. " if indexed else "did not complete. ")
            + message
        )
        try:
            self.outbox.send(
                address,
                subject,
                body,
                sent_at_ms=self.extractor.client.network.clock.now_ms,
            )
        except ValueError:
            pass  # a bad address must not fail the pipeline

    def pending_address_count(self) -> int:
        """How many personal addresses the system currently holds."""
        return len(self._pending_addresses)
