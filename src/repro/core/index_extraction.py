"""Index Extraction with pattern strategies (§2.1, Benedetti et al. 2014).

Pulls the structural/statistical indexes off one endpoint:

* total number of (typed) instances,
* the list of instantiated classes with per-class instance counts,
* per-class datatype properties,
* inter-class object-property links with counts.

Two pattern strategies cope with implementation differences:

* **aggregate** -- COUNT/GROUP BY queries; one round trip per index.  Fails
  on endpoints that reject aggregates and degrades when result caps
  truncate grouped results.
* **scan** -- plain SELECT with LIMIT/OFFSET pagination, counting client
  side.  Slower (many round trips) but works everywhere.

The extractor tries *aggregate* first and transparently falls back to
*scan* per index when the endpoint rejects or truncates; that mirrors the
strategy selection of the original LODeX extractor.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from ..endpoint.errors import EndpointError, EndpointTimeout, QueryRejected
from ..endpoint.network import SparqlClient
from ..sparql.results import SelectResult
from .models import ClassIndex, EndpointIndexes, LinkIndex
from .parallel import run_parallel

__all__ = ["IndexExtractor", "ExtractionFailed"]


class ExtractionFailed(RuntimeError):
    """Index extraction could not complete for this endpoint."""

    def __init__(self, url: str, reason: str):
        super().__init__(f"extraction failed for {url}: {reason}")
        self.url = url
        self.reason = reason


class IndexExtractor:
    """Extracts :class:`EndpointIndexes` from endpoints via a client."""

    def __init__(
        self,
        client: SparqlClient,
        page_size: int = 1000,
        max_pages: int = 200,
        max_classes: int = 1000,
        infer_types: bool = False,
    ):
        self.client = client
        #: LIMIT used by the scan strategy's pagination
        self.page_size = page_size
        #: safety valve against endless pagination on huge endpoints
        self.max_pages = max_pages
        #: endpoints with more instantiated classes than this are declared
        #: incompatible (the paper's "not compatible with the index
        #: extraction phase")
        self.max_classes = max_classes
        #: LODeX-style inferred schema: count instances through the
        #: rdfs:subClassOf closure (a/rdfs:subClassOf*), falling back to a
        #: client-side closure when the endpoint rejects property paths
        self.infer_types = infer_types

    # -- public API --------------------------------------------------------------

    def extract(self, url: str) -> EndpointIndexes:
        """Run the full extraction for *url*.

        Raises :class:`ExtractionFailed` when the endpoint is unreachable,
        times out on every strategy, or is structurally incompatible.
        """
        strategy_used = "aggregate"
        complete = True
        try:
            if not self.client.is_alive(url):
                raise ExtractionFailed(url, "endpoint unavailable")

            if self.infer_types:
                class_counts, counts_strategy = self._inferred_class_counts(url)
            else:
                class_counts, counts_strategy = self._class_counts(url)
            if counts_strategy == "scan":
                strategy_used = "scan"
            if not class_counts:
                raise ExtractionFailed(url, "no instantiated classes")
            if len(class_counts) > self.max_classes:
                raise ExtractionFailed(
                    url, f"too many classes ({len(class_counts)} > {self.max_classes})"
                )

            datatype_props: Dict[str, List[str]] = {}
            links: List[LinkIndex] = []
            known_classes = set(class_counts)
            for class_iri in sorted(class_counts):
                props, props_complete = self._datatype_properties(url, class_iri)
                datatype_props[class_iri] = props
                complete = complete and props_complete
                class_links, links_strategy, links_complete = self._object_links(
                    url, class_iri, known_classes
                )
                links.extend(class_links)
                complete = complete and links_complete
                if links_strategy == "scan":
                    strategy_used = "scan"

            if self.infer_types:
                # Superclasses repeat their subclasses' instances; the total
                # is the count of directly typed subjects instead.
                total_instances = self._direct_instance_total(url)
            else:
                total_instances = sum(class_counts.values())
            classes = [
                ClassIndex(
                    iri,
                    count,
                    datatype_properties=datatype_props.get(iri, ()),
                )
                for iri, count in sorted(class_counts.items())
            ]
            return EndpointIndexes(
                url,
                total_instances,
                classes,
                links,
                extracted_at_ms=self.client.network.clock.now_ms,
                strategy=strategy_used,
                complete=complete,
                inferred=self.infer_types,
            )
        except ExtractionFailed:
            raise
        except EndpointError as exc:
            raise ExtractionFailed(url, f"{type(exc).__name__}: {exc}") from exc

    def extract_many(
        self, urls: List[str], parallelism: int = 1
    ) -> Dict[str, Union[EndpointIndexes, ExtractionFailed]]:
        """Extract a fleet of endpoints through the simulated worker pool.

        Each endpoint's graph is independent, so extraction is
        embarrassingly parallel: the clock only pays the makespan of a
        ``parallelism``-worker schedule instead of the sequential sum.
        The mapping preserves *urls* order; a failed endpoint maps to its
        :class:`ExtractionFailed` (never raises mid-batch), so one dead
        endpoint cannot stall or abort the others.
        """
        clock = self.client.network.clock
        tasks = [(url, lambda url=url: self.extract(url)) for url in urls]
        outcomes, _ = run_parallel(clock, tasks, parallelism)
        results: Dict[str, Union[EndpointIndexes, ExtractionFailed]] = {}
        for outcome in outcomes:
            if outcome.error is None:
                results[outcome.key] = outcome.value
            elif isinstance(outcome.error, ExtractionFailed):
                results[outcome.key] = outcome.error
            else:
                results[outcome.key] = ExtractionFailed(
                    outcome.key,
                    f"{type(outcome.error).__name__}: {outcome.error}",
                )
        return results

    # -- exploration probe: top-k entities of a class -------------------------------

    def top_entities(
        self, url: str, class_iri: str, k: int = 10
    ) -> List[Tuple[str, int]]:
        """The *k* instances of *class_iri* with the most asserted triples.

        The paper's common exploratory shape -- "which entities dominate
        this class?" -- issued as one aggregate + ``ORDER BY DESC ...
        LIMIT k`` round trip.  On our simulated endpoints that lands on
        the engine's streaming GROUP BY fold and bounded top-k operator,
        so the endpoint tracks O(classes' subjects) accumulator state and
        returns k rows instead of materializing the whole degree table.
        Ties break on the subject IRI so both strategies agree.

        Endpoints that reject aggregates or ORDER BY fall back to the
        scan strategy: page the class's triples and count client-side.
        Returns ``[(iri, degree), ...]`` best-first.
        """
        query = (
            f"SELECT ?s (COUNT(?o) AS ?n) WHERE {{ "
            f"?s a <{class_iri}> . ?s ?p ?o }} "
            f"GROUP BY ?s ORDER BY DESC(?n) ?s LIMIT {k}"
        )
        try:
            result = self.client.select(url, query)
            if not result.truncated:
                out: List[Tuple[str, int]] = []
                for row in result:
                    subject, count = row.get("s"), row.get("n")
                    if subject is None or count is None:
                        continue
                    out.append((str(subject), int(float(count.lexical))))
                return out
        except (QueryRejected, EndpointTimeout):
            pass
        counts: Dict[str, int] = {}
        for page in self._paged(
            url, f"SELECT ?s ?p ?o WHERE {{ ?s a <{class_iri}> . ?s ?p ?o }}"
        ):
            for row in page:
                subject = row.get("s")
                if subject is not None:
                    counts[str(subject)] = counts.get(str(subject), 0) + 1
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]

    def top_entities_all(
        self, url: str, k: int = 10
    ) -> Optional[Dict[str, List[Tuple[str, int]]]]:
        """Per-class top-*k* entity degrees, in ONE round trip.

        The batched form of :meth:`top_entities` for full exploration
        walks: instead of one aggregate + ORDER BY query per class (one
        round trip per ``class_details`` panel), issue a single GROUP BY
        over ``(class, entity)`` and fold the per-class top-k client
        side, with the same ``(-degree, iri)`` ranking rule, so each
        class's list is exactly what :meth:`top_entities` would return.

        Returns ``{class_iri: [(entity_iri, degree), ...]}`` best-first,
        or None when the endpoint rejects aggregates or caps the grouped
        result (callers then fall back to the per-class probes, which
        are smaller and may still succeed).
        """
        query = (
            "SELECT ?c ?s (COUNT(?o) AS ?n) WHERE { "
            "?s a ?c . ?s ?p ?o } GROUP BY ?c ?s"
        )
        try:
            result = self.client.select(url, query)
        except (QueryRejected, EndpointTimeout):
            return None
        if result.truncated:
            return None
        degrees: Dict[str, List[Tuple[int, str]]] = {}
        for row in result:
            class_term, subject, count = row.get("c"), row.get("s"), row.get("n")
            if class_term is None or subject is None or count is None:
                continue
            degrees.setdefault(str(class_term), []).append(
                (int(float(count.lexical)), str(subject))
            )
        spotlight: Dict[str, List[Tuple[str, int]]] = {}
        for class_iri, entries in degrees.items():
            entries.sort(key=lambda item: (-item[0], item[1]))
            spotlight[class_iri] = [(iri, degree) for degree, iri in entries[:k]]
        return spotlight

    # -- index 1+2: classes and their instance counts ------------------------------

    def _class_counts(self, url: str) -> Tuple[Dict[str, int], str]:
        """Class IRI -> instance count, plus the strategy that worked."""
        query = (
            "SELECT ?class (COUNT(?s) AS ?n) WHERE { ?s a ?class } GROUP BY ?class"
        )
        try:
            result = self.client.select(url, query)
            if not result.truncated:
                counts: Dict[str, int] = {}
                for row in result:
                    class_term = row.get("class")
                    count_term = row.get("n")
                    if class_term is None or count_term is None:
                        continue
                    counts[str(class_term)] = int(float(count_term.lexical))
                return counts, "aggregate"
        except (QueryRejected, EndpointTimeout):
            pass
        return self._class_counts_by_scan(url), "scan"

    def _class_counts_by_scan(self, url: str) -> Dict[str, int]:
        """Scan strategy: page DISTINCT classes, then count each via paging."""
        classes: List[str] = []
        for page in self._paged(url, "SELECT DISTINCT ?class WHERE { ?s a ?class }"):
            for row in page:
                term = row.get("class")
                if term is not None:
                    classes.append(str(term))
        counts: Dict[str, int] = {}
        for class_iri in classes:
            counts[class_iri] = self._count_by_scan(
                url, f"SELECT ?s WHERE {{ ?s a <{class_iri}> }}"
            )
        return counts

    # -- inferred-schema variant (LODeX lineage) ---------------------------------

    _RDFS_SUBCLASS = "http://www.w3.org/2000/01/rdf-schema#subClassOf"

    def _inferred_class_counts(self, url: str) -> Tuple[Dict[str, int], str]:
        """Class IRI -> instance count including rdfs:subClassOf inference."""
        query = (
            "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> "
            "SELECT ?class (COUNT(?s) AS ?n) "
            "WHERE { ?s a/rdfs:subClassOf* ?class } GROUP BY ?class"
        )
        try:
            result = self.client.select(url, query)
            if not result.truncated:
                counts: Dict[str, int] = {}
                for row in result:
                    class_term = row.get("class")
                    count_term = row.get("n")
                    if class_term is None or count_term is None:
                        continue
                    counts[str(class_term)] = int(float(count_term.lexical))
                return counts, "aggregate"
        except (QueryRejected, EndpointTimeout):
            pass
        return self._inferred_counts_by_closure(url), "scan"

    def _inferred_counts_by_closure(self, url: str) -> Dict[str, int]:
        """Client-side inference: closure over fetched subclass axioms, then
        one DISTINCT-subjects UNION query per class (exact, path-free)."""
        direct, _ = self._class_counts(url)
        axioms: Dict[str, List[str]] = {}
        for page in self._paged(
            url,
            f"SELECT ?sub ?super WHERE {{ ?sub <{self._RDFS_SUBCLASS}> ?super }}",
        ):
            for row in page:
                sub, super_ = row.get("sub"), row.get("super")
                if sub is not None and super_ is not None:
                    axioms.setdefault(str(sub), []).append(str(super_))

        # ancestors per class via DFS over the axiom graph
        def ancestors(class_iri: str) -> Set[str]:
            out: Set[str] = set()
            stack = [class_iri]
            while stack:
                current = stack.pop()
                for parent in axioms.get(current, ()):
                    if parent not in out:
                        out.add(parent)
                        stack.append(parent)
            return out

        # every class that gains instances through the closure
        descendants: Dict[str, Set[str]] = {}
        for class_iri in direct:
            for ancestor in ancestors(class_iri) | {class_iri}:
                descendants.setdefault(ancestor, set()).add(class_iri)

        counts: Dict[str, int] = {}
        for class_iri, members in sorted(descendants.items()):
            if members == {class_iri}:
                counts[class_iri] = direct.get(class_iri, 0)
                continue
            union = " UNION ".join(f"{{ ?s a <{m}> }}" for m in sorted(members))
            counts[class_iri] = self._count_by_scan(
                url, f"SELECT DISTINCT ?s WHERE {{ {union} }}"
            )
        return counts

    def _direct_instance_total(self, url: str) -> int:
        """Distinct typed subjects (the non-inflated dataset size)."""
        try:
            result = self.client.select(
                url, "SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s a ?c }"
            )
            if not result.truncated:
                return result.scalar_int()
        except (QueryRejected, EndpointTimeout):
            pass
        return self._count_by_scan(url, "SELECT DISTINCT ?s WHERE { ?s a ?c }")

    # -- index 3: datatype properties per class --------------------------------------

    def _datatype_properties(self, url: str, class_iri: str) -> Tuple[List[str], bool]:
        query = (
            f"SELECT DISTINCT ?p WHERE {{ ?s a <{class_iri}> . ?s ?p ?o . "
            f"FILTER ( isLiteral(?o) ) }}"
        )
        properties: List[str] = []
        complete = True
        try:
            for page in self._paged(url, query):
                for row in page:
                    term = row.get("p")
                    if term is not None:
                        properties.append(str(term))
        except EndpointTimeout:
            complete = False
        return sorted(set(properties)), complete

    # -- index 4: object links between classes ----------------------------------------

    def _object_links(
        self, url: str, class_iri: str, known_classes: Set[str]
    ) -> Tuple[List[LinkIndex], str, bool]:
        query = (
            f"SELECT ?p ?target (COUNT(?o) AS ?n) WHERE {{ "
            f"?s a <{class_iri}> . ?s ?p ?o . ?o a ?target }} GROUP BY ?p ?target"
        )
        try:
            result = self.client.select(url, query)
            if not result.truncated:
                links = []
                for row in result:
                    prop, target, count = row.get("p"), row.get("target"), row.get("n")
                    if prop is None or target is None or count is None:
                        continue
                    if str(target) not in known_classes:
                        continue
                    links.append(
                        LinkIndex(
                            class_iri, str(prop), str(target), int(float(count.lexical))
                        )
                    )
                return links, "aggregate", True
        except (QueryRejected, EndpointTimeout):
            pass
        return self._object_links_by_scan(url, class_iri, known_classes)

    def _object_links_by_scan(
        self, url: str, class_iri: str, known_classes: Set[str]
    ) -> Tuple[List[LinkIndex], str, bool]:
        query = (
            f"SELECT ?p ?target WHERE {{ "
            f"?s a <{class_iri}> . ?s ?p ?o . ?o a ?target }}"
        )
        accumulator: Dict[Tuple[str, str], int] = {}
        complete = True
        try:
            for page in self._paged(url, query):
                for row in page:
                    prop, target = row.get("p"), row.get("target")
                    if prop is None or target is None:
                        continue
                    if str(target) not in known_classes:
                        continue
                    key = (str(prop), str(target))
                    accumulator[key] = accumulator.get(key, 0) + 1
        except EndpointTimeout:
            complete = False
        links = [
            LinkIndex(class_iri, prop, target, count)
            for (prop, target), count in sorted(accumulator.items())
        ]
        return links, "scan", complete

    # -- pagination plumbing -------------------------------------------------------

    def _paged(self, url: str, base_query: str):
        """Yield result pages of *base_query* with LIMIT/OFFSET pagination."""
        offset = 0
        for _page in range(self.max_pages):
            query = f"{base_query} LIMIT {self.page_size} OFFSET {offset}"
            result = self.client.select(url, query)
            if not result.rows:
                return
            yield result
            if len(result.rows) < self.page_size and not result.truncated:
                return
            offset += len(result.rows)

    def _count_by_scan(self, url: str, base_query: str) -> int:
        total = 0
        for page in self._paged(url, base_query):
            total += len(page.rows)
        return total
