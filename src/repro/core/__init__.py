"""H-BOLD core: the paper's primary contribution.

The server layer (index extraction with pattern strategies, Schema Summary
and Cluster Schema construction, MongoDB-style persistence, the daily
update scheduler, portal crawling, manual endpoint insertion) and the
presentation layer (exploration sessions, visual query builder, the two
display paths whose timing §3.2 compares, figure rendering), wired
together by the :class:`HBold` facade.
"""

from .cluster_schema import ALGORITHMS, build_cluster_schema, summary_to_undirected
from .crawler import LISTING_1_QUERY, DiscoveredEndpoint, PortalCrawler
from .diff import SummaryDiff, diff_summaries
from .export import (
    clusters_to_csv,
    clusters_to_json,
    summary_to_graph,
    summary_to_turtle,
    summary_to_void_turtle,
)
from .multilevel import (
    AbstractionLevel,
    MultilevelHierarchy,
    build_multilevel_hierarchy,
)
from .statistics import DatasetStatistics, compute_statistics, void_description
from .exploration import ExplorationSession, ExplorationStep
from .hbold import HBold
from .index_extraction import ExtractionFailed, IndexExtractor
from .models import (
    ClassIndex,
    Cluster,
    ClusterEdge,
    ClusterSchema,
    EndpointIndexes,
    LinkIndex,
    SchemaEdge,
    SchemaNode,
    SchemaSummary,
)
from .notifications import EmailMessage, EmailOutbox
from .parallel import TaskOutcome, makespan_ms, run_parallel
from .persistence import HboldStorage
from .presentation import DisplayTiming, PresentationLayer
from .registry import EndpointRegistry, SubmissionResult
from .scheduler import FRESHNESS_DAYS, POLICIES, DailyReport, UpdateScheduler
from .visual_query import QueryBuildError, VisualQuery

__all__ = [
    "ALGORITHMS",
    "AbstractionLevel",
    "ClassIndex",
    "DatasetStatistics",
    "MultilevelHierarchy",
    "build_multilevel_hierarchy",
    "clusters_to_csv",
    "clusters_to_json",
    "compute_statistics",
    "summary_to_graph",
    "summary_to_turtle",
    "summary_to_void_turtle",
    "void_description",
    "Cluster",
    "ClusterEdge",
    "ClusterSchema",
    "DailyReport",
    "DiscoveredEndpoint",
    "DisplayTiming",
    "EmailMessage",
    "EmailOutbox",
    "EndpointIndexes",
    "EndpointRegistry",
    "ExplorationSession",
    "ExplorationStep",
    "ExtractionFailed",
    "FRESHNESS_DAYS",
    "HBold",
    "HboldStorage",
    "IndexExtractor",
    "LISTING_1_QUERY",
    "LinkIndex",
    "POLICIES",
    "PortalCrawler",
    "PresentationLayer",
    "QueryBuildError",
    "SchemaEdge",
    "SchemaNode",
    "SchemaSummary",
    "SubmissionResult",
    "SummaryDiff",
    "TaskOutcome",
    "UpdateScheduler",
    "diff_summaries",
    "makespan_ms",
    "run_parallel",
    "VisualQuery",
    "build_cluster_schema",
    "summary_to_undirected",
]
