"""Dataset statistics: the VoID-style description panel of a dataset.

H-BOLD's dataset list shows structural/statistical information next to
each source (triples, classes, properties, instance distribution).  This
module computes those statistics from stored artifacts -- and can export
them as a VoID RDF description, the W3C vocabulary for dataset metadata.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from ..rdf.graph import Graph
from ..rdf.namespaces import RDF, RDFS, VOID
from ..rdf.terms import IRI, Literal
from .models import EndpointIndexes, SchemaSummary

__all__ = ["DatasetStatistics", "compute_statistics", "void_description"]


class DatasetStatistics:
    """Summary numbers for one indexed dataset."""

    __slots__ = (
        "endpoint_url",
        "instance_count",
        "class_count",
        "property_count",
        "link_count",
        "datatype_property_count",
        "largest_classes",
        "degree_histogram",
        "instance_gini",
    )

    def __init__(
        self,
        endpoint_url: str,
        instance_count: int,
        class_count: int,
        property_count: int,
        link_count: int,
        datatype_property_count: int,
        largest_classes: List[Tuple[str, int]],
        degree_histogram: Dict[int, int],
        instance_gini: float,
    ):
        self.endpoint_url = endpoint_url
        self.instance_count = instance_count
        self.class_count = class_count
        self.property_count = property_count
        self.link_count = link_count
        self.datatype_property_count = datatype_property_count
        self.largest_classes = largest_classes
        self.degree_histogram = degree_histogram
        self.instance_gini = instance_gini

    def to_doc(self) -> Dict[str, Any]:
        return {
            "endpoint_url": self.endpoint_url,
            "instance_count": self.instance_count,
            "class_count": self.class_count,
            "property_count": self.property_count,
            "link_count": self.link_count,
            "datatype_property_count": self.datatype_property_count,
            "largest_classes": [list(item) for item in self.largest_classes],
            "degree_histogram": {str(k): v for k, v in self.degree_histogram.items()},
            "instance_gini": self.instance_gini,
        }

    def __repr__(self) -> str:
        return (
            f"<DatasetStatistics {self.endpoint_url!r}: {self.class_count} classes, "
            f"{self.instance_count} instances, gini={self.instance_gini:.2f}>"
        )


def _gini(values: List[int]) -> float:
    """Gini coefficient of the instance distribution (0 = uniform)."""
    items = sorted(v for v in values if v >= 0)
    n = len(items)
    total = sum(items)
    if n == 0 or total == 0:
        return 0.0
    cumulative = 0.0
    for rank, value in enumerate(items, start=1):
        cumulative += rank * value
    return (2.0 * cumulative) / (n * total) - (n + 1.0) / n


def compute_statistics(summary: SchemaSummary, top: int = 5) -> DatasetStatistics:
    """Derive dataset statistics from a Schema Summary."""
    object_properties = {edge.property for edge in summary.edges}
    datatype_properties = {
        prop for node in summary.nodes for prop in node.datatype_properties
    }
    degree_histogram: Dict[int, int] = {}
    for node in summary.nodes:
        degree = summary.degree(node.iri)
        degree_histogram[degree] = degree_histogram.get(degree, 0) + 1

    largest = sorted(
        ((node.label, node.instance_count) for node in summary.nodes),
        key=lambda item: -item[1],
    )[:top]

    return DatasetStatistics(
        endpoint_url=summary.endpoint_url,
        instance_count=summary.total_instances,
        class_count=len(summary.nodes),
        property_count=len(object_properties) + len(datatype_properties),
        link_count=len(summary.edges),
        datatype_property_count=len(datatype_properties),
        largest_classes=largest,
        degree_histogram=degree_histogram,
        instance_gini=_gini([node.instance_count for node in summary.nodes]),
    )


def void_description(
    summary: SchemaSummary, statistics: Optional[DatasetStatistics] = None
) -> Graph:
    """Encode the dataset description as a VoID graph.

    Emits ``void:Dataset`` with ``void:sparqlEndpoint``, ``void:entities``,
    ``void:classes``, ``void:properties`` and one ``void:classPartition``
    per class carrying ``void:class`` + ``void:entities`` -- the subset of
    VoID that dataset catalogs actually consume.
    """
    statistics = statistics or compute_statistics(summary)
    graph = Graph(identifier=f"void:{summary.endpoint_url}")
    dataset = IRI(summary.endpoint_url.rstrip("/") + "#dataset")

    graph.add_triple(dataset, RDF.type, VOID.Dataset)
    graph.add_triple(dataset, VOID.sparqlEndpoint, IRI(summary.endpoint_url))
    graph.add_triple(dataset, VOID.entities, Literal(statistics.instance_count))
    graph.add_triple(dataset, VOID.classes, Literal(statistics.class_count))
    graph.add_triple(dataset, VOID.properties, Literal(statistics.property_count))

    for index, node in enumerate(summary.nodes):
        partition = IRI(f"{summary.endpoint_url.rstrip('/')}#classPartition{index}")
        graph.add_triple(dataset, VOID.classPartition, partition)
        graph.add_triple(partition, VOID["class"], IRI(node.iri))
        graph.add_triple(partition, VOID.entities, Literal(node.instance_count))
        graph.add_triple(partition, RDFS.label, Literal(node.label))
    return graph
