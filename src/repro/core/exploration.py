"""Interactive exploration sessions (Figure 2's step-by-step workflow).

A session walks the presentation-layer states:

1. show the Cluster Schema (step 1),
2. select a class inside a cluster -> focused view of that class, its
   connections and attributes (step 2),
3. iteratively expand connections from displayed classes (step 3), with
   the UI reporting "the percentage of the instances represented by the
   graph and the total number of nodes" at every step,
4. until the full Schema Summary is displayed (step 4) -- or start
   directly from the Schema Summary.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .models import ClusterSchema, SchemaEdge, SchemaSummary

__all__ = ["ExplorationSession", "ExplorationStep"]


class ExplorationStep:
    """A snapshot of what the user sees after one interaction."""

    __slots__ = (
        "action",
        "visible_classes",
        "visible_edges",
        "node_count",
        "instance_coverage",
        "focus",
    )

    def __init__(
        self,
        action: str,
        visible_classes: Sequence[str],
        visible_edges: Sequence[SchemaEdge],
        instance_coverage: float,
        focus: Optional[str] = None,
    ):
        self.action = action
        self.visible_classes = list(visible_classes)
        self.visible_edges = list(visible_edges)
        self.node_count = len(self.visible_classes)
        self.instance_coverage = instance_coverage
        self.focus = focus

    def __repr__(self) -> str:
        return (
            f"<ExplorationStep {self.action!r}: {self.node_count} nodes, "
            f"{self.instance_coverage:.1%} of instances>"
        )


class ExplorationSession:
    """Stateful exploration over one dataset's summary + cluster schema.

    ``spotlight`` is an optional live-query hook ``(class_iri) ->
    [(entity_iri, degree), ...]`` -- typically
    :meth:`~repro.core.index_extraction.IndexExtractor.top_entities`
    bound to the session's endpoint.  When present, the class-detail
    panel includes the class's dominant entities; the underlying
    aggregate + ``ORDER BY ... LIMIT k`` query rides the engine's
    streaming top-k path (and the endpoint's shared plan cache, so the
    repeated per-class template re-plans nothing).
    """

    def __init__(
        self,
        summary: SchemaSummary,
        cluster_schema: ClusterSchema,
        spotlight: Optional[Callable[[str], List[Tuple[str, int]]]] = None,
    ):
        if cluster_schema.endpoint_url != summary.endpoint_url:
            raise ValueError("summary and cluster schema belong to different endpoints")
        self.summary = summary
        self.cluster_schema = cluster_schema
        self._spotlight = spotlight
        self._visible: Set[str] = set()
        self._focus: Optional[str] = None
        self.history: List[ExplorationStep] = []

    # -- state inspection -----------------------------------------------------------

    @property
    def visible_classes(self) -> List[str]:
        return sorted(self._visible)

    def visible_edges(self) -> List[SchemaEdge]:
        """Arcs with both ends displayed (what the graph view draws)."""
        return [
            edge
            for edge in self.summary.edges
            if edge.source in self._visible and edge.target in self._visible
        ]

    def instance_coverage(self) -> float:
        return self.summary.instance_coverage(self.visible_classes)

    def is_complete(self) -> bool:
        """True when the full Schema Summary is displayed (Figure 2 step 4)."""
        return self._visible == set(self.summary.class_iris())

    def expandable_classes(self) -> List[str]:
        """Visible classes that still have hidden neighbours."""
        out = []
        for iri in sorted(self._visible):
            if any(n not in self._visible for n in self.summary.neighbours(iri)):
                out.append(iri)
        return out

    # -- the Figure 2 interactions -----------------------------------------------------

    def start_from_cluster_schema(self) -> ExplorationStep:
        """Step 1: the Cluster Schema view (no classes displayed yet)."""
        self._visible.clear()
        self._focus = None
        return self._snapshot("view-cluster-schema")

    def select_class(self, class_iri: str) -> ExplorationStep:
        """Step 2: focus on one class -- show it and its direct connections."""
        if class_iri not in self.summary:
            raise KeyError(f"unknown class {class_iri!r}")
        self._focus = class_iri
        self._visible = {class_iri}
        self._visible.update(self.summary.neighbours(class_iri))
        return self._snapshot("select-class", focus=class_iri)

    def expand(self, class_iri: str) -> ExplorationStep:
        """Step 3: expand the connections starting from a displayed class."""
        if class_iri not in self._visible:
            raise ValueError(f"class {class_iri!r} is not displayed; select it first")
        self._visible.update(self.summary.neighbours(class_iri))
        return self._snapshot("expand", focus=class_iri)

    def expand_all(self, max_rounds: int = 1000) -> List[ExplorationStep]:
        """Repeat expansion until the full Schema Summary is shown.

        Classes unreachable from the current view (disconnected schema
        components) are revealed at the end in one final step, mirroring
        the complete Schema Summary visualization.
        """
        steps: List[ExplorationStep] = []
        for _ in range(max_rounds):
            frontier = self.expandable_classes()
            if not frontier:
                break
            steps.append(self.expand(frontier[0]))
        if not self.is_complete():
            self._visible.update(self.summary.class_iris())
            steps.append(self._snapshot("show-schema-summary"))
        return steps

    def start_from_schema_summary(self) -> ExplorationStep:
        """The alternative entry point: the complete class graph at once."""
        self._visible = set(self.summary.class_iris())
        self._focus = None
        return self._snapshot("view-schema-summary")

    def class_details(self, class_iri: str) -> Dict:
        """The attribute/connection panel for a class (Figure 2 steps 2-3)."""
        node = self.summary.node(class_iri)
        incoming = [e for e in self.summary.edges if e.target == class_iri]
        outgoing = [e for e in self.summary.edges if e.source == class_iri]
        details = {
            "iri": node.iri,
            "label": node.label,
            "instance_count": node.instance_count,
            "attributes": list(node.datatype_properties),
            "incoming": [(e.source, e.property, e.count) for e in incoming],
            "outgoing": [(e.property, e.target, e.count) for e in outgoing],
            "cluster": (
                self.cluster_schema.cluster_of(class_iri)
                if self.cluster_schema.covers([class_iri])
                else None
            ),
        }
        if self._spotlight is not None:
            details["top_entities"] = self._spotlight(class_iri)
        return details

    # -- internals -----------------------------------------------------------------

    def _snapshot(self, action: str, focus: Optional[str] = None) -> ExplorationStep:
        step = ExplorationStep(
            action,
            self.visible_classes,
            self.visible_edges(),
            self.instance_coverage(),
            focus=focus or self._focus,
        )
        self.history.append(step)
        return step
