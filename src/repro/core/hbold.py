"""The H-BOLD application facade.

Wires the whole system together -- endpoint network, index extraction,
storage, registry, portal crawler, scheduler, presentation layer and the
figure renderers -- behind the API a user of the reproduction calls:

    world = build_world(...)
    app = HBold(world.network)
    app.bootstrap_registry(world.listed_urls)
    app.update_all()                      # extract + summarize + cluster
    session = app.explore(url)            # Figure 2 walk
    svg = app.render_treemap(url)         # Figure 4
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..docstore.database import DocumentStore
from ..endpoint.errors import EndpointError
from ..endpoint.network import EndpointNetwork, SparqlClient
from ..viz.edge_bundling import EdgeBundlingDiagram, edge_bundling_layout
from ..viz.hierarchy import HierarchyNode
from ..viz.renderers import (
    render_circlepack,
    render_cluster_graph,
    render_edge_bundling,
    render_graph,
    render_sunburst,
    render_treemap,
)
from ..viz.svg import SvgDocument
from .cluster_schema import build_cluster_schema
from .crawler import PortalCrawler
from .exploration import ExplorationSession
from .index_extraction import ExtractionFailed, IndexExtractor
from .models import ClusterSchema, SchemaSummary
from .notifications import EmailOutbox
from .parallel import run_parallel
from .persistence import HboldStorage
from .presentation import PresentationLayer
from .registry import EndpointRegistry, SubmissionResult
from .scheduler import UpdateScheduler
from .visual_query import VisualQuery

__all__ = ["HBold"]


class HBold:
    """High-level Visualization over Big Linked Open Data."""

    def __init__(
        self,
        network: EndpointNetwork,
        store: Optional[DocumentStore] = None,
        cluster_algorithm: str = "louvain",
    ):
        self.network = network
        self.client = SparqlClient(network)
        self.storage = HboldStorage(store)
        self.extractor = IndexExtractor(self.client)
        self.outbox = EmailOutbox()
        self.registry = EndpointRegistry(
            self.storage, self.extractor, outbox=self.outbox,
            cluster_algorithm=cluster_algorithm,
        )
        self.crawler = PortalCrawler(self.client)
        self.scheduler = UpdateScheduler(
            self.storage, self.extractor, cluster_algorithm=cluster_algorithm
        )
        self.presentation = PresentationLayer(
            self.storage, network.clock, cluster_algorithm=cluster_algorithm
        )
        self.cluster_algorithm = cluster_algorithm
        #: per-endpoint spotlight closures for exploration sessions (built
        #: once per url; sessions are created on every exploration click)
        self._spotlights: Dict[str, object] = {}

    # -- registry bootstrap -----------------------------------------------------

    def bootstrap_registry(self, urls: List[str]) -> int:
        """Import a list of endpoint URLs as 'listed' (the old 610)."""
        for url in urls:
            self.registry.add_listed(url)
        return self.registry.listed_count()

    # -- pipeline ----------------------------------------------------------------

    def index_endpoint(self, url: str) -> bool:
        """Run the full server pipeline for one endpoint; True on success."""
        clock = self.network.clock
        try:
            indexes = self.extractor.extract(url)
        except ExtractionFailed as exc:
            self.storage.record_extraction_failure(url, clock.today, exc.reason)
            return False
        summary = SchemaSummary.from_indexes(indexes, computed_at_ms=clock.now_ms)
        cluster_schema = build_cluster_schema(
            summary, algorithm=self.cluster_algorithm, computed_at_ms=clock.now_ms
        )
        self.storage.save_indexes(indexes)
        self.storage.save_summary(summary)
        self.storage.save_cluster_schema(cluster_schema)
        self.storage.record_extraction_success(url, clock.today)
        return True

    def update_all(
        self, urls: Optional[List[str]] = None, parallelism: int = 1
    ) -> Dict[str, bool]:
        """Index every listed endpoint (or the given subset).

        ``parallelism`` fans extraction out across the simulated worker
        pool: each endpoint is an independent task, results merge in
        *urls* order, and a failing endpoint is isolated to its own False
        entry.  Stored artifacts are byte-identical for every parallelism
        level; only the simulated batch latency shrinks.
        """
        targets = urls if urls is not None else [
            record["url"] for record in self.storage.list_endpoints()
        ]
        tasks = [
            (url, lambda url=url: self._index_endpoint_isolated(url))
            for url in targets
        ]
        outcomes, _ = run_parallel(self.network.clock, tasks, parallelism)
        return {outcome.key: bool(outcome.value) for outcome in outcomes}

    def _index_endpoint_isolated(self, url: str) -> bool:
        """One pool task: index *url*, downgrading any error to a failure
        record (an endpoint blowing up mid-batch must not kill the batch)."""
        try:
            return self.index_endpoint(url)
        except Exception as exc:
            self.storage.record_extraction_failure(
                url, self.network.clock.today, f"{type(exc).__name__}: {exc}"
            )
            return False

    def run_daily_update(self, days: int = 1, parallelism: int = 1) -> None:
        """§3.1: advance the scheduler by *days* simulated days."""
        self.scheduler.run_days(days, parallelism=parallelism)

    # -- crawling (§3.3) -----------------------------------------------------------

    def crawl_portals(
        self, portals: Dict[str, str], parallelism: int = 1
    ) -> Dict[str, int]:
        """Crawl portals, merge new endpoints into the registry.

        Returns per-portal found counts plus ``{"new": n}`` -- the §3.3
        numbers.  ``parallelism`` crawls portals concurrently on the
        simulated pool.
        """
        discovered = self.crawler.crawl_all(portals, parallelism=parallelism)
        known = [record["url"] for record in self.storage.list_endpoints()]
        new, found = self.crawler.merge_into_registry(discovered, known)
        for entry in new:
            self.registry.add_listed(entry.url, source=f"portal:{entry.portal}",
                                     title=entry.title)
        found["new"] = len(new)
        return found

    # -- manual insertion (§3.4) ------------------------------------------------------

    def submit_endpoint(self, url: str, email: str) -> SubmissionResult:
        return self.registry.submit(url, email)

    # -- presentation-layer access ------------------------------------------------

    def summary(self, url: str) -> SchemaSummary:
        summary = self.storage.load_summary(url)
        if summary is None:
            raise LookupError(f"{url} has no stored schema summary; index it first")
        return summary

    def cluster_schema(self, url: str) -> ClusterSchema:
        schema = self.storage.load_cluster_schema(url)
        if schema is None:
            raise LookupError(f"{url} has no stored cluster schema; index it first")
        return schema

    #: per-class entities the spotlight batch keeps per endpoint
    SPOTLIGHT_K = 5

    def _spotlight_batch(self, url: str, k: int):
        """The endpoint's batched per-class spotlight, cached on its graph.

        One ``GROUP BY (class, entity)`` round trip covers every class a
        full exploration walk will open, replacing the per-class probes.
        The result lives in the endpoint graph's ``derived_cache`` keyed
        by *k* and stamped with the graph ``generation``, so any dataset
        mutation invalidates it on the next lookup and transient
        sessions over the same endpoint share one batch.  Returns None
        (also cached) when the endpoint cannot answer the batched query;
        callers fall back to the per-class path.
        """
        try:
            graph = self.network.get(url).graph
        except EndpointError:
            return self.extractor.top_entities_all(url, k=k)  # uncacheable
        cache = graph.derived_cache("exploration/spotlight", dict)
        entry = cache.get(k)
        if entry is not None and entry[0] == graph.generation:
            return entry[1]
        batch = self.extractor.top_entities_all(url, k=k)
        cache[k] = (graph.generation, batch)
        return batch

    def explore(self, url: str) -> ExplorationSession:
        """An exploration session whose class-detail panel can spotlight
        a class's dominant entities with a live top-k degree query.

        Spotlights are served from one cached GROUP BY batch per
        endpoint (:meth:`_spotlight_batch`); endpoints that reject or
        truncate the batch keep the per-class probe behaviour."""
        spotlight = self._spotlights.get(url)
        if spotlight is None:

            def spotlight(class_iri: str, k: int = self.SPOTLIGHT_K, url: str = url):
                try:
                    batch = self._spotlight_batch(url, k)
                    if batch is not None:
                        return batch.get(class_iri, [])
                    return self.extractor.top_entities(url, class_iri, k=k)
                except EndpointError:
                    return []  # panel stays usable when the endpoint is down

            self._spotlights[url] = spotlight
        return ExplorationSession(
            self.summary(url), self.cluster_schema(url), spotlight=spotlight
        )

    def visual_query(self, url: str, focus_class: str) -> VisualQuery:
        return VisualQuery(self.summary(url), focus_class)

    def run_visual_query(self, url: str, query: VisualQuery):
        return self.client.select(url, query.to_sparql())

    # -- figure generation ---------------------------------------------------------

    def cluster_hierarchy(self, url: str) -> HierarchyNode:
        """The dataset > clusters > classes hierarchy behind Figures 4-6."""
        summary = self.summary(url)
        schema = self.cluster_schema(url)
        root = HierarchyNode(summary.endpoint_url)
        used_names = set()
        for cluster in schema.clusters:
            cluster_node = root.add_child(
                HierarchyNode(
                    f"cluster:{cluster.label}", data={"cluster_id": cluster.cluster_id}
                )
            )
            for iri in cluster.class_iris:
                node = summary.node(iri)
                # Leaf names must be unique for the edge-bundling layout;
                # local-name collisions across namespaces get a suffix.
                name = node.label
                suffix = 2
                while name in used_names:
                    name = f"{node.label}~{suffix}"
                    suffix += 1
                used_names.add(name)
                cluster_node.add_child(
                    HierarchyNode(name, value=float(node.instance_count), data={"iri": iri})
                )
        return root

    def render_cluster_schema(self, url: str, **options) -> SvgDocument:
        """Figure 2 step 1: the Cluster Schema as a node-link diagram."""
        schema = self.cluster_schema(url)
        clusters = [
            (c.cluster_id, c.label, c.size, c.instance_count) for c in schema.clusters
        ]
        edges = [(e.source, e.target, e.weight) for e in schema.edges]
        return render_cluster_graph(clusters, edges, **options)

    def statistics(self, url: str):
        """VoID-style dataset statistics for the dataset panel."""
        from .statistics import compute_statistics

        return compute_statistics(self.summary(url))

    def multilevel_hierarchy(self, url: str, **options):
        """The multilevel abstraction pyramid (beyond the two paper levels)."""
        from .multilevel import build_multilevel_hierarchy

        return build_multilevel_hierarchy(
            self.summary(url), algorithm=self.cluster_algorithm, **options
        )

    def render_treemap(self, url: str, **options) -> SvgDocument:
        return render_treemap(self.cluster_hierarchy(url), **options)

    def render_sunburst(self, url: str, **options) -> SvgDocument:
        return render_sunburst(self.cluster_hierarchy(url), **options)

    def render_circlepack(self, url: str, **options) -> SvgDocument:
        return render_circlepack(self.cluster_hierarchy(url), **options)

    def edge_bundling_diagram(
        self, url: str, focus: Optional[str] = None, beta: float = 0.85
    ) -> EdgeBundlingDiagram:
        """Figure 7 layout over the Schema Summary (focus = class label)."""
        summary = self.summary(url)
        root = self.cluster_hierarchy(url)
        label_of = {leaf.data["iri"]: leaf.name for leaf in root.leaves()}
        edges = []
        edge_data = []
        for edge in summary.edges:
            edges.append((label_of[edge.source], label_of[edge.target]))
            edge_data.append({"property": edge.property, "count": edge.count})
        return edge_bundling_layout(
            root, edges, focus=focus, beta=beta, edge_data=edge_data
        )

    def render_edge_bundling(self, url: str, focus: Optional[str] = None) -> SvgDocument:
        return render_edge_bundling(self.edge_bundling_diagram(url, focus=focus))

    def render_exploration(self, session: ExplorationSession, **options) -> SvgDocument:
        """Figure 2-style view of the session's currently visible subgraph."""
        summary = session.summary
        nodes = session.visible_classes
        edges = [
            (edge.source, edge.target)
            for edge in session.visible_edges()
            if edge.source != edge.target
        ]
        labels = {iri: summary.node(iri).label for iri in nodes}
        return render_graph(nodes, edges, labels=labels, **options)

    # -- stats the paper reports ------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        return {
            "listed": self.registry.listed_count(),
            "indexed": self.registry.indexed_count(),
        }
