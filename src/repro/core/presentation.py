"""Presentation-layer display paths and their timing model (E1, §3.2).

The 2018 demo computed the Cluster Schema on-the-fly on every user click:
fetch the Schema Summary, run community detection, transform, load, draw.
The re-engineered version reads the precomputed Cluster Schema straight
from the DB.  "Experimental results showed that, on half of the SPARQL
endpoints stored in H-BOLD, the time needed to display the Cluster Schema
to the user is decreased by the 35%."

Both paths are implemented here against the same storage, with an explicit
cost model charged to the simulation clock:

* DB fetch: ``DB_BASE_MS`` + ``DB_PER_ITEM_MS`` x (document item count)
* community detection: ``DETECT_BASE_MS`` + ``DETECT_PER_ITEM_MS`` x
  (classes + arcs) -- the on-the-fly path only
* transform (summary -> cluster view model): ``TRANSFORM_BASE_MS`` +
  ``TRANSFORM_PER_ITEM_MS`` x classes -- the on-the-fly path only
* render: ``RENDER_BASE_MS`` + ``RENDER_PER_NODE_MS`` x drawn nodes

The constants are calibrated so the *relative* saving distribution matches
the paper's claim on the simulated endpoint population; absolute numbers
are simulator milliseconds, not browser measurements.
"""

from __future__ import annotations

from typing import List, Optional

from ..endpoint.clock import SimulationClock
from .cluster_schema import build_cluster_schema
from .models import ClusterSchema
from .persistence import HboldStorage

__all__ = ["PresentationLayer", "DisplayTiming"]

# Both paths pay the HTTP round trip to the server (DB_BASE_MS) and the
# final draw (RENDER_BASE_MS); the on-the-fly path additionally pays
# detection + transform, which is what §3.2 eliminated.  Calibrated so the
# median saving over the simulated population lands in the paper's
# "35% on half of the endpoints" regime.
DB_BASE_MS = 120.0
DB_PER_ITEM_MS = 0.35
DETECT_BASE_MS = 45.0
DETECT_PER_ITEM_MS = 1.3
TRANSFORM_BASE_MS = 25.0
TRANSFORM_PER_ITEM_MS = 0.6
RENDER_BASE_MS = 70.0
RENDER_PER_NODE_MS = 0.9


class DisplayTiming:
    """Outcome of one display request."""

    __slots__ = ("url", "mode", "elapsed_ms", "cluster_schema")

    def __init__(self, url: str, mode: str, elapsed_ms: float, cluster_schema: ClusterSchema):
        self.url = url
        self.mode = mode
        self.elapsed_ms = elapsed_ms
        self.cluster_schema = cluster_schema

    def __repr__(self) -> str:
        return f"<DisplayTiming {self.url!r} {self.mode}: {self.elapsed_ms:.1f} ms>"


class PresentationLayer:
    """Serves Cluster Schema views the old way and the new way."""

    def __init__(
        self,
        storage: HboldStorage,
        clock: SimulationClock,
        cluster_algorithm: str = "louvain",
    ):
        self.storage = storage
        self.clock = clock
        self.cluster_algorithm = cluster_algorithm

    # -- the re-engineered path (§3.2: precomputed + stored) ---------------------

    def display_precomputed(self, url: str) -> DisplayTiming:
        """Fetch the stored Cluster Schema and render it."""
        start = self.clock.now_ms
        schema = self.storage.load_cluster_schema(url)
        if schema is None:
            raise LookupError(f"no stored cluster schema for {url}")
        items = len(schema.clusters) + len(schema.edges)
        self.clock.advance(DB_BASE_MS + DB_PER_ITEM_MS * items)
        self.clock.advance(RENDER_BASE_MS + RENDER_PER_NODE_MS * len(schema.clusters))
        return DisplayTiming(url, "precomputed", self.clock.now_ms - start, schema)

    # -- the 2018 demo path (on-the-fly in the presentation layer) ----------------

    def display_on_the_fly(self, url: str) -> DisplayTiming:
        """Fetch the Schema Summary, cluster it now, transform, render."""
        start = self.clock.now_ms
        summary = self.storage.load_summary(url)
        if summary is None:
            raise LookupError(f"no stored schema summary for {url}")
        summary_items = len(summary.nodes) + len(summary.edges)
        self.clock.advance(DB_BASE_MS + DB_PER_ITEM_MS * summary_items)

        schema = build_cluster_schema(
            summary, algorithm=self.cluster_algorithm, computed_at_ms=self.clock.now_ms
        )
        self.clock.advance(DETECT_BASE_MS + DETECT_PER_ITEM_MS * summary_items)
        self.clock.advance(TRANSFORM_BASE_MS + TRANSFORM_PER_ITEM_MS * len(summary.nodes))
        self.clock.advance(RENDER_BASE_MS + RENDER_PER_NODE_MS * len(schema.clusters))
        return DisplayTiming(url, "on-the-fly", self.clock.now_ms - start, schema)

    # -- comparison helper used by the E1 bench -----------------------------------

    def compare(self, urls: List[str]) -> List[dict]:
        """Both paths per URL; returns per-endpoint timings and saving."""
        out = []
        for url in urls:
            fly = self.display_on_the_fly(url)
            pre = self.display_precomputed(url)
            saving = 1.0 - (pre.elapsed_ms / fly.elapsed_ms) if fly.elapsed_ms > 0 else 0.0
            out.append(
                {
                    "url": url,
                    "on_the_fly_ms": fly.elapsed_ms,
                    "precomputed_ms": pre.elapsed_ms,
                    "saving": saving,
                }
            )
        return out
