"""A deterministic worker pool over simulated time.

The fleet-level loops (``HBold.update_all``, the §3.1 daily scheduler,
portal crawling) talk to *independent* endpoints, so a real deployment
fans them out across a thread or process pool.  This reproduction charges
all latency to one :class:`~repro.endpoint.clock.SimulationClock` instead
of wall time, so its worker pool is simulated the same way the endpoint
latency model is: each task of a batch runs against the batch-start
clock, the pool measures every task's elapsed simulated time, and the
shared clock then advances once by the makespan of a greedy
``parallelism``-worker schedule.

That construction buys three properties a real pool cannot give a
simulation:

* **Determinism** -- tasks execute (under the hood) one at a time in
  input order, so storage writes, per-endpoint RNG streams and result
  merge order are identical for every ``parallelism`` value; only the
  simulated batch latency changes.  ``update_all(parallelism=4)`` stores
  byte-identical artifacts to ``parallelism=1``.
* **Failure isolation** -- a task that raises is captured as its own
  :class:`TaskOutcome`; the batch keeps going, and the failed endpoint's
  retry/backoff cost overlaps other workers instead of stalling them.
* **An honest latency model** -- the makespan is a classic greedy list
  schedule (each task goes to the earliest-free worker), the same bound
  real pools converge to for independent tasks.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional, Sequence, Tuple

from ..endpoint.clock import SimulationClock

__all__ = ["TaskOutcome", "run_parallel", "makespan_ms"]


class TaskOutcome:
    """What one pooled task did: its result or the exception it raised."""

    __slots__ = ("key", "value", "error", "elapsed_ms")

    def __init__(self, key: Hashable, value, error: Optional[BaseException], elapsed_ms: float):
        self.key = key
        self.value = value
        self.error = error
        self.elapsed_ms = elapsed_ms

    @property
    def ok(self) -> bool:
        return self.error is None

    def __repr__(self) -> str:
        status = "ok" if self.error is None else type(self.error).__name__
        return f"<TaskOutcome {self.key!r} {status} {self.elapsed_ms:.1f}ms>"


def makespan_ms(durations: Sequence[float], parallelism: int) -> float:
    """Greedy list-schedule makespan of *durations* over *parallelism* workers.

    Tasks are assigned in input order to the earliest-free worker --
    exactly what a work-stealing pool does for independent tasks.  With
    one worker this degenerates to the plain sum, i.e. today's sequential
    behaviour.
    """
    if parallelism < 1:
        raise ValueError(f"parallelism must be >= 1, got {parallelism}")
    if not durations:
        return 0.0
    workers = [0.0] * min(parallelism, len(durations))
    for duration in durations:
        slot = min(range(len(workers)), key=workers.__getitem__)
        workers[slot] += duration
    return max(workers)


def run_parallel(
    clock: SimulationClock,
    tasks: Sequence[Tuple[Hashable, Callable[[], object]]],
    parallelism: int = 1,
) -> Tuple[List[TaskOutcome], float]:
    """Run ``(key, thunk)`` *tasks* as one batch of pooled work.

    Every thunk observes the clock at the batch start (so outcomes do not
    depend on batch position or on ``parallelism``), exceptions are
    captured per task, and the clock finally advances by the parallel
    makespan.  Returns the outcomes in input order plus that makespan.
    """
    if parallelism < 1:
        raise ValueError(f"parallelism must be >= 1, got {parallelism}")
    start_ms = clock.checkpoint()
    outcomes: List[TaskOutcome] = []
    for key, thunk in tasks:
        value = None
        error: Optional[BaseException] = None
        try:
            value = thunk()
        except Exception as exc:
            error = exc
        elapsed = clock.now_ms - start_ms
        clock.restore(start_ms)
        outcomes.append(TaskOutcome(key, value, error, elapsed))
    total = makespan_ms([outcome.elapsed_ms for outcome in outcomes], parallelism)
    clock.advance(total)
    return outcomes, total
