"""A deterministic worker pool over simulated time.

The fleet-level loops (``HBold.update_all``, the §3.1 daily scheduler,
portal crawling) talk to *independent* endpoints, so a real deployment
fans them out across a thread or process pool.  This reproduction charges
all latency to one :class:`~repro.endpoint.clock.SimulationClock` instead
of wall time, so its worker pool is simulated the same way the endpoint
latency model is: each task of a batch runs against the batch-start
clock, the pool measures every task's elapsed simulated time, and the
shared clock then advances once by the makespan of a greedy
``parallelism``-worker schedule.

That construction buys three properties a real pool cannot give a
simulation:

* **Determinism** -- tasks execute (under the hood) one at a time in
  input order, so storage writes, per-endpoint RNG streams and result
  merge order are identical for every ``parallelism`` value; only the
  simulated batch latency changes.  ``update_all(parallelism=4)`` stores
  byte-identical artifacts to ``parallelism=1``.
* **Failure isolation** -- a task that raises is captured as its own
  :class:`TaskOutcome`; the batch keeps going, and the failed endpoint's
  retry/backoff cost overlaps other workers instead of stalling them.
* **An honest latency model** -- the makespan is a classic greedy list
  schedule (each task goes to the earliest-free worker), the same bound
  real pools converge to for independent tasks.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional, Sequence, Tuple

from ..endpoint.clock import SimulationClock

__all__ = [
    "TaskOutcome",
    "measure_task",
    "race_hedged",
    "run_parallel",
    "makespan_ms",
    "SimWorkerPool",
]


class TaskOutcome:
    """What one pooled task did: its result or the exception it raised."""

    __slots__ = ("key", "value", "error", "elapsed_ms")

    def __init__(self, key: Hashable, value, error: Optional[BaseException], elapsed_ms: float):
        self.key = key
        self.value = value
        self.error = error
        self.elapsed_ms = elapsed_ms

    @property
    def ok(self) -> bool:
        return self.error is None

    def __repr__(self) -> str:
        status = "ok" if self.error is None else type(self.error).__name__
        return f"<TaskOutcome {self.key!r} {status} {self.elapsed_ms:.1f}ms>"


def measure_task(
    clock: SimulationClock, key: Hashable, thunk: Callable[[], object]
) -> TaskOutcome:
    """Run *thunk* against the current clock and measure its simulated cost.

    The checkpoint/run/restore idiom both pools share: the thunk executes
    with the clock at its logical start instant, its elapsed simulated
    time is read off the clock, and the clock is rewound so the caller
    decides how measured durations combine into real clock advances (a
    batch makespan for :func:`run_parallel`, a per-request completion time
    for the serving tier's scheduler).  Exceptions are captured in the
    returned :class:`TaskOutcome`, never raised.
    """
    start_ms = clock.checkpoint()
    value = None
    error: Optional[BaseException] = None
    try:
        value = thunk()
    except Exception as exc:
        error = exc
    elapsed = clock.now_ms - start_ms
    clock.restore(start_ms)
    return TaskOutcome(key, value, error, elapsed)


def race_hedged(
    clock: SimulationClock,
    key: Hashable,
    primary: Callable[[], object],
    hedge: Callable[[], object],
    hedge_delay_ms: float,
) -> Tuple[TaskOutcome, bool, bool]:
    """Race *primary* against a *hedge* attempt fired ``hedge_delay_ms`` in.

    The simulated form of a hedged request: both thunks are measured with
    :func:`measure_task` (clock rewound after each), then the clock
    advances **once** by the winner's completion offset -- the first
    completion wins and the loser is cancelled, i.e. its remaining
    simulated time is simply never charged to the clock.  Side effects of
    both attempts still happen (exactly like a real hedged call that is
    cancelled after the backend already did the work), so hedging is only
    sound for idempotent reads whose two attempts return interchangeable
    results.

    The hedge fires only if the primary is still in flight at
    ``hedge_delay_ms``.  A failed primary loses to a successful hedge even
    when it failed earlier -- an error is not a completion a client
    accepts while a better attempt is still running.

    Returns ``(winning outcome, hedge_fired, hedge_won)``.
    """
    if hedge_delay_ms < 0:
        raise ValueError(f"hedge delay must be >= 0, got {hedge_delay_ms}")
    first = measure_task(clock, key, primary)
    if first.elapsed_ms <= hedge_delay_ms:
        clock.advance(first.elapsed_ms)
        return first, False, False
    second = measure_task(clock, key, hedge)
    hedge_completion = hedge_delay_ms + second.elapsed_ms
    if second.ok and (hedge_completion < first.elapsed_ms or not first.ok):
        clock.advance(hedge_completion)
        return second, True, True
    clock.advance(first.elapsed_ms)
    return first, True, False


def makespan_ms(durations: Sequence[float], parallelism: int) -> float:
    """Greedy list-schedule makespan of *durations* over *parallelism* workers.

    Tasks are assigned in input order to the earliest-free worker --
    exactly what a work-stealing pool does for independent tasks.  With
    one worker this degenerates to the plain sum, i.e. today's sequential
    behaviour.
    """
    if parallelism < 1:
        raise ValueError(f"parallelism must be >= 1, got {parallelism}")
    if not durations:
        return 0.0
    workers = [0.0] * min(parallelism, len(durations))
    for duration in durations:
        slot = min(range(len(workers)), key=workers.__getitem__)
        workers[slot] += duration
    return max(workers)


def run_parallel(
    clock: SimulationClock,
    tasks: Sequence[Tuple[Hashable, Callable[[], object]]],
    parallelism: int = 1,
) -> Tuple[List[TaskOutcome], float]:
    """Run ``(key, thunk)`` *tasks* as one batch of pooled work.

    Every thunk observes the clock at the batch start (so outcomes do not
    depend on batch position or on ``parallelism``), exceptions are
    captured per task, and the clock finally advances by the parallel
    makespan.  Returns the outcomes in input order plus that makespan.
    """
    if parallelism < 1:
        raise ValueError(f"parallelism must be >= 1, got {parallelism}")
    outcomes: List[TaskOutcome] = [
        measure_task(clock, key, thunk) for key, thunk in tasks
    ]
    total = makespan_ms([outcome.elapsed_ms for outcome in outcomes], parallelism)
    clock.advance(total)
    return outcomes, total


class SimWorkerPool:
    """Worker-occupancy bookkeeping for *open-ended* simulated scheduling.

    :func:`run_parallel` models one closed batch: all tasks known up
    front, one collective makespan advance.  The serving tier's scheduler
    instead sees an arrival process -- requests start whenever a worker
    is free and finish at individually computed times -- so it needs the
    worker ledger itself: how many of ``parallelism`` server threads are
    busy at a given instant, and until when.  Tasks are dispatched to the
    earliest-free worker (the same greedy rule as :func:`makespan_ms`),
    and the *caller* advances the shared clock as its event loop walks
    forward; the pool never advances the clock.

    Durations come from :func:`measure_task` against the same clock, so
    a request's simulated cost is measured at its start instant exactly
    like batch tasks are measured at the batch start.
    """

    __slots__ = ("clock", "parallelism", "_busy_until")

    def __init__(self, clock: SimulationClock, parallelism: int):
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        self.clock = clock
        self.parallelism = parallelism
        self._busy_until = [clock.now_ms] * parallelism

    def idle_workers(self, now_ms: float) -> int:
        """How many workers are free at *now_ms*."""
        return sum(1 for until in self._busy_until if until <= now_ms)

    def next_free_ms(self) -> float:
        """The earliest instant any worker is (or becomes) free."""
        return min(self._busy_until)

    def start(self, start_ms: float, duration_ms: float) -> float:
        """Occupy the earliest-free worker from *start_ms*; return the
        completion instant ``start_ms + duration_ms``."""
        slot = min(range(self.parallelism), key=self._busy_until.__getitem__)
        if self._busy_until[slot] > start_ms:
            raise ValueError(
                f"no idle worker at {start_ms:.3f} ms "
                f"(earliest free {self._busy_until[slot]:.3f} ms)"
            )
        completion = start_ms + duration_ms
        self._busy_until[slot] = completion
        return completion
