"""The visual query builder: clicks on the graph -> SPARQL text.

H-BOLD "provides a visual interface for querying the endpoint that
automatically generates SPARQL queries" (abstract; inherited from LODeX).
A :class:`VisualQuery` records the user's selections -- a focus class,
attribute checkboxes, connection hops, filters -- and compiles them into a
SELECT query that runs against the endpoint.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple

from .models import SchemaSummary

__all__ = ["VisualQuery", "QueryBuildError"]

_VAR_SAFE = re.compile(r"[^A-Za-z0-9_]")


class QueryBuildError(ValueError):
    """The visual selection cannot compile into a query."""


def _variable_for(label: str, taken: set) -> str:
    base = _VAR_SAFE.sub("_", label) or "v"
    base = base[0].lower() + base[1:] if base else "v"
    candidate = base
    suffix = 2
    while candidate in taken:
        candidate = f"{base}{suffix}"
        suffix += 1
    taken.add(candidate)
    return candidate


class _Connection:
    __slots__ = ("property_iri", "target_class", "forward", "variable", "attributes")

    def __init__(self, property_iri: str, target_class: str, forward: bool, variable: str):
        self.property_iri = property_iri
        self.target_class = target_class
        self.forward = forward
        self.variable = variable
        self.attributes: List[Tuple[str, str]] = []  # (property, variable)


class VisualQuery:
    """Builder state mirroring the clicks in H-BOLD's query interface."""

    def __init__(self, summary: SchemaSummary, focus_class: str):
        if focus_class not in summary:
            raise QueryBuildError(f"unknown focus class {focus_class!r}")
        self.summary = summary
        self.focus_class = focus_class
        self._taken: set = set()
        self.focus_variable = _variable_for(summary.node(focus_class).label, self._taken)
        self._attributes: List[Tuple[str, str]] = []
        self._connections: List[_Connection] = []
        self._filters: List[str] = []
        self.distinct = True
        self.limit: Optional[int] = None

    # -- selection steps ---------------------------------------------------------

    def select_attribute(self, property_iri: str) -> str:
        """Tick an attribute checkbox on the focus class; returns its var."""
        node = self.summary.node(self.focus_class)
        if property_iri not in node.datatype_properties:
            raise QueryBuildError(
                f"{property_iri!r} is not an attribute of {node.label}"
            )
        variable = _variable_for(property_iri.rsplit("/", 1)[-1].rsplit("#", 1)[-1], self._taken)
        self._attributes.append((property_iri, variable))
        return variable

    def follow_connection(
        self, property_iri: str, target_class: str, forward: bool = True
    ) -> str:
        """Follow a property arc to a connected class; returns the new var.

        ``forward=True`` follows domain->range (focus is the subject),
        ``forward=False`` follows an incoming arc (focus is the object).
        """
        source, target = (
            (self.focus_class, target_class) if forward else (target_class, self.focus_class)
        )
        known = {
            (e.source, e.property, e.target) for e in self.summary.edges
        }
        if (source, property_iri, target) not in known:
            raise QueryBuildError(
                f"no arc {source} -[{property_iri}]-> {target} in the schema"
            )
        variable = _variable_for(self.summary.node(target_class).label, self._taken)
        self._connections.append(_Connection(property_iri, target_class, forward, variable))
        return variable

    def select_connection_attribute(self, connection_variable: str, property_iri: str) -> str:
        """Tick an attribute on a connected class already added."""
        for connection in self._connections:
            if connection.variable == connection_variable:
                node = self.summary.node(connection.target_class)
                if property_iri not in node.datatype_properties:
                    raise QueryBuildError(
                        f"{property_iri!r} is not an attribute of {node.label}"
                    )
                variable = _variable_for(
                    property_iri.rsplit("/", 1)[-1].rsplit("#", 1)[-1], self._taken
                )
                connection.attributes.append((property_iri, variable))
                return variable
        raise QueryBuildError(f"no connection bound to ?{connection_variable}")

    def add_filter(self, expression: str) -> None:
        """Attach a raw FILTER expression (the UI's filter box)."""
        if not expression.strip():
            raise QueryBuildError("empty filter expression")
        self._filters.append(expression.strip())

    def set_limit(self, limit: int) -> None:
        if limit <= 0:
            raise QueryBuildError("limit must be positive")
        self.limit = limit

    # -- compilation --------------------------------------------------------------

    def projected_variables(self) -> List[str]:
        out = [self.focus_variable]
        out.extend(variable for _, variable in self._attributes)
        for connection in self._connections:
            out.append(connection.variable)
            out.extend(variable for _, variable in connection.attributes)
        return out

    def to_sparql(self) -> str:
        """Compile the selection into executable SPARQL text."""
        lines: List[str] = []
        projection = " ".join(f"?{name}" for name in self.projected_variables())
        select = "SELECT DISTINCT" if self.distinct else "SELECT"
        lines.append(f"{select} {projection}")
        lines.append("WHERE {")
        lines.append(f"  ?{self.focus_variable} a <{self.focus_class}> .")
        for property_iri, variable in self._attributes:
            lines.append(f"  ?{self.focus_variable} <{property_iri}> ?{variable} .")
        for connection in self._connections:
            if connection.forward:
                lines.append(
                    f"  ?{self.focus_variable} <{connection.property_iri}> "
                    f"?{connection.variable} ."
                )
            else:
                lines.append(
                    f"  ?{connection.variable} <{connection.property_iri}> "
                    f"?{self.focus_variable} ."
                )
            lines.append(
                f"  ?{connection.variable} a <{connection.target_class}> ."
            )
            for property_iri, variable in connection.attributes:
                lines.append(
                    f"  ?{connection.variable} <{property_iri}> ?{variable} ."
                )
        for expression in self._filters:
            lines.append(f"  FILTER ( {expression} )")
        lines.append("}")
        if self.limit is not None:
            lines.append(f"LIMIT {self.limit}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<VisualQuery focus={self.focus_class!r} attrs={len(self._attributes)} "
            f"connections={len(self._connections)}>"
        )
