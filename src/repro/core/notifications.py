"""E-mail notifications for manual endpoint insertion (§3.4).

"the user is asked to provide an e-mail address so that the system can
notify he/she about the status of the extraction.  At the end of the
extraction, the e-mail address is deleted, since we do not want to keep
person data."

:class:`EmailOutbox` simulates the mail gateway; privacy enforcement (the
address never persists past the notification) lives in the registry, and
the outbox redacts recipient addresses from anything it retains so even
the simulated infrastructure holds no personal data after send.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional

__all__ = ["EmailMessage", "EmailOutbox"]


class EmailMessage:
    """A sent notification with the recipient address redacted."""

    __slots__ = ("recipient_hash", "subject", "body", "sent_at_ms")

    def __init__(self, recipient_hash: str, subject: str, body: str, sent_at_ms: float):
        self.recipient_hash = recipient_hash
        self.subject = subject
        self.body = body
        self.sent_at_ms = sent_at_ms

    def __repr__(self) -> str:
        return f"<EmailMessage to=#{self.recipient_hash[:8]} subject={self.subject!r}>"


def _hash_address(address: str) -> str:
    return hashlib.sha256(address.strip().lower().encode("utf-8")).hexdigest()


class EmailOutbox:
    """Collects sent mail for assertions; keeps only hashed recipients."""

    def __init__(self):
        self.sent: List[EmailMessage] = []
        self.delivery_failures = 0

    def send(
        self, recipient: str, subject: str, body: str, sent_at_ms: float = 0.0
    ) -> EmailMessage:
        """Send a notification.  The plaintext address is not retained."""
        if "@" not in recipient or recipient.startswith("@") or recipient.endswith("@"):
            self.delivery_failures += 1
            raise ValueError(f"invalid e-mail address")
        message = EmailMessage(_hash_address(recipient), subject, body, sent_at_ms)
        self.sent.append(message)
        return message

    def messages_for(self, address: str) -> List[EmailMessage]:
        """Messages sent to *address* (test helper; hashes to compare)."""
        digest = _hash_address(address)
        return [message for message in self.sent if message.recipient_hash == digest]

    def __len__(self) -> int:
        return len(self.sent)
