"""Data models for H-BOLD's pipeline artifacts.

Three artifacts flow through the server layer (§2.1):

* :class:`EndpointIndexes` -- the raw structural/statistical indexes the
  Index Extraction phase pulls from an endpoint (instance count, class
  count, per-class properties and counts, inter-class links),
* :class:`SchemaSummary` -- the pseudograph of instantiated classes,
* :class:`ClusterSchema` -- the community-detection aggregation of the
  Schema Summary.

All three serialize to plain documents for the MongoDB-substitute store.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ClassIndex",
    "LinkIndex",
    "EndpointIndexes",
    "SchemaNode",
    "SchemaEdge",
    "SchemaSummary",
    "Cluster",
    "ClusterEdge",
    "ClusterSchema",
]


def _local_name(iri: str) -> str:
    if "#" in iri:
        tail = iri.rsplit("#", 1)[1]
        if tail:
            return tail
    return iri.rstrip("/").rsplit("/", 1)[-1] or iri


class ClassIndex:
    """Index entry for one instantiated class."""

    __slots__ = ("iri", "label", "instance_count", "datatype_properties")

    def __init__(
        self,
        iri: str,
        instance_count: int,
        label: Optional[str] = None,
        datatype_properties: Sequence[str] = (),
    ):
        self.iri = iri
        self.label = label or _local_name(iri)
        self.instance_count = int(instance_count)
        self.datatype_properties = sorted(set(datatype_properties))

    def to_doc(self) -> Dict[str, Any]:
        return {
            "iri": self.iri,
            "label": self.label,
            "instance_count": self.instance_count,
            "datatype_properties": list(self.datatype_properties),
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "ClassIndex":
        return cls(
            doc["iri"],
            doc["instance_count"],
            label=doc.get("label"),
            datatype_properties=doc.get("datatype_properties", ()),
        )

    def __repr__(self) -> str:
        return f"ClassIndex({self.label!r}, n={self.instance_count})"


class LinkIndex:
    """An object-property link between two classes, with its triple count."""

    __slots__ = ("source", "property", "target", "count")

    def __init__(self, source: str, property: str, target: str, count: int):
        self.source = source
        self.property = property
        self.target = target
        self.count = int(count)

    def to_doc(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "property": self.property,
            "target": self.target,
            "count": self.count,
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "LinkIndex":
        return cls(doc["source"], doc["property"], doc["target"], doc["count"])

    def __repr__(self) -> str:
        return (
            f"LinkIndex({_local_name(self.source)} -{_local_name(self.property)}-> "
            f"{_local_name(self.target)} x{self.count})"
        )


class EndpointIndexes:
    """Everything Index Extraction learns about one endpoint (§2.1).

    "the indexes are the number of instances, the number of classes, the
    list of classes with the respective properties and the number of
    instances belonging to a specific class"
    """

    def __init__(
        self,
        endpoint_url: str,
        instance_count: int,
        classes: Sequence[ClassIndex],
        links: Sequence[LinkIndex],
        extracted_at_ms: float = 0.0,
        strategy: str = "aggregate",
        complete: bool = True,
        inferred: bool = False,
    ):
        self.endpoint_url = endpoint_url
        self.instance_count = int(instance_count)
        # Tuples, not lists: loaded models are shared through the storage
        # layer's read cache, so the sequences must be immutable.
        self.classes = tuple(classes)
        self.links = tuple(links)
        self.extracted_at_ms = float(extracted_at_ms)
        #: which pattern strategy produced the indexes ('aggregate' | 'scan')
        self.strategy = strategy
        #: False when truncation forced an approximate extraction
        self.complete = complete
        #: True when counts include rdfs:subClassOf inference (LODeX-style)
        self.inferred = inferred

    @property
    def class_count(self) -> int:
        return len(self.classes)

    def class_by_iri(self, iri: str) -> ClassIndex:
        for cls in self.classes:
            if cls.iri == iri:
                return cls
        raise KeyError(iri)

    def to_doc(self) -> Dict[str, Any]:
        return {
            "endpoint_url": self.endpoint_url,
            "instance_count": self.instance_count,
            "class_count": self.class_count,
            "classes": [cls.to_doc() for cls in self.classes],
            "links": [link.to_doc() for link in self.links],
            "extracted_at_ms": self.extracted_at_ms,
            "strategy": self.strategy,
            "complete": self.complete,
            "inferred": self.inferred,
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "EndpointIndexes":
        return cls(
            doc["endpoint_url"],
            doc["instance_count"],
            [ClassIndex.from_doc(c) for c in doc["classes"]],
            [LinkIndex.from_doc(l) for l in doc["links"]],
            extracted_at_ms=doc.get("extracted_at_ms", 0.0),
            strategy=doc.get("strategy", "aggregate"),
            complete=doc.get("complete", True),
            inferred=doc.get("inferred", False),
        )

    def __repr__(self) -> str:
        return (
            f"<EndpointIndexes {self.endpoint_url!r}: {self.class_count} classes, "
            f"{self.instance_count} instances, {len(self.links)} links>"
        )


# ---------------------------------------------------------------------------
# Schema Summary
# ---------------------------------------------------------------------------


class SchemaNode:
    """A node of the Schema Summary: one instantiated class."""

    __slots__ = ("iri", "label", "instance_count", "datatype_properties")

    def __init__(
        self,
        iri: str,
        instance_count: int,
        label: Optional[str] = None,
        datatype_properties: Sequence[str] = (),
    ):
        self.iri = iri
        self.label = label or _local_name(iri)
        self.instance_count = int(instance_count)
        self.datatype_properties = sorted(set(datatype_properties))

    def to_doc(self) -> Dict[str, Any]:
        return {
            "iri": self.iri,
            "label": self.label,
            "instance_count": self.instance_count,
            "datatype_properties": list(self.datatype_properties),
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "SchemaNode":
        return cls(
            doc["iri"],
            doc["instance_count"],
            label=doc.get("label"),
            datatype_properties=doc.get("datatype_properties", ()),
        )

    def __repr__(self) -> str:
        return f"SchemaNode({self.label!r}, n={self.instance_count})"


class SchemaEdge:
    """A directed arc of the pseudograph: property from source to target class."""

    __slots__ = ("source", "property", "target", "count")

    def __init__(self, source: str, property: str, target: str, count: int = 1):
        self.source = source
        self.property = property
        self.target = target
        self.count = int(count)

    def to_doc(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "property": self.property,
            "target": self.target,
            "count": self.count,
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "SchemaEdge":
        return cls(doc["source"], doc["property"], doc["target"], doc.get("count", 1))

    def __repr__(self) -> str:
        return (
            f"SchemaEdge({_local_name(self.source)} -{_local_name(self.property)}-> "
            f"{_local_name(self.target)})"
        )


class SchemaSummary:
    """The pseudograph of instantiated classes (Benedetti et al. 2014/15).

    Multiple properties between the same class pair are kept as distinct
    edges (it *is* a pseudograph); self-loops are legal.
    """

    def __init__(
        self,
        endpoint_url: str,
        nodes: Sequence[SchemaNode],
        edges: Sequence[SchemaEdge],
        total_instances: int,
        computed_at_ms: float = 0.0,
    ):
        self.endpoint_url = endpoint_url
        # Tuples, not lists: loaded summaries are shared through the
        # storage layer's model cache, so the sequences must be immutable.
        self.nodes = tuple(nodes)
        self.edges = tuple(edges)
        self.total_instances = int(total_instances)
        self.computed_at_ms = float(computed_at_ms)
        self._by_iri = {node.iri: node for node in self.nodes}
        if len(self._by_iri) != len(self.nodes):
            raise ValueError("duplicate class IRI in schema summary")
        # Degrees are read repeatedly by cluster labelling; precompute while
        # validating (nodes/edges are frozen after construction).
        degrees: Dict[str, int] = {}
        for edge in self.edges:
            if edge.source not in self._by_iri or edge.target not in self._by_iri:
                raise ValueError(f"edge {edge!r} references unknown class")
            degrees[edge.source] = degrees.get(edge.source, 0) + 1
            degrees[edge.target] = degrees.get(edge.target, 0) + 1
        self._degrees = degrees

    @classmethod
    def from_indexes(
        cls, indexes: EndpointIndexes, computed_at_ms: float = 0.0
    ) -> "SchemaSummary":
        nodes = [
            SchemaNode(
                c.iri,
                c.instance_count,
                label=c.label,
                datatype_properties=c.datatype_properties,
            )
            for c in indexes.classes
        ]
        known = {node.iri for node in nodes}
        edges = [
            SchemaEdge(link.source, link.property, link.target, link.count)
            for link in indexes.links
            if link.source in known and link.target in known
        ]
        return cls(
            indexes.endpoint_url,
            nodes,
            edges,
            total_instances=indexes.instance_count,
            computed_at_ms=computed_at_ms,
        )

    # -- graph accessors ---------------------------------------------------------

    def node(self, iri: str) -> SchemaNode:
        return self._by_iri[iri]

    def __contains__(self, iri: str) -> bool:
        return iri in self._by_iri

    def class_iris(self) -> List[str]:
        return [node.iri for node in self.nodes]

    def degree(self, iri: str) -> int:
        """In-degree + out-degree counted over property arcs (§2.1 labels)."""
        return self._degrees.get(iri, 0)

    def neighbours(self, iri: str) -> List[str]:
        """Classes one property hop away (either direction), deduplicated."""
        out: List[str] = []
        seen = {iri}
        for edge in self.edges:
            if edge.source == iri and edge.target not in seen:
                seen.add(edge.target)
                out.append(edge.target)
            elif edge.target == iri and edge.source not in seen:
                seen.add(edge.source)
                out.append(edge.source)
        return out

    def edges_between(self, left: str, right: str) -> List[SchemaEdge]:
        return [
            e
            for e in self.edges
            if (e.source == left and e.target == right)
            or (e.source == right and e.target == left)
        ]

    def instance_coverage(self, iris: Sequence[str]) -> float:
        """Fraction of instances covered by the classes *iris* (Figure 2's
        "percentage of the instances represented by the graph")."""
        if self.total_instances <= 0:
            return 0.0
        covered = sum(
            self._by_iri[iri].instance_count for iri in iris if iri in self._by_iri
        )
        return covered / self.total_instances

    # -- persistence -------------------------------------------------------------

    def to_doc(self) -> Dict[str, Any]:
        return {
            "endpoint_url": self.endpoint_url,
            "nodes": [node.to_doc() for node in self.nodes],
            "edges": [edge.to_doc() for edge in self.edges],
            "total_instances": self.total_instances,
            "computed_at_ms": self.computed_at_ms,
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "SchemaSummary":
        return cls(
            doc["endpoint_url"],
            [SchemaNode.from_doc(n) for n in doc["nodes"]],
            [SchemaEdge.from_doc(e) for e in doc["edges"]],
            total_instances=doc["total_instances"],
            computed_at_ms=doc.get("computed_at_ms", 0.0),
        )

    def __repr__(self) -> str:
        return (
            f"<SchemaSummary {self.endpoint_url!r}: {len(self.nodes)} classes, "
            f"{len(self.edges)} arcs>"
        )


# ---------------------------------------------------------------------------
# Cluster Schema
# ---------------------------------------------------------------------------


class Cluster:
    """One cluster of classes in the Cluster Schema."""

    __slots__ = ("cluster_id", "label", "class_iris", "instance_count")

    def __init__(
        self,
        cluster_id: int,
        label: str,
        class_iris: Sequence[str],
        instance_count: int,
    ):
        self.cluster_id = int(cluster_id)
        self.label = label
        self.class_iris = list(class_iris)
        self.instance_count = int(instance_count)

    @property
    def size(self) -> int:
        return len(self.class_iris)

    def to_doc(self) -> Dict[str, Any]:
        return {
            "cluster_id": self.cluster_id,
            "label": self.label,
            "class_iris": list(self.class_iris),
            "instance_count": self.instance_count,
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "Cluster":
        return cls(
            doc["cluster_id"],
            doc["label"],
            doc["class_iris"],
            doc["instance_count"],
        )

    def __repr__(self) -> str:
        return f"Cluster(#{self.cluster_id} {self.label!r}, {self.size} classes)"


class ClusterEdge:
    """Aggregated connection between two clusters."""

    __slots__ = ("source", "target", "weight")

    def __init__(self, source: int, target: int, weight: int):
        self.source = int(source)
        self.target = int(target)
        self.weight = int(weight)

    def to_doc(self) -> Dict[str, Any]:
        return {"source": self.source, "target": self.target, "weight": self.weight}

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "ClusterEdge":
        return cls(doc["source"], doc["target"], doc["weight"])


class ClusterSchema:
    """The high-level view: clusters of classes + aggregated connections.

    Clusters never overlap ("the possibility that a node belongs to several
    Clusters is avoided") and each cluster's label comes from its
    highest-degree class (§2.1).
    """

    def __init__(
        self,
        endpoint_url: str,
        clusters: Sequence[Cluster],
        edges: Sequence[ClusterEdge],
        algorithm: str = "louvain",
        modularity: float = 0.0,
        computed_at_ms: float = 0.0,
    ):
        self.endpoint_url = endpoint_url
        # Tuples, not lists: loaded models are shared through the storage
        # layer's read cache, so the sequences must be immutable.
        self.clusters = tuple(clusters)
        self.edges = tuple(edges)
        self.algorithm = algorithm
        self.modularity = float(modularity)
        self.computed_at_ms = float(computed_at_ms)

        seen: Dict[str, int] = {}
        for cluster in self.clusters:
            for iri in cluster.class_iris:
                if iri in seen:
                    raise ValueError(
                        f"class {iri!r} is in clusters {seen[iri]} and {cluster.cluster_id}"
                    )
                seen[iri] = cluster.cluster_id
        self._cluster_of = seen

    @property
    def cluster_count(self) -> int:
        return len(self.clusters)

    def cluster(self, cluster_id: int) -> Cluster:
        for cluster in self.clusters:
            if cluster.cluster_id == cluster_id:
                return cluster
        raise KeyError(cluster_id)

    def cluster_of(self, class_iri: str) -> int:
        return self._cluster_of[class_iri]

    def covers(self, class_iris: Sequence[str]) -> bool:
        return all(iri in self._cluster_of for iri in class_iris)

    def to_doc(self) -> Dict[str, Any]:
        return {
            "endpoint_url": self.endpoint_url,
            "clusters": [cluster.to_doc() for cluster in self.clusters],
            "edges": [edge.to_doc() for edge in self.edges],
            "algorithm": self.algorithm,
            "modularity": self.modularity,
            "computed_at_ms": self.computed_at_ms,
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "ClusterSchema":
        return cls(
            doc["endpoint_url"],
            [Cluster.from_doc(c) for c in doc["clusters"]],
            [ClusterEdge.from_doc(e) for e in doc["edges"]],
            algorithm=doc.get("algorithm", "louvain"),
            modularity=doc.get("modularity", 0.0),
            computed_at_ms=doc.get("computed_at_ms", 0.0),
        )

    def __repr__(self) -> str:
        return (
            f"<ClusterSchema {self.endpoint_url!r}: {self.cluster_count} clusters, "
            f"algorithm={self.algorithm}>"
        )
