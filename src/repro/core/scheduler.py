"""The daily update scheduler (§3.1).

The paper's policy, verbatim:

* indexes need refreshing at most weekly ("LD do not change daily"),
* but endpoints flap, so availability must be rechecked often;
* therefore: store the date of the last extraction per endpoint; skip
  endpoints whose last *successful* extraction is <= 7 days old; retry
  *failed* endpoints every day (an endpoint down yesterday "might work
  again after 1 or 2 days").

:class:`UpdateScheduler` implements exactly that policy plus the naive
alternatives the E3 benchmark compares it against.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .cluster_schema import build_cluster_schema
from .diff import diff_summaries
from .index_extraction import ExtractionFailed, IndexExtractor
from .models import SchemaSummary
from .parallel import run_parallel
from .persistence import HboldStorage

__all__ = ["UpdateScheduler", "DailyReport", "POLICIES"]

#: freshness rule from the paper: re-extract after this many days
FRESHNESS_DAYS = 7


class DailyReport:
    """What one scheduler day did."""

    __slots__ = (
        "day",
        "attempted",
        "succeeded",
        "failed",
        "skipped_fresh",
        "reclusters_skipped",
        "elapsed_ms",
    )

    def __init__(self, day: int):
        self.day = day
        self.attempted: List[str] = []
        self.succeeded: List[str] = []
        self.failed: List[str] = []
        self.skipped_fresh = 0
        #: §3.2's rule applied server-side: extractions whose Schema Summary
        #: was identical to the stored one, so the Cluster Schema (and the
        #: community detection run) was reused instead of recomputed
        self.reclusters_skipped = 0
        self.elapsed_ms = 0.0

    def __repr__(self) -> str:
        return (
            f"<DailyReport day={self.day} attempted={len(self.attempted)} "
            f"ok={len(self.succeeded)} failed={len(self.failed)} "
            f"fresh={self.skipped_fresh}>"
        )


def _policy_paper(record: Dict, today: int) -> bool:
    """The §3.1 policy: weekly refresh + daily retry after failure."""
    last_success = record.get("last_success_day")
    last_attempt = record.get("last_attempt_day")
    if last_success is None:
        # never extracted successfully -> try daily (but not twice a day)
        return last_attempt is None or last_attempt < today
    attempt_failed_since_success = (
        last_attempt is not None and last_attempt > last_success
    )
    if attempt_failed_since_success:
        return last_attempt < today  # daily retry after a failure
    return today - last_success >= FRESHNESS_DAYS


def _policy_daily(record: Dict, today: int) -> bool:
    """Naive baseline: extract everything every day."""
    last_attempt = record.get("last_attempt_day")
    return last_attempt is None or last_attempt < today


def _policy_weekly_rigid(record: Dict, today: int) -> bool:
    """Strict weekly schedule with no failure retry (the ablation's loser:
    an endpoint down on its weekly slot stays stale for a whole week)."""
    last_attempt = record.get("last_attempt_day")
    if last_attempt is None:
        return True
    return today - last_attempt >= FRESHNESS_DAYS


POLICIES: Dict[str, Callable[[Dict, int], bool]] = {
    "paper": _policy_paper,
    "daily": _policy_daily,
    "weekly-rigid": _policy_weekly_rigid,
}


class UpdateScheduler:
    """Runs the §3.1 daily update over the registry."""

    def __init__(
        self,
        storage: HboldStorage,
        extractor: IndexExtractor,
        policy: str = "paper",
        cluster_algorithm: str = "louvain",
    ):
        if policy not in POLICIES:
            raise KeyError(f"unknown policy {policy!r}; known: {sorted(POLICIES)}")
        self.storage = storage
        self.extractor = extractor
        self.policy_name = policy
        self.policy = POLICIES[policy]
        self.cluster_algorithm = cluster_algorithm
        self.reports: List[DailyReport] = []

    def run_day(
        self, urls: Optional[List[str]] = None, parallelism: int = 1
    ) -> DailyReport:
        """Execute one scheduler day over *urls* (default: whole registry).

        The policy pass is sequential (it only reads registry records);
        the due endpoints then fan out across the simulated worker pool,
        so the day's elapsed time is the ``parallelism``-worker makespan
        of the extraction batch and a flapping endpoint's retries no
        longer delay everyone behind it in the registry.
        """
        clock = self.extractor.client.network.clock
        today = clock.today
        report = DailyReport(today)
        start_ms = clock.now_ms

        records = self.storage.list_endpoints()
        if urls is not None:
            wanted = set(urls)
            records = [record for record in records if record["url"] in wanted]

        due: List[str] = []
        for record in records:
            if not self.policy(record, today):
                report.skipped_fresh += 1
                continue
            due.append(record["url"])

        tasks = [
            (url, lambda url=url: self._update_endpoint(url, today)) for url in due
        ]
        outcomes, _ = run_parallel(clock, tasks, parallelism)
        for outcome in outcomes:
            report.attempted.append(outcome.key)
            status = outcome.value if outcome.error is None else "failed"
            if status == "ok":
                report.succeeded.append(outcome.key)
            elif status == "ok-recluster-skipped":
                report.succeeded.append(outcome.key)
                report.reclusters_skipped += 1
            else:
                report.failed.append(outcome.key)

        report.elapsed_ms = clock.now_ms - start_ms
        self.reports.append(report)
        return report

    def _update_endpoint(self, url: str, today: int) -> str:
        """One pool task: the full extract-summarize-cluster-store pipeline
        for *url*.  Returns a status string; never raises for a failed
        endpoint (failures are recorded and isolated to this task)."""
        clock = self.extractor.client.network.clock
        try:
            indexes = self.extractor.extract(url)
            summary = SchemaSummary.from_indexes(indexes, computed_at_ms=clock.now_ms)
            self.storage.save_indexes(indexes)

            # "if the Schema Summary does not change then the Cluster Schema
            # will not change neither" (§3.2) -- reuse the stored clusters
            # when the summary is structurally identical.
            status = "ok"
            previous = self.storage.load_summary(url)
            if (
                previous is not None
                and diff_summaries(previous, summary).is_unchanged()
                and self.storage.load_cluster_schema(url) is not None
            ):
                status = "ok-recluster-skipped"
            else:
                cluster_schema = build_cluster_schema(
                    summary,
                    algorithm=self.cluster_algorithm,
                    computed_at_ms=clock.now_ms,
                )
                self.storage.save_cluster_schema(cluster_schema)
            self.storage.save_summary(summary)
        except ExtractionFailed as exc:
            self.storage.record_extraction_failure(url, today, exc.reason)
            return "failed"
        except Exception as exc:
            # A bug anywhere in this endpoint's pipeline (summarize,
            # cluster, store -- not just extraction) must not kill the
            # batch, but it must leave a diagnostic trail on the record.
            self.storage.record_extraction_failure(
                url, today, f"{type(exc).__name__}: {exc}"
            )
            return "failed"
        self.storage.record_extraction_success(url, today)
        return status

    def run_days(
        self,
        days: int,
        urls: Optional[List[str]] = None,
        parallelism: int = 1,
    ) -> List[DailyReport]:
        """Run the scheduler for *days* consecutive simulated days."""
        clock = self.extractor.client.network.clock
        out: List[DailyReport] = []
        for _ in range(days):
            out.append(self.run_day(urls, parallelism=parallelism))
            clock.sleep_until_day(clock.today + 1)
        return out

    # -- staleness metric for E3 ---------------------------------------------------

    def staleness_profile(self, horizon_days: int) -> Dict[str, float]:
        """Summary statistics over the run: query cost vs freshness."""
        total_attempts = sum(len(report.attempted) for report in self.reports)
        total_success = sum(len(report.succeeded) for report in self.reports)
        total_failures = sum(len(report.failed) for report in self.reports)
        records = self.storage.list_endpoints()
        staleness: List[int] = []
        for record in records:
            last_success = record.get("last_success_day")
            if last_success is None:
                staleness.append(horizon_days)
            else:
                staleness.append(max(0, horizon_days - 1 - last_success))
        mean_staleness = sum(staleness) / len(staleness) if staleness else 0.0
        return {
            "policy": self.policy_name,
            "attempts": total_attempts,
            "successes": total_success,
            "failures": total_failures,
            "mean_staleness_days": mean_staleness,
        }
