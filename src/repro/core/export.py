"""Exports: schema artifacts out of H-BOLD in standard formats.

A tool users adopt needs its artifacts to leave the system: the Schema
Summary as Turtle (so other tools can consume the inferred schema), the
dataset description as VoID, cluster assignments as CSV/JSON, and query
results in the SPARQL result formats (already on ``SelectResult``).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict

from ..rdf.graph import Graph
from ..rdf.namespaces import RDF, RDFS, OWL
from ..rdf.terms import IRI, Literal
from ..rdf.turtle import serialize_turtle
from .models import ClusterSchema, SchemaSummary
from .statistics import void_description

__all__ = [
    "summary_to_graph",
    "summary_to_turtle",
    "summary_to_void_turtle",
    "clusters_to_csv",
    "clusters_to_json",
]

#: ad-hoc vocabulary for schema-summary exports (mirrors LODeX's export)
_HB = "http://hbold.example.org/schema#"


def summary_to_graph(summary: SchemaSummary) -> Graph:
    """Encode a Schema Summary as RDF.

    Classes become ``owl:Class`` with ``rdfs:label`` and an instance-count
    annotation; object links become property resources with ``rdfs:domain``
    / ``rdfs:range`` and a usage count; datatype properties hang off their
    class via ``hb:hasAttribute``.
    """
    graph = Graph(identifier=f"summary:{summary.endpoint_url}")
    for node in summary.nodes:
        class_iri = IRI(node.iri)
        graph.add_triple(class_iri, RDF.type, OWL["Class"])
        graph.add_triple(class_iri, RDFS.label, Literal(node.label))
        graph.add_triple(class_iri, IRI(_HB + "instanceCount"), Literal(node.instance_count))
        for prop in node.datatype_properties:
            graph.add_triple(class_iri, IRI(_HB + "hasAttribute"), IRI(prop))
    for index, edge in enumerate(summary.edges):
        prop_iri = IRI(edge.property)
        graph.add_triple(prop_iri, RDF.type, OWL.ObjectProperty)
        graph.add_triple(prop_iri, RDFS.domain, IRI(edge.source))
        graph.add_triple(prop_iri, RDFS.range, IRI(edge.target))
        graph.add_triple(prop_iri, IRI(_HB + "linkCount"), Literal(edge.count))
    return graph


def summary_to_turtle(summary: SchemaSummary) -> str:
    """The Schema Summary as Turtle text."""
    return serialize_turtle(summary_to_graph(summary), prefixes={"hb": _HB})


def summary_to_void_turtle(summary: SchemaSummary) -> str:
    """The VoID dataset description as Turtle text."""
    return serialize_turtle(void_description(summary))


def clusters_to_csv(schema: ClusterSchema) -> str:
    """Cluster assignments as CSV: class_iri, cluster_id, cluster_label."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["class_iri", "cluster_id", "cluster_label"])
    for cluster in schema.clusters:
        for iri in cluster.class_iris:
            writer.writerow([iri, cluster.cluster_id, cluster.label])
    return buffer.getvalue()


def clusters_to_json(schema: ClusterSchema) -> str:
    """The Cluster Schema as the nested-JSON shape D3 consumes."""
    document: Dict[str, Any] = {
        "name": schema.endpoint_url,
        "algorithm": schema.algorithm,
        "modularity": schema.modularity,
        "children": [
            {
                "name": cluster.label,
                "cluster_id": cluster.cluster_id,
                "value": cluster.instance_count,
                "children": [{"name": iri} for iri in cluster.class_iris],
            }
            for cluster in schema.clusters
        ],
        "links": [
            {"source": edge.source, "target": edge.target, "weight": edge.weight}
            for edge in schema.edges
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
