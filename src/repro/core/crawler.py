"""Open-data-portal crawling (§3.3).

Runs the paper's Listing 1 DCAT query against each portal endpoint to
discover SPARQL endpoint URLs, then merges them into the registry.  The
query below is character-for-character the one printed in the paper
(whitespace normalized).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..endpoint.errors import EndpointError
from ..endpoint.network import SparqlClient

__all__ = ["PortalCrawler", "DiscoveredEndpoint", "LISTING_1_QUERY"]

#: Listing 1 of the paper: "Query sent to the open data portals to extract
#: a list of SPARQL endpoints".
LISTING_1_QUERY = """\
PREFIX dcat: <http://www.w3.org/ns/dcat#>
PREFIX dc: <http://purl.org/dc/terms/>
SELECT ?dataset ?title ?url
WHERE {
  ?dataset a dcat:Dataset .
  ?dataset dc:title ?title .
  ?dataset dcat:distribution ?distribution .
  ?distribution dcat:accessURL ?url .
  filter ( regex ( ?url, 'sparql' ) ) .
}
"""


class DiscoveredEndpoint:
    """One row of the Listing 1 result set."""

    __slots__ = ("dataset", "title", "url", "portal")

    def __init__(self, dataset: str, title: str, url: str, portal: str):
        self.dataset = dataset
        self.title = title
        self.url = url
        self.portal = portal

    def __repr__(self) -> str:
        return f"DiscoveredEndpoint({self.url!r} from {self.portal!r})"


class PortalCrawler:
    """Discovers SPARQL endpoints from DCAT portals via Listing 1."""

    def __init__(self, client: SparqlClient):
        self.client = client

    def crawl_portal(self, portal_url: str, portal_key: str = "") -> List[DiscoveredEndpoint]:
        """Run Listing 1 against one portal; returns discovered endpoints.

        Portal outages surface as an empty result (the crawler moves on and
        retries another day, per §3.1's retry philosophy).
        """
        try:
            result = self.client.select(portal_url, LISTING_1_QUERY)
        except EndpointError:
            return []
        discovered: List[DiscoveredEndpoint] = []
        seen = set()
        for row in result:
            dataset = row.get("dataset")
            title = row.get("title")
            url = row.get("url")
            if dataset is None or url is None:
                continue
            url_text = str(url)
            if url_text in seen:
                continue
            seen.add(url_text)
            discovered.append(
                DiscoveredEndpoint(
                    str(dataset),
                    str(title) if title is not None else "",
                    url_text,
                    portal_key or portal_url,
                )
            )
        return discovered

    def crawl_all(
        self, portals: Dict[str, str], parallelism: int = 1
    ) -> Dict[str, List[DiscoveredEndpoint]]:
        """Crawl every portal (key -> portal endpoint URL).

        Portals are independent, so the Listing 1 queries fan out across
        the simulated worker pool; discoveries merge in sorted-key order
        regardless of ``parallelism``.  Modelled outages already surface
        as empty lists inside :meth:`crawl_portal`; anything else the
        pool captured is a genuine bug and is re-raised, not silently
        turned into "0 endpoints discovered".
        """
        from .parallel import run_parallel

        items = sorted(portals.items())
        tasks = [
            (key, lambda key=key, url=url: self.crawl_portal(url, portal_key=key))
            for key, url in items
        ]
        outcomes, _ = run_parallel(self.client.network.clock, tasks, parallelism)
        for outcome in outcomes:
            if outcome.error is not None:
                raise outcome.error
        return {outcome.key: outcome.value for outcome in outcomes}

    @staticmethod
    def merge_into_registry(
        discovered: Dict[str, List[DiscoveredEndpoint]],
        known_urls: List[str],
    ) -> Tuple[List[DiscoveredEndpoint], Dict[str, int]]:
        """Split discoveries into new endpoints + per-portal found counts.

        Returns ``(new endpoints in discovery order, {portal: found})`` --
        the numbers §3.3 reports (65/9/15 found, +70 net new).
        """
        known = set(known_urls)
        new: List[DiscoveredEndpoint] = []
        found: Dict[str, int] = {}
        for portal_key in sorted(discovered):
            entries = discovered[portal_key]
            found[portal_key] = len(entries)
            for entry in entries:
                if entry.url not in known:
                    known.add(entry.url)
                    new.append(entry)
        return new, found
