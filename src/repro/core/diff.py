"""Schema evolution: diffing two extractions of the same endpoint.

§3.1's whole machinery exists because "the structure and also the content
of a LD could change very often" and H-BOLD wants to "display the most
updated version".  This module makes the change visible: given two Schema
Summaries of the same endpoint (yesterday's stored one and today's fresh
one), compute what was added, removed and resized -- the digest an
operator reads before deciding whether a re-cluster is worth it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from .models import SchemaSummary

__all__ = ["SummaryDiff", "diff_summaries"]


class SummaryDiff:
    """The structural delta between two Schema Summaries."""

    __slots__ = (
        "endpoint_url",
        "added_classes",
        "removed_classes",
        "count_changes",
        "added_edges",
        "removed_edges",
        "instance_delta",
    )

    def __init__(
        self,
        endpoint_url: str,
        added_classes: List[str],
        removed_classes: List[str],
        count_changes: List[Tuple[str, int, int]],
        added_edges: List[Tuple[str, str, str]],
        removed_edges: List[Tuple[str, str, str]],
        instance_delta: int,
    ):
        self.endpoint_url = endpoint_url
        #: class IRIs only in the new summary
        self.added_classes = added_classes
        #: class IRIs only in the old summary
        self.removed_classes = removed_classes
        #: (iri, old_count, new_count) for classes whose size changed
        self.count_changes = count_changes
        #: (source, property, target) arcs only in the new summary
        self.added_edges = added_edges
        self.removed_edges = removed_edges
        #: new total instances minus old total
        self.instance_delta = instance_delta

    def is_unchanged(self) -> bool:
        """True when nothing structural or quantitative moved.

        This is the §3.2 fast path: an unchanged Schema Summary means the
        stored Cluster Schema is still valid and need not be recomputed.
        """
        return not (
            self.added_classes
            or self.removed_classes
            or self.count_changes
            or self.added_edges
            or self.removed_edges
        )

    def structure_changed(self) -> bool:
        """True when the *graph* changed (classes/arcs), not just counts.

        Count-only drift never changes the community structure's input
        graph, so a re-cluster is only warranted when this returns True.
        """
        return bool(
            self.added_classes
            or self.removed_classes
            or self.added_edges
            or self.removed_edges
        )

    def summary_line(self) -> str:
        """One-line operator digest."""
        if self.is_unchanged():
            return f"{self.endpoint_url}: unchanged"
        return (
            f"{self.endpoint_url}: "
            f"+{len(self.added_classes)}/-{len(self.removed_classes)} classes, "
            f"+{len(self.added_edges)}/-{len(self.removed_edges)} arcs, "
            f"{len(self.count_changes)} resized, "
            f"instances {self.instance_delta:+d}"
        )

    def to_doc(self) -> Dict[str, Any]:
        return {
            "endpoint_url": self.endpoint_url,
            "added_classes": list(self.added_classes),
            "removed_classes": list(self.removed_classes),
            "count_changes": [list(item) for item in self.count_changes],
            "added_edges": [list(item) for item in self.added_edges],
            "removed_edges": [list(item) for item in self.removed_edges],
            "instance_delta": self.instance_delta,
        }

    def __repr__(self) -> str:
        return f"<SummaryDiff {self.summary_line()}>"


def diff_summaries(old: SchemaSummary, new: SchemaSummary) -> SummaryDiff:
    """Compute the delta from *old* to *new* (same endpoint required)."""
    if old.endpoint_url != new.endpoint_url:
        raise ValueError(
            f"cannot diff different endpoints: {old.endpoint_url!r} vs "
            f"{new.endpoint_url!r}"
        )
    old_classes = {node.iri: node for node in old.nodes}
    new_classes = {node.iri: node for node in new.nodes}

    added_classes = sorted(set(new_classes) - set(old_classes))
    removed_classes = sorted(set(old_classes) - set(new_classes))
    count_changes = sorted(
        (iri, old_classes[iri].instance_count, new_classes[iri].instance_count)
        for iri in set(old_classes) & set(new_classes)
        if old_classes[iri].instance_count != new_classes[iri].instance_count
    )

    old_edges = {(e.source, e.property, e.target) for e in old.edges}
    new_edges = {(e.source, e.property, e.target) for e in new.edges}

    return SummaryDiff(
        old.endpoint_url,
        added_classes,
        removed_classes,
        count_changes,
        sorted(new_edges - old_edges),
        sorted(old_edges - new_edges),
        new.total_instances - old.total_instances,
    )
