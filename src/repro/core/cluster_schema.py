"""Cluster Schema construction: community detection over the Schema Summary.

"On the Schema Summary, a set of community detection techniques has been
used to create a high-level visualization for Big LD.  The classes ... are
grouped into Clusters ... the possibility that a node belongs to several
Clusters is avoided.  The labels in the Cluster Schema are assigned based
on the degree (the sum of in-degree and out-degree) of the classes" (§2.1).

The algorithm is pluggable (the E5 ablation compares them); Louvain is the
default, matching Po & Malvezzi 2018's selection.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..community.graphs import UndirectedGraph
from ..community.greedy_modularity import greedy_modularity
from ..community.label_propagation import label_propagation
from ..community.louvain import louvain
from ..community.partition import Partition, modularity
from .models import Cluster, ClusterEdge, ClusterSchema, SchemaSummary

__all__ = ["build_cluster_schema", "summary_to_undirected", "ALGORITHMS"]

ALGORITHMS: Dict[str, Callable[[UndirectedGraph], Partition]] = {
    "louvain": lambda graph: louvain(graph, seed=0),
    "label-propagation": lambda graph: label_propagation(graph, seed=0),
    "greedy-modularity": greedy_modularity,
}


def summary_to_undirected(summary: SchemaSummary) -> UndirectedGraph:
    """Project the directed pseudograph onto a weighted undirected graph.

    Parallel property arcs between the same class pair accumulate weight;
    direction is dropped; every class appears even if isolated.  The
    projection is memoized on the summary (summaries are frozen after
    construction, and the storage layer hands out stable objects), so
    repeated displays share one graph and its compact snapshot.
    """
    cached = getattr(summary, "_undirected_projection", None)
    if cached is not None:
        return cached
    graph = UndirectedGraph()
    for node in summary.nodes:
        graph.add_node(node.iri)
    for edge in summary.edges:
        graph.add_edge(edge.source, edge.target, 1.0)
    summary._undirected_projection = graph
    return graph


def build_cluster_schema(
    summary: SchemaSummary,
    algorithm: str = "louvain",
    computed_at_ms: float = 0.0,
    detector: Optional[Callable[[UndirectedGraph], Partition]] = None,
) -> ClusterSchema:
    """Cluster *summary* into a :class:`ClusterSchema`.

    ``algorithm`` picks one of :data:`ALGORITHMS`; a custom ``detector``
    callable overrides it (used by the ablation bench).
    """
    if detector is None:
        if algorithm not in ALGORITHMS:
            raise KeyError(f"unknown algorithm {algorithm!r}; known: {sorted(ALGORITHMS)}")
        detector = ALGORITHMS[algorithm]

    graph = summary_to_undirected(summary)
    if len(graph) == 0:
        return ClusterSchema(
            summary.endpoint_url, [], [], algorithm=algorithm, computed_at_ms=computed_at_ms
        )

    partition = detector(graph)
    quality = modularity(graph, partition)

    clusters: List[Cluster] = []
    for community_id, members in sorted(partition.communities().items()):
        member_list = sorted(members)
        label = _cluster_label(summary, member_list)
        instance_count = sum(summary.node(iri).instance_count for iri in member_list)
        clusters.append(
            Cluster(
                cluster_id=community_id,
                label=label,
                class_iris=member_list,
                instance_count=instance_count,
            )
        )

    edges = _cluster_edges(summary, partition)
    return ClusterSchema(
        summary.endpoint_url,
        clusters,
        edges,
        algorithm=algorithm,
        modularity=quality,
        computed_at_ms=computed_at_ms,
    )


def _cluster_label(summary: SchemaSummary, member_iris: List[str]) -> str:
    """Label = the member class with the highest degree (ties: more
    instances, then lexicographic for determinism)."""
    best_iri = max(
        member_iris,
        key=lambda iri: (
            summary.degree(iri),
            summary.node(iri).instance_count,
            # negative-free deterministic tiebreak: reversed lexicographic
            # is avoided; sort below handles it
        ),
    )
    # Resolve ties deterministically: among max-degree members pick the
    # lexicographically smallest label.
    best_degree = summary.degree(best_iri)
    best_instances = summary.node(best_iri).instance_count
    candidates = [
        iri
        for iri in member_iris
        if summary.degree(iri) == best_degree
        and summary.node(iri).instance_count == best_instances
    ]
    chosen = sorted(candidates)[0]
    return summary.node(chosen).label


def _cluster_edges(summary: SchemaSummary, partition: Partition) -> List[ClusterEdge]:
    accumulator: Dict[Tuple[int, int], int] = {}
    for edge in summary.edges:
        cs = partition[edge.source]
        ct = partition[edge.target]
        if cs == ct:
            continue
        key = (min(cs, ct), max(cs, ct))
        accumulator[key] = accumulator.get(key, 0) + 1
    return [
        ClusterEdge(source, target, weight)
        for (source, target), weight in sorted(accumulator.items())
    ]
