"""Multilevel abstraction hierarchies over the Schema Summary.

The paper's abstract promises "exploratory search and multilevel analysis
of Big LD by offering different levels of abstraction"; the released tool
has two levels (Cluster Schema over Schema Summary).  This module
implements the natural generalization the paper's future work points at:
recursively cluster the aggregated cluster graph until it stops
contracting, yielding an abstraction pyramid

    level 0: classes (the Schema Summary)
    level 1: clusters (the Cluster Schema)
    level 2: clusters of clusters
    ...

Each level is a valid non-overlapping partition of the one below, so any
intermediate level can be displayed with the §3.5 layouts.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..community.graphs import UndirectedGraph
from ..community.louvain import louvain
from ..community.partition import Partition
from ..viz.hierarchy import HierarchyNode
from .cluster_schema import ALGORITHMS, summary_to_undirected
from .models import SchemaSummary

__all__ = ["AbstractionLevel", "MultilevelHierarchy", "build_multilevel_hierarchy"]


class AbstractionLevel:
    """One level: groups of lower-level unit ids, with labels and weights."""

    __slots__ = ("level", "groups", "labels", "instance_counts")

    def __init__(
        self,
        level: int,
        groups: Dict[int, List[str]],
        labels: Dict[int, str],
        instance_counts: Dict[int, int],
    ):
        self.level = level
        #: group id -> class IRIs (always expressed in level-0 units)
        self.groups = groups
        self.labels = labels
        self.instance_counts = instance_counts

    @property
    def group_count(self) -> int:
        return len(self.groups)

    def group_of(self, class_iri: str) -> int:
        for group_id, members in self.groups.items():
            if class_iri in members:
                return group_id
        raise KeyError(class_iri)

    def __repr__(self) -> str:
        return f"<AbstractionLevel {self.level}: {self.group_count} groups>"


class MultilevelHierarchy:
    """The full abstraction pyramid for one dataset."""

    def __init__(self, summary: SchemaSummary, levels: List[AbstractionLevel]):
        self.summary = summary
        #: levels[0] is the class level itself; deeper abstraction follows
        self.levels = levels

    @property
    def depth(self) -> int:
        return len(self.levels)

    def level(self, index: int) -> AbstractionLevel:
        return self.levels[index]

    def coarsest(self) -> AbstractionLevel:
        return self.levels[-1]

    def to_hierarchy_node(self) -> HierarchyNode:
        """Render the pyramid as a tree for treemap/sunburst/circle-pack.

        The tree has one internal ring per abstraction level above the
        classes, so a three-level pyramid produces a three-ring sunburst.
        """
        root = HierarchyNode(self.summary.endpoint_url)
        if not self.levels:
            return root

        # Build top-down from the coarsest level.  ``level_index`` points
        # at the level whose groups the *children* of ``parent`` come from;
        # level_index 0 means the children are the classes themselves.
        def expand(parent: HierarchyNode, level_index: int, members: List[str]) -> None:
            if level_index <= 0:
                for iri in sorted(members):
                    node = self.summary.node(iri)
                    parent.add_child(
                        HierarchyNode(
                            node.label,
                            value=float(node.instance_count),
                            data={"iri": iri},
                        )
                    )
                return
            lower = self.levels[level_index]
            member_set = set(members)
            for group_id, group_members in sorted(lower.groups.items()):
                contained = [iri for iri in group_members if iri in member_set]
                if not contained:
                    continue
                child = parent.add_child(
                    HierarchyNode(
                        f"L{lower.level}:{lower.labels[group_id]}",
                        data={"level": lower.level, "group": group_id},
                    )
                )
                expand(child, level_index - 1, contained)

        all_classes = [node.iri for node in self.summary.nodes]
        expand(root, len(self.levels) - 1, all_classes)
        return root

    def __repr__(self) -> str:
        shape = " -> ".join(str(level.group_count) for level in self.levels)
        return f"<MultilevelHierarchy {self.summary.endpoint_url!r}: {shape}>"


def _aggregate_graph(
    graph: UndirectedGraph, partition: Partition
) -> UndirectedGraph:
    """Collapse communities into super-nodes, summing edge weights."""
    aggregated = UndirectedGraph()
    for node in graph.nodes():
        aggregated.add_node(partition[node])
    accumulator: Dict[tuple, float] = {}
    for u, v, weight in graph.edges():
        cu, cv = partition[u], partition[v]
        key = (min(cu, cv), max(cu, cv))
        accumulator[key] = accumulator.get(key, 0.0) + weight
    for (cu, cv), weight in accumulator.items():
        aggregated.add_edge(cu, cv, weight)
    return aggregated


def build_multilevel_hierarchy(
    summary: SchemaSummary,
    algorithm: str = "louvain",
    max_levels: int = 5,
    min_groups: int = 2,
    detector: Optional[Callable[[UndirectedGraph], Partition]] = None,
) -> MultilevelHierarchy:
    """Build the abstraction pyramid by repeated cluster-and-aggregate.

    Stops when a level no longer contracts (same group count as below) or
    would drop under *min_groups* groups, or at *max_levels*.
    """
    if detector is None:
        if algorithm not in ALGORITHMS:
            raise KeyError(f"unknown algorithm {algorithm!r}; known: {sorted(ALGORITHMS)}")
        detector = ALGORITHMS[algorithm]

    class_graph = summary_to_undirected(summary)
    levels: List[AbstractionLevel] = []

    # level 0: every class is its own unit
    level0_groups = {
        index: [node.iri] for index, node in enumerate(summary.nodes)
    }
    levels.append(
        AbstractionLevel(
            0,
            level0_groups,
            {index: summary.node(members[0]).label for index, members in level0_groups.items()},
            {
                index: summary.node(members[0]).instance_count
                for index, members in level0_groups.items()
            },
        )
    )
    if len(class_graph) == 0:
        return MultilevelHierarchy(summary, levels)

    current_graph = class_graph
    # membership of each current-graph node, expressed in class IRIs
    membership: Dict = {iri: [iri] for iri in class_graph.nodes()}

    for level_number in range(1, max_levels + 1):
        partition = detector(current_graph)
        group_count = partition.community_count()
        if group_count >= len(current_graph) or group_count < min_groups:
            break

        groups: Dict[int, List[str]] = {}
        for node in current_graph.nodes():
            groups.setdefault(partition[node], []).extend(membership[node])

        labels: Dict[int, str] = {}
        instance_counts: Dict[int, int] = {}
        for group_id, members in groups.items():
            best = max(
                members,
                key=lambda iri: (summary.degree(iri), summary.node(iri).instance_count),
            )
            labels[group_id] = summary.node(best).label
            instance_counts[group_id] = sum(
                summary.node(iri).instance_count for iri in members
            )
        levels.append(AbstractionLevel(level_number, groups, labels, instance_counts))

        current_graph = _aggregate_graph(current_graph, partition)
        membership = {
            group_id: list(members) for group_id, members in groups.items()
        }
        if len(current_graph) <= min_groups:
            break

    return MultilevelHierarchy(summary, levels)
