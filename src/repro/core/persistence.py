"""Server-side storage for H-BOLD artifacts (the §3.2 re-engineering).

The 2018 demo computed the Cluster Schema on-the-fly in the browser; the
re-engineered server computes it once after extraction and stores it in
MongoDB so "both the Schema Summary and Cluster Schema can be visualized
by directly querying the DB".  :class:`HboldStorage` is that MongoDB
surface over our embedded document store.

Collections:

* ``endpoints``   -- registry records (url, title, status, extraction dates)
* ``indexes``     -- raw :class:`EndpointIndexes` documents
* ``summaries``   -- :class:`SchemaSummary` documents
* ``clusters``    -- :class:`ClusterSchema` documents
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..docstore.database import Database, DocumentStore
from .models import ClusterSchema, EndpointIndexes, SchemaSummary

__all__ = ["HboldStorage"]


class HboldStorage:
    """Typed persistence facade over the document store."""

    def __init__(self, store: Optional[DocumentStore] = None, db_name: str = "hbold"):
        self.store = store or DocumentStore()
        self.db: Database = self.store.database(db_name)
        self.endpoints = self.db.collection("endpoints")
        self.indexes = self.db.collection("indexes")
        self.summaries = self.db.collection("summaries")
        self.clusters = self.db.collection("clusters")
        for collection in (self.endpoints, self.indexes, self.summaries, self.clusters):
            collection.create_index("endpoint_url", unique=collection is not self.endpoints)
        self.endpoints.create_index("url", unique=True)

    # -- registry records --------------------------------------------------------

    def upsert_endpoint(self, url: str, **fields: Any) -> Dict[str, Any]:
        """Create or update the registry record for *url*; returns it."""
        existing = self.endpoints.find_one({"url": url})
        if existing is None:
            record: Dict[str, Any] = {
                "url": url,
                "title": fields.pop("title", url),
                "status": fields.pop("status", "listed"),
                "source": fields.pop("source", "manual"),
                "last_success_day": None,
                "last_attempt_day": None,
                "last_error": None,
            }
            record.update(fields)
            self.endpoints.insert_one(record)
            return record
        updates = {f"{key}": value for key, value in fields.items()}
        if updates:
            self.endpoints.update_one({"url": url}, {"$set": updates})
        return self.endpoints.find_one({"url": url})

    def endpoint_record(self, url: str) -> Optional[Dict[str, Any]]:
        return self.endpoints.find_one({"url": url})

    def list_endpoints(self, status: Optional[str] = None) -> List[Dict[str, Any]]:
        query: Dict[str, Any] = {}
        if status is not None:
            query["status"] = status
        return self.endpoints.find(query, sort=[("url", 1)])

    def endpoint_count(self, status: Optional[str] = None) -> int:
        if status is None:
            return self.endpoints.count_documents()
        return self.endpoints.count_documents({"status": status})

    # -- artifacts ----------------------------------------------------------------

    def save_indexes(self, indexes: EndpointIndexes) -> None:
        self.indexes.replace_one(
            {"endpoint_url": indexes.endpoint_url}, indexes.to_doc(), upsert=True
        )

    def load_indexes(self, url: str) -> Optional[EndpointIndexes]:
        doc = self.indexes.find_one({"endpoint_url": url})
        return EndpointIndexes.from_doc(doc) if doc else None

    def save_summary(self, summary: SchemaSummary) -> None:
        self.summaries.replace_one(
            {"endpoint_url": summary.endpoint_url}, summary.to_doc(), upsert=True
        )

    def load_summary(self, url: str) -> Optional[SchemaSummary]:
        doc = self.summaries.find_one({"endpoint_url": url})
        return SchemaSummary.from_doc(doc) if doc else None

    def save_cluster_schema(self, schema: ClusterSchema) -> None:
        self.clusters.replace_one(
            {"endpoint_url": schema.endpoint_url}, schema.to_doc(), upsert=True
        )

    def load_cluster_schema(self, url: str) -> Optional[ClusterSchema]:
        doc = self.clusters.find_one({"endpoint_url": url})
        return ClusterSchema.from_doc(doc) if doc else None

    # -- bookkeeping ---------------------------------------------------------------

    def record_extraction_success(self, url: str, day: int) -> None:
        self.upsert_endpoint(
            url,
            status="indexed",
            last_success_day=day,
            last_attempt_day=day,
            last_error=None,
        )

    def record_extraction_failure(self, url: str, day: int, error: str) -> None:
        record = self.endpoint_record(url) or self.upsert_endpoint(url)
        status = "broken" if record.get("last_success_day") is None else "stale"
        self.upsert_endpoint(
            url, status=status, last_attempt_day=day, last_error=error
        )

    def indexed_urls(self) -> List[str]:
        return [record["url"] for record in self.list_endpoints(status="indexed")]

    def flush(self) -> None:
        self.store.flush()
