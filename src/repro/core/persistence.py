"""Server-side storage for H-BOLD artifacts (the §3.2 re-engineering).

The 2018 demo computed the Cluster Schema on-the-fly in the browser; the
re-engineered server computes it once after extraction and stores it in
MongoDB so "both the Schema Summary and Cluster Schema can be visualized
by directly querying the DB".  :class:`HboldStorage` is that MongoDB
surface over our embedded document store.

Collections:

* ``endpoints``   -- registry records (url, title, status, extraction dates)
* ``indexes``     -- raw :class:`EndpointIndexes` documents
* ``summaries``   -- :class:`SchemaSummary` documents
* ``clusters``    -- :class:`ClusterSchema` documents
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..docstore.database import Database, DocumentStore
from .models import ClusterSchema, EndpointIndexes, SchemaSummary

__all__ = ["HboldStorage"]


class HboldStorage:
    """Typed persistence facade over the document store."""

    def __init__(self, store: Optional[DocumentStore] = None, db_name: str = "hbold"):
        self.store = store or DocumentStore()
        self.db: Database = self.store.database(db_name)
        self.endpoints = self.db.collection("endpoints")
        self.indexes = self.db.collection("indexes")
        self.summaries = self.db.collection("summaries")
        self.clusters = self.db.collection("clusters")
        for collection in (self.endpoints, self.indexes, self.summaries, self.clusters):
            collection.create_index("endpoint_url", unique=collection is not self.endpoints)
        self.endpoints.create_index("url", unique=True)
        # Read-through model caches keyed by url.  Any mutation of the
        # backing collection (including out-of-band writes straight to the
        # docstore) fires its ``on_change`` hook and drops the whole cache
        # for that collection; the typed save_* paths repopulate their key
        # write-through.  The decoded models are frozen by convention, so
        # handing out the same object is safe and skips the document
        # deep-copy + decode on the presentation hot path.
        self._model_cache: Dict[str, Dict[str, Any]] = {
            "indexes": {},
            "summaries": {},
            "clusters": {},
        }
        #: set while one of this facade's typed save_* methods writes; this
        #: facade then invalidates exactly its own key (write-through) while
        #: other subscribers on the same collection still get notified.
        self._own_write = False
        self._subscribe(self.indexes, self._model_cache["indexes"])
        self._subscribe(self.summaries, self._model_cache["summaries"])
        self._subscribe(self.clusters, self._model_cache["clusters"])

    def _subscribe(self, collection, cache: Dict[str, Any]) -> None:
        """Chain a cache-clearing hook onto the collection's change hook.

        Chaining (instead of assigning) keeps other facades over the same
        DocumentStore working: every subscriber still hears every change.
        """
        previous = collection.on_change

        def hook():
            if not self._own_write:
                cache.clear()
            if previous is not None:
                previous()

        collection.on_change = hook

    def _cached_model(self, cache_name: str, collection, url: str, decode):
        cache = self._model_cache[cache_name]
        if url in cache:
            return cache[url]
        doc = collection.find_one({"endpoint_url": url})
        model = decode(doc) if doc else None
        cache[url] = model
        return model

    def _replace_quietly(self, collection, url: str, doc: Dict[str, Any]) -> None:
        """Replace *url*'s doc without clearing this facade's own cache.

        The typed save path invalidates exactly its own cache key (the
        write-through in each ``save_*``); other subscribers to the
        collection's change hook are still notified.
        """
        self._own_write = True
        try:
            collection.replace_one({"endpoint_url": url}, doc, upsert=True)
        finally:
            self._own_write = False

    # -- registry records --------------------------------------------------------

    def upsert_endpoint(self, url: str, **fields: Any) -> Dict[str, Any]:
        """Create or update the registry record for *url*; returns it."""
        existing = self.endpoints.find_one({"url": url})
        if existing is None:
            record: Dict[str, Any] = {
                "url": url,
                "title": fields.pop("title", url),
                "status": fields.pop("status", "listed"),
                "source": fields.pop("source", "manual"),
                "last_success_day": None,
                "last_attempt_day": None,
                "last_error": None,
            }
            record.update(fields)
            self.endpoints.insert_one(record)
            return record
        updates = {f"{key}": value for key, value in fields.items()}
        if updates:
            self.endpoints.update_one({"url": url}, {"$set": updates})
        return self.endpoints.find_one({"url": url})

    def endpoint_record(self, url: str) -> Optional[Dict[str, Any]]:
        return self.endpoints.find_one({"url": url})

    def list_endpoints(self, status: Optional[str] = None) -> List[Dict[str, Any]]:
        query: Dict[str, Any] = {}
        if status is not None:
            query["status"] = status
        return self.endpoints.find(query, sort=[("url", 1)])

    def endpoint_count(self, status: Optional[str] = None) -> int:
        if status is None:
            return self.endpoints.count_documents()
        return self.endpoints.count_documents({"status": status})

    # -- artifacts ----------------------------------------------------------------

    def save_indexes(self, indexes: EndpointIndexes) -> None:
        self._replace_quietly(self.indexes, indexes.endpoint_url, indexes.to_doc())
        # Write-through: the saved model is what a load would decode.
        self._model_cache["indexes"][indexes.endpoint_url] = indexes

    def load_indexes(self, url: str) -> Optional[EndpointIndexes]:
        return self._cached_model("indexes", self.indexes, url, EndpointIndexes.from_doc)

    def save_summary(self, summary: SchemaSummary) -> None:
        self._replace_quietly(self.summaries, summary.endpoint_url, summary.to_doc())
        self._model_cache["summaries"][summary.endpoint_url] = summary

    def load_summary(self, url: str) -> Optional[SchemaSummary]:
        return self._cached_model("summaries", self.summaries, url, SchemaSummary.from_doc)

    def save_cluster_schema(self, schema: ClusterSchema) -> None:
        self._replace_quietly(self.clusters, schema.endpoint_url, schema.to_doc())
        self._model_cache["clusters"][schema.endpoint_url] = schema

    def load_cluster_schema(self, url: str) -> Optional[ClusterSchema]:
        return self._cached_model("clusters", self.clusters, url, ClusterSchema.from_doc)

    # -- bookkeeping ---------------------------------------------------------------

    def record_extraction_success(self, url: str, day: int) -> None:
        self.upsert_endpoint(
            url,
            status="indexed",
            last_success_day=day,
            last_attempt_day=day,
            last_error=None,
        )

    def record_extraction_failure(self, url: str, day: int, error: str) -> None:
        record = self.endpoint_record(url) or self.upsert_endpoint(url)
        status = "broken" if record.get("last_success_day") is None else "stale"
        self.upsert_endpoint(
            url, status=status, last_attempt_day=day, last_error=error
        )

    def indexed_urls(self) -> List[str]:
        return [record["url"] for record in self.list_endpoints(status="indexed")]

    def flush(self) -> None:
        self.store.flush()
