"""Secondary indexes for the embedded document store.

Indexes map the value at a dotted field path to the set of document ids
holding it.  Unhashable values (dicts, lists) are indexed by a canonical
JSON rendering -- equality lookups still work, which is all the equality
index contract promises.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Set

from .documents import DocumentError, ObjectId, document_to_jsonable
from .query import _MISSING, resolve_path

__all__ = ["Index"]


def _index_key(value: Any) -> Any:
    """A hashable stand-in for *value*."""
    if isinstance(value, (str, int, float, bool, type(None), ObjectId)):
        return value
    return json.dumps(document_to_jsonable({"v": value}), sort_keys=True)


class Index:
    """An equality index over one dotted field path."""

    def __init__(self, field: str, unique: bool = False):
        self.field = field
        self.unique = unique
        self._entries: Dict[Any, Set[ObjectId]] = {}

    def _value_for(self, document: Dict[str, Any]) -> Any:
        return resolve_path(document, self.field)

    def check_unique(self, oid, document: Dict[str, Any]) -> None:
        """Raise before insertion if adding *document* would violate unique."""
        if not self.unique:
            return
        value = self._value_for(document)
        if value is _MISSING:
            return  # sparse behaviour: missing values don't collide
        key = _index_key(value)
        holders = self._entries.get(key)
        if holders and any(other != oid for other in holders):
            raise DocumentError(
                f"unique index on {self.field!r} violated by value {value!r}"
            )

    def add(self, oid, document: Dict[str, Any]) -> None:
        value = self._value_for(document)
        if value is _MISSING:
            return
        self._entries.setdefault(_index_key(value), set()).add(oid)

    def remove(self, oid, document: Dict[str, Any]) -> None:
        value = self._value_for(document)
        if value is _MISSING:
            return
        key = _index_key(value)
        holders = self._entries.get(key)
        if holders:
            holders.discard(oid)
            if not holders:
                del self._entries[key]

    def lookup(self, value: Any) -> List:
        """Document ids whose indexed value equals *value*."""
        return sorted(
            self._entries.get(_index_key(value), ()),
            key=lambda oid: str(oid),
        )
