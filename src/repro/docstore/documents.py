"""Document model for the embedded store: ObjectIds and validation.

The paper's server layer persists Schema Summaries and Cluster Schemas in
MongoDB.  This package is a faithful stand-in: documents are plain dicts
with an ``_id`` key, ids are monotonic ``ObjectId`` values, and documents
must be JSON-serializable so the persistence layer can write JSON-lines.
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Dict

__all__ = ["ObjectId", "validate_document", "DocumentError", "deep_copy_document"]


class DocumentError(ValueError):
    """A document failed validation (non-JSON value, bad key, ...)."""


class ObjectId:
    """A compact unique document id.

    Real ObjectIds embed a timestamp and machine id; for a deterministic
    simulation we only need uniqueness and a stable string form, so the id
    is a process-wide counter rendered as a zero-padded hex string.
    """

    __slots__ = ("value",)

    _counter = itertools.count(1)

    def __init__(self, value: str = None):
        if value is None:
            value = format(next(ObjectId._counter), "024x")
        if not isinstance(value, str) or len(value) != 24:
            raise DocumentError(f"ObjectId must be a 24-char string, got {value!r}")
        try:
            int(value, 16)
        except ValueError as exc:
            raise DocumentError(f"ObjectId must be hex, got {value!r}") from exc
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("ObjectId is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, ObjectId) and other.value == self.value

    def __lt__(self, other: "ObjectId") -> bool:
        if not isinstance(other, ObjectId):
            return NotImplemented
        return self.value < other.value

    def __hash__(self) -> int:
        return hash((ObjectId, self.value))

    def __repr__(self) -> str:
        return f"ObjectId({self.value!r})"

    def __str__(self) -> str:
        return self.value


_ATOMS = (str, int, float, bool, type(None), ObjectId)


def validate_document(document: Dict[str, Any], _path: str = "") -> None:
    """Ensure *document* only holds JSON-compatible values (plus ObjectId).

    Raises :class:`DocumentError` naming the offending path, which is what
    you want when a deeply nested summary fails to persist.
    """
    if not isinstance(document, dict):
        raise DocumentError(f"document{_path or ''} must be a dict, got {type(document).__name__}")
    for key, value in document.items():
        if not isinstance(key, str):
            raise DocumentError(f"key {key!r} at {_path or '<root>'} is not a string")
        if key.startswith("$"):
            raise DocumentError(f"key {key!r} at {_path or '<root>'} may not start with '$'")
        path = f"{_path}.{key}" if _path else key
        _validate_value(value, path)


def _validate_value(value: Any, path: str) -> None:
    if isinstance(value, _ATOMS):
        return
    if isinstance(value, dict):
        validate_document(value, path)
        return
    if isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            _validate_value(item, f"{path}[{index}]")
        return
    raise DocumentError(f"unsupported value {type(value).__name__} at {path}")


def deep_copy_document(document: Dict[str, Any]) -> Dict[str, Any]:
    """A structural deep copy that preserves ObjectId instances.

    The store hands out copies so callers can't mutate stored state behind
    its back (the classic shared-dict bug class in embedded stores).
    """
    return _copy_value(document)


def _copy_value(value: Any) -> Any:
    # Exact-type checks first: document values are overwhelmingly plain
    # atoms and plain containers, and `is` beats isinstance on this very
    # hot path.
    cls = value.__class__
    if cls is str or cls is int or cls is float or cls is bool:
        return value
    if cls is dict:
        return {key: _copy_value(item) for key, item in value.items()}
    if cls is list or cls is tuple:
        return [_copy_value(item) for item in value]
    # Subclasses (OrderedDict, namedtuple, ...) pass validation via
    # isinstance, so they must be copied here too or the isolation
    # guarantee breaks.
    if isinstance(value, dict):
        return {key: _copy_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_copy_value(item) for item in value]
    return value  # atoms (incl. ObjectId) are immutable


def document_to_jsonable(document: Dict[str, Any]) -> Dict[str, Any]:
    """Encode a document for JSON-lines persistence (ObjectId -> tagged dict)."""

    def encode(value: Any) -> Any:
        if isinstance(value, ObjectId):
            return {"$oid": value.value}
        if isinstance(value, dict):
            return {key: encode(item) for key, item in value.items()}
        if isinstance(value, (list, tuple)):
            return [encode(item) for item in value]
        return value

    return encode(document)


def document_from_jsonable(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Decode a persisted JSON document (tagged dicts -> ObjectId)."""

    def decode(value: Any) -> Any:
        if isinstance(value, dict):
            if set(value.keys()) == {"$oid"}:
                return ObjectId(value["$oid"])
            return {key: decode(item) for key, item in value.items()}
        if isinstance(value, list):
            return [decode(item) for item in value]
        return value

    return decode(payload)


def dumps_document(document: Dict[str, Any]) -> str:
    """One-line JSON encoding used by the persistence layer."""
    return json.dumps(document_to_jsonable(document), sort_keys=True, separators=(",", ":"))


def loads_document(text: str) -> Dict[str, Any]:
    return document_from_jsonable(json.loads(text))
