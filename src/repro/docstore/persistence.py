"""JSON-lines persistence for the document store.

Layout on disk::

    <root>/<database>/<collection>.jsonl      one document per line

Writes are atomic per collection (write to a temp file, then rename) so a
crash mid-flush never leaves a half-written collection -- the failure mode
our corruption tests inject.
"""

from __future__ import annotations

import os
import tempfile
from typing import TYPE_CHECKING, List

from .documents import dumps_document, loads_document

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import Database

__all__ = ["save_database", "load_database", "PersistenceError"]


class PersistenceError(RuntimeError):
    """A collection file exists but cannot be decoded."""


def save_database(root: str, databases: List["Database"]) -> None:
    """Write every collection of every database under *root*.

    After the writes succeed, ``.jsonl`` files for collections (and whole
    directories for databases) that no longer exist are pruned -- otherwise
    a dropped collection would resurrect on the next ``load_database``.
    Pruning runs strictly after the new state is on disk, so a crash
    anywhere in the save leaves at worst stale extras, never lost data.
    """
    os.makedirs(root, exist_ok=True)
    for database in databases:
        db_dir = os.path.join(root, database.name)
        os.makedirs(db_dir, exist_ok=True)
        for name in database.collection_names():
            collection = database.collection(name)
            target = os.path.join(db_dir, f"{name}.jsonl")
            descriptor, temp_path = tempfile.mkstemp(
                dir=db_dir, prefix=f".{name}.", suffix=".tmp"
            )
            try:
                with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                    for document in collection.all_documents():
                        handle.write(dumps_document(document))
                        handle.write("\n")
                os.replace(temp_path, target)
            except BaseException:
                if os.path.exists(temp_path):
                    os.unlink(temp_path)
                raise
        keep = {f"{name}.jsonl" for name in database.collection_names()}
        for filename in os.listdir(db_dir):
            if filename.endswith(".jsonl") and filename not in keep:
                os.unlink(os.path.join(db_dir, filename))
    alive = {database.name for database in databases}
    for db_name in os.listdir(root):
        db_dir = os.path.join(root, db_name)
        if db_name in alive or not os.path.isdir(db_dir):
            continue
        for filename in os.listdir(db_dir):
            if filename.endswith(".jsonl") or filename.endswith(".tmp"):
                os.unlink(os.path.join(db_dir, filename))
        try:
            os.rmdir(db_dir)  # leave non-empty dirs (foreign files) alone
        except OSError:  # pragma: no cover - defensive
            pass


def load_database(root: str) -> List["Database"]:
    """Load every database found under *root* (empty list if none)."""
    from .database import Database  # deferred: Database imports this module

    databases: List[Database] = []
    if not os.path.isdir(root):
        return databases
    for db_name in sorted(os.listdir(root)):
        db_dir = os.path.join(root, db_name)
        if not os.path.isdir(db_dir):
            continue
        database = Database(db_name)
        for filename in sorted(os.listdir(db_dir)):
            if not filename.endswith(".jsonl"):
                continue
            collection = database.collection(filename[: -len(".jsonl")])
            path = os.path.join(db_dir, filename)
            with open(path, encoding="utf-8") as handle:
                for lineno, line in enumerate(handle, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        document = loads_document(line)
                    except ValueError as exc:
                        raise PersistenceError(
                            f"{path}:{lineno}: corrupt document: {exc}"
                        ) from exc
                    collection.insert_one(document)
        databases.append(database)
    return databases
