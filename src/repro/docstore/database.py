"""Database: a named group of collections, the pymongo ``Database`` analog.

H-BOLD's server layer keeps endpoints, indexes (statistics), Schema
Summaries and Cluster Schemas in separate collections of one database;
:class:`DocumentStore` is the top-level client object handed around the
core package.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .collection import Collection
from .persistence import load_database, save_database

__all__ = ["Database", "DocumentStore"]


class Database:
    """A lazily-created mapping of collection name -> :class:`Collection`."""

    def __init__(self, name: str):
        if not name or any(c in name for c in r'/\. "$'):
            raise ValueError(f"bad database name {name!r}")
        self.name = name
        self._collections: Dict[str, Collection] = {}

    def collection(self, name: str) -> Collection:
        """Get or create the named collection (Mongo auto-creates too)."""
        existing = self._collections.get(name)
        if existing is None:
            existing = Collection(name)
            self._collections[name] = existing
        return existing

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)

    def collection_names(self) -> List[str]:
        return sorted(self._collections)

    def drop_collection(self, name: str) -> bool:
        return self._collections.pop(name, None) is not None

    def __iter__(self) -> Iterator[Collection]:
        for name in self.collection_names():
            yield self._collections[name]

    def __repr__(self) -> str:
        return f"<Database {self.name!r} collections={self.collection_names()}>"


class DocumentStore:
    """Top-level store: multiple databases plus optional disk persistence.

    ``persist_dir`` enables JSON-lines durability: :meth:`flush` writes
    every database to ``<persist_dir>/<db>/<collection>.jsonl`` and the
    constructor reloads whatever is on disk.
    """

    def __init__(self, persist_dir: Optional[str] = None):
        self._databases: Dict[str, Database] = {}
        self.persist_dir = persist_dir
        if persist_dir:
            for database in load_database(persist_dir):
                self._databases[database.name] = database

    def database(self, name: str) -> Database:
        existing = self._databases.get(name)
        if existing is None:
            existing = Database(name)
            self._databases[name] = existing
        return existing

    def __getitem__(self, name: str) -> Database:
        return self.database(name)

    def database_names(self) -> List[str]:
        return sorted(self._databases)

    def drop_database(self, name: str) -> bool:
        return self._databases.pop(name, None) is not None

    def flush(self) -> None:
        """Write all databases to disk (no-op without ``persist_dir``)."""
        if self.persist_dir:
            save_database(self.persist_dir, list(self._databases.values()))

    def __repr__(self) -> str:
        return f"<DocumentStore databases={self.database_names()}>"
