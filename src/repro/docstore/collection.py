"""Collections: the CRUD surface of the embedded document store.

API mirrors pymongo where the H-BOLD server layer needs it:
``insert_one/insert_many``, ``find/find_one`` (with sort/limit/skip and
projections), ``replace_one``, ``update_one/update_many`` (``$set``,
``$unset``, ``$inc``, ``$push``), ``delete_one/delete_many``,
``count_documents``, ``distinct`` and ``create_index`` with unique-key
enforcement.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from .documents import (
    DocumentError,
    ObjectId,
    deep_copy_document,
    validate_document,
)
from .indexes import Index
from .query import _MISSING, QuerySyntaxError, matches, resolve_path

__all__ = ["Collection", "InsertResult", "UpdateResult", "DeleteResult", "DuplicateKeyError"]


class DuplicateKeyError(DocumentError):
    """Insert/update violated a unique index."""


class InsertResult:
    __slots__ = ("inserted_ids",)

    def __init__(self, inserted_ids: List[ObjectId]):
        self.inserted_ids = inserted_ids

    @property
    def inserted_id(self) -> ObjectId:
        return self.inserted_ids[0]


class UpdateResult:
    __slots__ = ("matched_count", "modified_count", "upserted_id")

    def __init__(self, matched: int, modified: int, upserted_id: Optional[ObjectId] = None):
        self.matched_count = matched
        self.modified_count = modified
        self.upserted_id = upserted_id


class DeleteResult:
    __slots__ = ("deleted_count",)

    def __init__(self, deleted: int):
        self.deleted_count = deleted


class Collection:
    """An ordered set of documents keyed by ``_id`` with secondary indexes."""

    def __init__(self, name: str):
        if not name or "$" in name:
            raise ValueError(f"bad collection name {name!r}")
        self.name = name
        self._documents: Dict[ObjectId, Dict[str, Any]] = {}
        self._insertion_order: List[ObjectId] = []
        self._indexes: Dict[str, Index] = {}
        #: bumped on every mutation; used by persistence for dirty tracking
        self.revision = 0
        #: optional zero-argument callback invoked after every mutation
        #: (read-through caches above the store subscribe to this)
        self.on_change = None

    def __len__(self) -> int:
        return len(self._documents)

    def _bump(self) -> None:
        self.revision += 1
        callback = self.on_change
        if callback is not None:
            callback()

    def __repr__(self) -> str:
        return f"<Collection {self.name!r} with {len(self)} documents>"

    # -- indexes -------------------------------------------------------------

    def create_index(self, field: str, unique: bool = False) -> str:
        """Create (or fetch) a secondary index on a dotted *field* path."""
        index_name = f"{field}_1"
        existing = self._indexes.get(index_name)
        if existing is not None:
            if existing.unique != unique:
                raise ValueError(
                    f"index {index_name} already exists with unique={existing.unique}"
                )
            return index_name
        index = Index(field, unique=unique)
        for oid in self._insertion_order:
            index.add(oid, self._documents[oid])
        self._indexes[index_name] = index
        return index_name

    def index_names(self) -> List[str]:
        return sorted(self._indexes)

    # -- inserts ---------------------------------------------------------------

    def insert_one(self, document: Dict[str, Any]) -> InsertResult:
        return InsertResult([self._insert(document)])

    def insert_many(self, documents: Iterable[Dict[str, Any]]) -> InsertResult:
        inserted = [self._insert(document) for document in documents]
        return InsertResult(inserted)

    def _insert(self, document: Dict[str, Any]) -> ObjectId:
        validate_document(document)
        stored = deep_copy_document(document)
        oid = stored.get("_id", _MISSING)
        if oid is _MISSING or oid is None:
            oid = ObjectId()
            stored["_id"] = oid
        elif not isinstance(oid, ObjectId):
            # Allow caller-chosen string/int ids like Mongo does.
            if not isinstance(oid, (str, int)):
                raise DocumentError(f"unsupported _id type {type(oid).__name__}")
        if oid in self._documents:
            raise DuplicateKeyError(f"duplicate _id {oid!r} in {self.name}")
        for index in self._indexes.values():
            index.check_unique(oid, stored)
        self._documents[oid] = stored
        self._insertion_order.append(oid)
        for index in self._indexes.values():
            index.add(oid, stored)
        self._bump()
        return oid

    # -- queries ---------------------------------------------------------------

    def _candidates(self, query: Dict[str, Any]) -> Iterable[ObjectId]:
        """Use an equality-compatible index when one covers a filter key."""
        for key, spec in query.items():
            if key.startswith("$") or isinstance(spec, dict):
                continue
            index = self._indexes.get(f"{key}_1")
            if index is not None:
                return index.lookup(spec)
        return self._insertion_order

    def find(
        self,
        query: Optional[Dict[str, Any]] = None,
        projection: Optional[Dict[str, int]] = None,
        sort: Optional[List[Tuple[str, int]]] = None,
        limit: int = 0,
        skip: int = 0,
    ) -> List[Dict[str, Any]]:
        """Return matching documents (copies), Mongo-style options included."""
        query = query or {}
        out: List[Dict[str, Any]] = []
        for oid in self._candidates(query):
            document = self._documents.get(oid)
            if document is not None and matches(document, query):
                out.append(document)

        if sort:
            for field, direction in reversed(sort):
                if direction not in (1, -1):
                    raise ValueError(f"sort direction must be 1 or -1, got {direction}")
                out.sort(
                    key=lambda d: _sort_key(resolve_path(d, field)),
                    reverse=direction == -1,
                )
        if skip:
            out = out[skip:]
        if limit:
            out = out[:limit]
        return [self._project(document, projection) for document in out]

    def find_one(
        self,
        query: Optional[Dict[str, Any]] = None,
        projection: Optional[Dict[str, int]] = None,
        sort: Optional[List[Tuple[str, int]]] = None,
    ) -> Optional[Dict[str, Any]]:
        results = self.find(query, projection=projection, sort=sort, limit=1)
        return results[0] if results else None

    @staticmethod
    def _project(
        document: Dict[str, Any], projection: Optional[Dict[str, int]]
    ) -> Dict[str, Any]:
        copied = deep_copy_document(document)
        if not projection:
            return copied
        include = {field for field, flag in projection.items() if flag}
        exclude = {field for field, flag in projection.items() if not flag}
        if include and exclude - {"_id"}:
            raise QuerySyntaxError("cannot mix inclusion and exclusion projections")
        if include:
            kept = {field: copied[field] for field in include if field in copied}
            if "_id" not in exclude and "_id" in copied:
                kept["_id"] = copied["_id"]
            return kept
        for field in exclude:
            copied.pop(field, None)
        return copied

    def count_documents(self, query: Optional[Dict[str, Any]] = None) -> int:
        query = query or {}
        if not query:
            return len(self._documents)
        return sum(
            1
            for oid in self._candidates(query)
            if (doc := self._documents.get(oid)) is not None and matches(doc, query)
        )

    def distinct(self, field: str, query: Optional[Dict[str, Any]] = None) -> List[Any]:
        values: List[Any] = []
        seen: List[Any] = []  # values may be unhashable (dicts/lists)
        for document in self.find(query or {}):
            value = resolve_path(document, field)
            if value is _MISSING:
                continue
            candidates = value if isinstance(value, list) else [value]
            for candidate in candidates:
                if candidate not in seen:
                    seen.append(candidate)
                    values.append(candidate)
        return values

    # -- updates ---------------------------------------------------------------

    def replace_one(
        self,
        query: Dict[str, Any],
        replacement: Dict[str, Any],
        upsert: bool = False,
    ) -> UpdateResult:
        validate_document(replacement)
        for oid in list(self._candidates(query)):
            document = self._documents.get(oid)
            if document is None or not matches(document, query):
                continue
            stored = deep_copy_document(replacement)
            stored["_id"] = document["_id"]
            self._reindex(oid, document, stored)
            self._documents[oid] = stored
            self._bump()
            return UpdateResult(1, 1)
        if upsert:
            upserted = self._insert(replacement)
            return UpdateResult(0, 0, upserted_id=upserted)
        return UpdateResult(0, 0)

    def update_one(
        self, query: Dict[str, Any], update: Dict[str, Any], upsert: bool = False
    ) -> UpdateResult:
        return self._update(query, update, multi=False, upsert=upsert)

    def update_many(self, query: Dict[str, Any], update: Dict[str, Any]) -> UpdateResult:
        return self._update(query, update, multi=True, upsert=False)

    def _update(
        self, query: Dict[str, Any], update: Dict[str, Any], multi: bool, upsert: bool
    ) -> UpdateResult:
        if not update or not all(k.startswith("$") for k in update):
            raise QuerySyntaxError("updates must use operators like $set")
        matched = 0
        modified = 0
        for oid in list(self._candidates(query)):
            document = self._documents.get(oid)
            if document is None or not matches(document, query):
                continue
            matched += 1
            updated = deep_copy_document(document)
            if _apply_update(updated, update):
                validate_document(updated)
                self._reindex(oid, document, updated)
                self._documents[oid] = updated
                modified += 1
                self._bump()
            if not multi:
                break
        if matched == 0 and upsert:
            seed: Dict[str, Any] = {}
            for key, value in query.items():
                if not key.startswith("$") and not isinstance(value, dict):
                    seed[key] = value
            _apply_update(seed, update)
            upserted = self._insert(seed)
            return UpdateResult(0, 0, upserted_id=upserted)
        return UpdateResult(matched, modified)

    def _reindex(self, oid, old: Dict[str, Any], new: Dict[str, Any]) -> None:
        for index in self._indexes.values():
            index.remove(oid, old)
        try:
            for index in self._indexes.values():
                index.check_unique(oid, new)
        except DocumentError:
            for index in self._indexes.values():  # restore before failing
                index.add(oid, old)
            raise
        for index in self._indexes.values():
            index.add(oid, new)

    # -- deletes ---------------------------------------------------------------

    def delete_one(self, query: Dict[str, Any]) -> DeleteResult:
        return self._delete(query, multi=False)

    def delete_many(self, query: Optional[Dict[str, Any]] = None) -> DeleteResult:
        return self._delete(query or {}, multi=True)

    def _delete(self, query: Dict[str, Any], multi: bool) -> DeleteResult:
        victims: List[ObjectId] = []
        for oid in self._candidates(query):
            document = self._documents.get(oid)
            if document is not None and matches(document, query):
                victims.append(oid)
                if not multi:
                    break
        for oid in victims:
            document = self._documents.pop(oid)
            self._insertion_order.remove(oid)
            for index in self._indexes.values():
                index.remove(oid, document)
        if victims:
            self._bump()
        return DeleteResult(len(victims))

    # -- bulk access for persistence -------------------------------------------

    def all_documents(self) -> Iterator[Dict[str, Any]]:
        """Stored documents in insertion order (copies)."""
        for oid in self._insertion_order:
            yield deep_copy_document(self._documents[oid])


def _sort_key(value: Any) -> Tuple:
    """Total order across the heterogeneous values Mongo sorting allows."""
    if value is _MISSING or value is None:
        return (0, "")
    if isinstance(value, bool):
        return (2, value)
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, str):
        return (3, value)
    if isinstance(value, ObjectId):
        return (4, value.value)
    if isinstance(value, list):
        return (5, str(value))
    return (6, str(value))


def _apply_update(document: Dict[str, Any], update: Dict[str, Any]) -> bool:
    """Apply update operators in place; return True if anything changed."""
    changed = False
    for operator, spec in update.items():
        if not isinstance(spec, dict):
            raise QuerySyntaxError(f"{operator} needs a field document")
        if operator == "$set":
            for path, value in spec.items():
                if _set_path(document, path, value):
                    changed = True
        elif operator == "$unset":
            for path in spec:
                if _unset_path(document, path):
                    changed = True
        elif operator == "$inc":
            for path, amount in spec.items():
                current = resolve_path(document, path)
                if current is _MISSING:
                    current = 0
                if not isinstance(current, (int, float)) or isinstance(current, bool):
                    raise QuerySyntaxError(f"$inc target {path!r} is not numeric")
                _set_path(document, path, current + amount)
                changed = True
        elif operator == "$push":
            for path, value in spec.items():
                current = resolve_path(document, path)
                if current is _MISSING:
                    _set_path(document, path, [value])
                elif isinstance(current, list):
                    current.append(value)
                else:
                    raise QuerySyntaxError(f"$push target {path!r} is not an array")
                changed = True
        else:
            raise QuerySyntaxError(f"unknown update operator {operator!r}")
    return changed


def _set_path(document: Dict[str, Any], path: str, value: Any) -> bool:
    segments = path.split(".")
    current = document
    for segment in segments[:-1]:
        if isinstance(current, list):
            current = current[int(segment)]
        else:
            current = current.setdefault(segment, {})
        if not isinstance(current, (dict, list)):
            raise QuerySyntaxError(f"cannot descend into {segment!r} on path {path!r}")
    leaf = segments[-1]
    if isinstance(current, list):
        index = int(leaf)
        if current[index] == value:
            return False
        current[index] = value
        return True
    if current.get(leaf, _MISSING) == value:
        return False
    current[leaf] = value
    return True


def _unset_path(document: Dict[str, Any], path: str) -> bool:
    segments = path.split(".")
    current = document
    for segment in segments[:-1]:
        if isinstance(current, dict):
            if segment not in current:
                return False
            current = current[segment]
        elif isinstance(current, list):
            current = current[int(segment)]
        else:
            return False
    if isinstance(current, dict) and segments[-1] in current:
        del current[segments[-1]]
        return True
    return False
