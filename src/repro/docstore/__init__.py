"""Embedded document store: the MongoDB substitute for the H-BOLD server.

The paper stores Schema Summaries and Cluster Schemas in MongoDB so the
presentation layer can answer from the DB instead of recomputing (§3.2).
This package reproduces the storage contract the server layer needs:
Mongo-flavoured CRUD + query operators + secondary indexes, with optional
JSON-lines persistence.
"""

from .aggregation import aggregate
from .collection import (
    Collection,
    DeleteResult,
    DuplicateKeyError,
    InsertResult,
    UpdateResult,
)
from .database import Database, DocumentStore
from .documents import DocumentError, ObjectId
from .persistence import PersistenceError
from .query import QuerySyntaxError, matches

__all__ = [
    "Collection",
    "Database",
    "DeleteResult",
    "DocumentError",
    "DocumentStore",
    "DuplicateKeyError",
    "InsertResult",
    "ObjectId",
    "PersistenceError",
    "QuerySyntaxError",
    "UpdateResult",
    "aggregate",
    "matches",
]
