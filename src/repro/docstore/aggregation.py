"""A Mongo-style aggregation pipeline for the embedded store.

Implements the stage subset the H-BOLD server uses for its dataset-list
statistics (and that covers most day-to-day Mongo usage):

* ``$match``   -- filter with the full query-operator language
* ``$project`` -- include/rename fields (``1`` or ``"$path"`` references)
* ``$group``   -- group by ``_id`` expression with accumulators
  (``$sum``, ``$avg``, ``$min``, ``$max``, ``$push``, ``$first``, ``$count``)
* ``$sort``    -- by one or more fields
* ``$limit`` / ``$skip``
* ``$unwind``  -- explode an array field

Value expressions are either literals or ``"$dotted.path"`` references.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from .collection import Collection, _sort_key
from .documents import deep_copy_document
from .query import _MISSING, QuerySyntaxError, matches, resolve_path

__all__ = ["aggregate"]


def _resolve_expression(document: Dict[str, Any], expression: Any) -> Any:
    if isinstance(expression, str) and expression.startswith("$"):
        value = resolve_path(document, expression[1:])
        return None if value is _MISSING else value
    return expression


def _stage_match(rows: List[Dict[str, Any]], spec: Dict[str, Any]) -> List[Dict[str, Any]]:
    return [row for row in rows if matches(row, spec)]


def _stage_project(rows: List[Dict[str, Any]], spec: Dict[str, Any]) -> List[Dict[str, Any]]:
    out = []
    include_id = spec.get("_id", 1)
    for row in rows:
        projected: Dict[str, Any] = {}
        for field, rule in spec.items():
            if field == "_id":
                continue
            if rule in (1, True):
                value = resolve_path(row, field)
                if value is not _MISSING:
                    projected[field] = value
            elif rule in (0, False):
                continue
            else:
                projected[field] = _resolve_expression(row, rule)
        if include_id in (1, True) and "_id" in row:
            projected["_id"] = row["_id"]
        out.append(projected)
    return out


_ACCUMULATORS = ("$sum", "$avg", "$min", "$max", "$push", "$first", "$count")


def _stage_group(rows: List[Dict[str, Any]], spec: Dict[str, Any]) -> List[Dict[str, Any]]:
    if "_id" not in spec:
        raise QuerySyntaxError("$group requires an _id expression")
    id_expression = spec["_id"]

    groups: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    members: Dict[str, List[Dict[str, Any]]] = {}
    for row in rows:
        key_value = _resolve_expression(row, id_expression)
        key = repr(key_value)
        if key not in groups:
            groups[key] = {"_id": key_value}
            members[key] = []
            order.append(key)
        members[key].append(row)

    for key in order:
        group_rows = members[key]
        result = groups[key]
        for field, accumulator in spec.items():
            if field == "_id":
                continue
            if not isinstance(accumulator, dict) or len(accumulator) != 1:
                raise QuerySyntaxError(f"bad accumulator for {field!r}")
            op, operand = next(iter(accumulator.items()))
            if op not in _ACCUMULATORS:
                raise QuerySyntaxError(f"unknown accumulator {op!r}")
            if op == "$count":
                result[field] = len(group_rows)
                continue
            values = [_resolve_expression(row, operand) for row in group_rows]
            if op == "$push":
                result[field] = values
            elif op == "$first":
                result[field] = values[0] if values else None
            else:
                numbers = [
                    v for v in values
                    if isinstance(v, (int, float)) and not isinstance(v, bool)
                ]
                if op == "$sum":
                    result[field] = sum(numbers)
                elif op == "$avg":
                    result[field] = sum(numbers) / len(numbers) if numbers else None
                elif op == "$min":
                    result[field] = min(numbers) if numbers else None
                elif op == "$max":
                    result[field] = max(numbers) if numbers else None
    return [groups[key] for key in order]


def _stage_sort(rows: List[Dict[str, Any]], spec: Dict[str, int]) -> List[Dict[str, Any]]:
    out = list(rows)
    for field, direction in reversed(list(spec.items())):
        if direction not in (1, -1):
            raise QuerySyntaxError(f"sort direction must be 1/-1, got {direction}")
        out.sort(key=lambda row: _sort_key(resolve_path(row, field)),
                 reverse=direction == -1)
    return out


def _stage_unwind(rows: List[Dict[str, Any]], spec: Any) -> List[Dict[str, Any]]:
    path = spec if isinstance(spec, str) else spec.get("path", "")
    if not path.startswith("$"):
        raise QuerySyntaxError("$unwind path must start with '$'")
    field = path[1:]
    out = []
    for row in rows:
        value = resolve_path(row, field)
        if value is _MISSING or value is None:
            continue
        if not isinstance(value, list):
            out.append(row)
            continue
        for item in value:
            clone = deep_copy_document(row)
            # only top-level unwind targets are supported (the common case)
            segments = field.split(".")
            target = clone
            for segment in segments[:-1]:
                target = target[segment]
            target[segments[-1]] = item
            out.append(clone)
    return out


def aggregate(
    collection: Collection, pipeline: Iterable[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Run an aggregation *pipeline* over *collection*."""
    rows: List[Dict[str, Any]] = collection.find({})
    for stage in pipeline:
        if not isinstance(stage, dict) or len(stage) != 1:
            raise QuerySyntaxError(f"each stage must be a single-key dict: {stage!r}")
        name, spec = next(iter(stage.items()))
        if name == "$match":
            rows = _stage_match(rows, spec)
        elif name == "$project":
            rows = _stage_project(rows, spec)
        elif name == "$group":
            rows = _stage_group(rows, spec)
        elif name == "$sort":
            rows = _stage_sort(rows, spec)
        elif name == "$limit":
            rows = rows[: int(spec)]
        elif name == "$skip":
            rows = rows[int(spec):]
        elif name == "$unwind":
            rows = _stage_unwind(rows, spec)
        else:
            raise QuerySyntaxError(f"unknown pipeline stage {name!r}")
    return rows
