"""Mongo-style query matching for the embedded document store.

Supports the operator subset the H-BOLD server layer uses, which is also
the practical core of the MongoDB query language:

* equality by example: ``{"endpoint": "http://..."}``
* comparison: ``$eq $ne $gt $gte $lt $lte``
* membership: ``$in $nin``
* existence and type: ``$exists``
* regex: ``$regex`` (with ``$options`` flags ``imsx``)
* boolean composition: ``$and $or $nor $not``
* arrays: ``$all $size $elemMatch``
* dotted paths: ``{"summary.classes.3.iri": ...}``
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional

__all__ = ["matches", "QuerySyntaxError", "resolve_path"]


class QuerySyntaxError(ValueError):
    """The filter document itself is malformed (unknown operator, ...)."""


_MISSING = object()


def resolve_path(document: Any, path: str) -> Any:
    """Resolve a dotted *path* against *document*; missing -> sentinel.

    Integer segments index into lists, other segments into dicts -- the same
    addressing scheme MongoDB uses.
    """
    current = document
    for segment in path.split("."):
        if isinstance(current, dict):
            if segment not in current:
                return _MISSING
            current = current[segment]
        elif isinstance(current, list):
            try:
                index = int(segment)
            except ValueError:
                # Mongo semantics: a non-numeric segment against an array
                # matches if any element resolves it.
                values = [resolve_path(item, segment) for item in current]
                values = [v for v in values if v is not _MISSING]
                if not values:
                    return _MISSING
                return values
            if not -len(current) <= index < len(current):
                return _MISSING
            current = current[index]
        else:
            return _MISSING
    return current


def _values_equal(left: Any, right: Any) -> bool:
    if type(left) is bool or type(right) is bool:
        return left is right if isinstance(left, bool) and isinstance(right, bool) else False
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left == right
    return left == right


def _compare(op: Callable[[Any, Any], bool], value: Any, operand: Any) -> bool:
    try:
        if isinstance(value, (int, float)) and isinstance(operand, (int, float)) and not (
            isinstance(value, bool) or isinstance(operand, bool)
        ):
            return op(value, operand)
        if isinstance(value, str) and isinstance(operand, str):
            return op(value, operand)
        return False
    except TypeError:
        return False


def _match_operators(value: Any, spec: Dict[str, Any]) -> bool:
    for operator, operand in spec.items():
        if operator == "$eq":
            if not _match_value(value, operand):
                return False
        elif operator == "$ne":
            if _match_value(value, operand):
                return False
        elif operator == "$gt":
            if value is _MISSING or not _compare(lambda a, b: a > b, value, operand):
                return False
        elif operator == "$gte":
            if value is _MISSING or not _compare(lambda a, b: a >= b, value, operand):
                return False
        elif operator == "$lt":
            if value is _MISSING or not _compare(lambda a, b: a < b, value, operand):
                return False
        elif operator == "$lte":
            if value is _MISSING or not _compare(lambda a, b: a <= b, value, operand):
                return False
        elif operator == "$in":
            if not isinstance(operand, list):
                raise QuerySyntaxError("$in needs a list")
            if not any(_match_value(value, item) for item in operand):
                return False
        elif operator == "$nin":
            if not isinstance(operand, list):
                raise QuerySyntaxError("$nin needs a list")
            if any(_match_value(value, item) for item in operand):
                return False
        elif operator == "$exists":
            present = value is not _MISSING
            if bool(operand) != present:
                return False
        elif operator == "$regex":
            flags = 0
            options = spec.get("$options", "")
            for char in options:
                flags |= {
                    "i": re.IGNORECASE,
                    "m": re.MULTILINE,
                    "s": re.DOTALL,
                    "x": re.VERBOSE,
                }.get(char, 0)
            if not isinstance(value, str):
                return False
            try:
                if not re.search(operand, value, flags):
                    return False
            except re.error as exc:
                raise QuerySyntaxError(f"bad $regex {operand!r}: {exc}") from exc
        elif operator == "$options":
            continue  # consumed by $regex
        elif operator == "$not":
            if not isinstance(operand, dict):
                raise QuerySyntaxError("$not needs an operator document")
            if _match_operators(value, operand):
                return False
        elif operator == "$all":
            if not isinstance(operand, list):
                raise QuerySyntaxError("$all needs a list")
            if not isinstance(value, list):
                return False
            if not all(any(_match_value(item, want) for item in value) for want in operand):
                return False
        elif operator == "$size":
            if not isinstance(value, list) or len(value) != operand:
                return False
        elif operator == "$elemMatch":
            if not isinstance(operand, dict):
                raise QuerySyntaxError("$elemMatch needs a filter document")
            if not isinstance(value, list):
                return False
            if not any(
                matches(item, operand) if isinstance(item, dict) else _match_operators(item, operand)
                for item in value
            ):
                return False
        else:
            raise QuerySyntaxError(f"unknown operator {operator!r}")
    return True


def _is_operator_doc(spec: Any) -> bool:
    return isinstance(spec, dict) and bool(spec) and all(
        isinstance(k, str) and k.startswith("$") for k in spec
    )


def _match_value(value: Any, spec: Any) -> bool:
    """Match a resolved value against an exact value or operator document."""
    if _is_operator_doc(spec):
        return _match_operators(value, spec)
    if value is _MISSING:
        return spec is None  # Mongo: {field: null} matches missing fields
    if isinstance(value, list) and not isinstance(spec, list):
        # An array field matches if any element equals the spec value.
        return any(_values_equal(item, spec) for item in value) or _values_equal(value, spec)
    return _values_equal(value, spec)


def matches(document: Dict[str, Any], query: Dict[str, Any]) -> bool:
    """Does *document* satisfy the Mongo-style *query* filter?"""
    if not isinstance(query, dict):
        raise QuerySyntaxError(f"filter must be a dict, got {type(query).__name__}")
    for key, spec in query.items():
        if key == "$and":
            if not isinstance(spec, list) or not spec:
                raise QuerySyntaxError("$and needs a non-empty list")
            if not all(matches(document, sub) for sub in spec):
                return False
        elif key == "$or":
            if not isinstance(spec, list) or not spec:
                raise QuerySyntaxError("$or needs a non-empty list")
            if not any(matches(document, sub) for sub in spec):
                return False
        elif key == "$nor":
            if not isinstance(spec, list) or not spec:
                raise QuerySyntaxError("$nor needs a non-empty list")
            if any(matches(document, sub) for sub in spec):
                return False
        elif key.startswith("$"):
            raise QuerySyntaxError(f"unknown top-level operator {key!r}")
        else:
            value = resolve_path(document, key)
            if not _match_value(value, spec):
                return False
    return True
