"""Turtle subset reader and writer.

Supported surface syntax (the subset our generators and fixtures use):

* ``@prefix`` / ``@base`` and SPARQL-style ``PREFIX`` / ``BASE`` directives
* IRIs, prefixed names, ``a`` for ``rdf:type``
* predicate lists (``;``) and object lists (``,``)
* plain/lang-tagged/datatyped literals, long (triple-quoted) strings,
  integers, decimals, doubles and booleans
* labelled blank nodes (``_:x``) and anonymous blank nodes (``[ ... ]``)

RDF collections ``( ... )`` are intentionally not supported and raise a
clear :class:`TurtleError` — nothing in the H-BOLD workload emits them.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Tuple

from .graph import Graph
from .namespaces import PREFIXES, RDF
from .terms import BNode, IRI, Literal, Term, Triple

__all__ = ["parse_turtle", "serialize_turtle", "TurtleError"]


class TurtleError(ValueError):
    """Raised on malformed Turtle with position information."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>\#[^\n]*)
  | (?P<PREFIX_DIRECTIVE>@prefix\b|PREFIX\b)
  | (?P<BASE_DIRECTIVE>@base\b|BASE\b)
  | (?P<IRIREF><[^<>"{}|^`\\\x00-\x20]*>)
  | (?P<LONG_STRING>\"\"\"(?:[^"\\]|\\.|"(?!""))*\"\"\")
  | (?P<STRING>"(?:[^"\\\n\r]|\\.)*")
  | (?P<LANGTAG>@[a-zA-Z]+(?:-[a-zA-Z0-9]+)*)
  | (?P<DOUBLE_CARET>\^\^)
  | (?P<BOOLEAN>\b(?:true|false)\b)
  | (?P<DOUBLE>[+-]?(?:\d+\.\d*|\.\d+|\d+)[eE][+-]?\d+)
  | (?P<DECIMAL>[+-]?\d*\.\d+)
  | (?P<INTEGER>[+-]?\d+)
  | (?P<BNODE>_:[A-Za-z0-9_][A-Za-z0-9_.-]*)
  | (?P<A>\ba\b)
  | (?P<PNAME>[A-Za-z_][A-Za-z0-9_.-]*?:[A-Za-z0-9_]?[A-Za-z0-9_.%-]*)
  | (?P<COLONNAME>:[A-Za-z0-9_][A-Za-z0-9_.-]*)
  | (?P<PUNCT>[.;,\[\]\(\)])
    """,
    re.VERBOSE,
)

_ESCAPES = {"t": "\t", "n": "\n", "r": "\r", '"': '"', "'": "'", "\\": "\\", "b": "\b", "f": "\f"}


class _Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int, column: int):
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_Token({self.kind}, {self.text!r})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            column = pos - line_start + 1
            raise TurtleError(f"unexpected character {text[pos]!r}", line, column)
        kind = match.lastgroup
        value = match.group()
        if kind not in ("WS", "COMMENT"):
            tokens.append(_Token(kind, value, line, pos - line_start + 1))
        newlines = value.count("\n")
        if newlines:
            line += newlines
            line_start = pos + value.rindex("\n") + 1
        pos = match.end()
    tokens.append(_Token("EOF", "", line, pos - line_start + 1))
    return tokens


def _unescape_string(raw: str, token: _Token) -> str:
    out = []
    i = 0
    while i < len(raw):
        c = raw[i]
        if c != "\\":
            out.append(c)
            i += 1
            continue
        nxt = raw[i + 1] if i + 1 < len(raw) else ""
        if nxt == "u":
            out.append(chr(int(raw[i + 2 : i + 6], 16)))
            i += 6
        elif nxt == "U":
            out.append(chr(int(raw[i + 2 : i + 10], 16)))
            i += 10
        elif nxt in _ESCAPES:
            out.append(_ESCAPES[nxt])
            i += 2
        else:
            raise TurtleError(f"invalid escape \\{nxt}", token.line, token.column)
    return "".join(out)


class _Parser:
    def __init__(self, text: str, base: Optional[str] = None):
        self.tokens = _tokenize(text)
        self.pos = 0
        self.base = base or ""
        self.prefixes: Dict[str, str] = {}
        self.triples: List[Triple] = []
        self._anon_counter = 0

    # -- token plumbing ----------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def next(self) -> _Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self.next()
        if token.kind != kind or (text is not None and token.text != text):
            raise TurtleError(
                f"expected {text or kind}, got {token.text!r}", token.line, token.column
            )
        return token

    def error(self, message: str) -> TurtleError:
        token = self.peek()
        return TurtleError(message, token.line, token.column)

    # -- grammar -------------------------------------------------------------

    def parse(self) -> List[Triple]:
        while self.peek().kind != "EOF":
            token = self.peek()
            if token.kind == "PREFIX_DIRECTIVE":
                self._parse_prefix()
            elif token.kind == "BASE_DIRECTIVE":
                self._parse_base()
            else:
                self._parse_statement()
        return self.triples

    def _parse_prefix(self) -> None:
        directive = self.next()
        token = self.next()
        if token.kind == "PNAME" and token.text.endswith(":"):
            prefix = token.text[:-1]
        elif token.kind == "COLONNAME":
            raise TurtleError("malformed prefix declaration", token.line, token.column)
        elif token.text == ":":  # pragma: no cover - tokenizer folds this into PNAME
            prefix = ""
        else:
            # "ex:" tokenizes as PNAME only with a trailing local part; accept
            # a bare "prefix:" via PNAME ending in colon, else complain.
            raise TurtleError(
                f"expected prefix name, got {token.text!r}", token.line, token.column
            )
        iri_token = self.expect("IRIREF")
        self.prefixes[prefix] = self._resolve_iri(iri_token.text[1:-1])
        if directive.text == "@prefix":
            self.expect("PUNCT", ".")

    def _parse_base(self) -> None:
        directive = self.next()
        iri_token = self.expect("IRIREF")
        self.base = self._resolve_iri(iri_token.text[1:-1])
        if directive.text == "@base":
            self.expect("PUNCT", ".")

    def _resolve_iri(self, value: str) -> str:
        if self.base and "://" not in value and not value.startswith("urn:"):
            return self.base + value
        return value

    def _parse_statement(self) -> None:
        subject = self._parse_subject()
        self._parse_predicate_object_list(subject)
        self.expect("PUNCT", ".")

    def _parse_subject(self) -> Term:
        token = self.peek()
        if token.kind == "IRIREF":
            return self._parse_iri()
        if token.kind in ("PNAME", "COLONNAME"):
            return self._parse_pname()
        if token.kind == "BNODE":
            self.next()
            return BNode(token.text[2:])
        if token.kind == "PUNCT" and token.text == "[":
            return self._parse_anon_bnode()
        raise self.error(f"expected subject, got {token.text!r}")

    def _parse_predicate_object_list(self, subject: Term) -> None:
        while True:
            predicate = self._parse_predicate()
            while True:
                obj = self._parse_object()
                self.triples.append(Triple(subject, predicate, obj))
                if self.peek().text == ",":
                    self.next()
                    continue
                break
            if self.peek().text == ";":
                self.next()
                # allow trailing ';' before '.' or ']'
                if self.peek().text in (".", "]"):
                    return
                continue
            return

    def _parse_predicate(self) -> IRI:
        token = self.peek()
        if token.kind == "A":
            self.next()
            return RDF.type
        if token.kind == "IRIREF":
            return self._parse_iri()
        if token.kind in ("PNAME", "COLONNAME"):
            term = self._parse_pname()
            return term
        raise self.error(f"expected predicate, got {token.text!r}")

    def _parse_object(self) -> Term:
        token = self.peek()
        if token.kind == "IRIREF":
            return self._parse_iri()
        if token.kind in ("PNAME", "COLONNAME"):
            return self._parse_pname()
        if token.kind == "BNODE":
            self.next()
            return BNode(token.text[2:])
        if token.kind == "PUNCT" and token.text == "[":
            return self._parse_anon_bnode()
        if token.kind == "PUNCT" and token.text == "(":
            raise self.error("RDF collections '( ... )' are not supported")
        if token.kind in ("STRING", "LONG_STRING"):
            return self._parse_literal()
        if token.kind == "INTEGER":
            self.next()
            return Literal(int(token.text))
        if token.kind == "DECIMAL":
            self.next()
            return Literal(token.text, datatype="http://www.w3.org/2001/XMLSchema#decimal")
        if token.kind == "DOUBLE":
            self.next()
            return Literal(float(token.text))
        if token.kind == "BOOLEAN":
            self.next()
            return Literal(token.text == "true")
        raise self.error(f"expected object, got {token.text!r}")

    def _parse_iri(self) -> IRI:
        token = self.expect("IRIREF")
        return IRI(self._resolve_iri(token.text[1:-1]))

    def _parse_pname(self) -> IRI:
        token = self.next()
        text = token.text
        prefix, _, local = text.partition(":")
        local = local.replace("%20", " ")
        if prefix not in self.prefixes:
            raise TurtleError(f"unknown prefix {prefix!r}:", token.line, token.column)
        return IRI(self.prefixes[prefix] + local)

    def _parse_literal(self) -> Literal:
        token = self.next()
        if token.kind == "LONG_STRING":
            raw = token.text[3:-3]
        else:
            raw = token.text[1:-1]
        lexical = _unescape_string(raw, token)
        nxt = self.peek()
        if nxt.kind == "LANGTAG":
            self.next()
            return Literal(lexical, language=nxt.text[1:])
        if nxt.kind == "DOUBLE_CARET":
            self.next()
            dtype_token = self.peek()
            if dtype_token.kind == "IRIREF":
                dtype = self._parse_iri()
            elif dtype_token.kind in ("PNAME", "COLONNAME"):
                dtype = self._parse_pname()
            else:
                raise self.error("expected datatype IRI after ^^")
            return Literal(lexical, datatype=dtype)
        return Literal(lexical)

    def _parse_anon_bnode(self) -> BNode:
        open_token = self.expect("PUNCT", "[")
        self._anon_counter += 1
        node = BNode(f"anon{open_token.line}_{open_token.column}_{self._anon_counter}")
        if self.peek().text != "]":
            self._parse_predicate_object_list(node)
        self.expect("PUNCT", "]")
        return node


def parse_turtle(text: str, base: Optional[str] = None) -> Graph:
    """Parse Turtle *text* into a new :class:`Graph`."""
    parser = _Parser(text, base=base)
    graph = Graph()
    graph.update(parser.parse())
    return graph


def serialize_turtle(
    graph: Iterable[Triple],
    prefixes: Optional[Dict[str, str]] = None,
) -> str:
    """Serialize triples to Turtle, grouping by subject and abbreviating.

    Uses the default well-known prefix table plus any caller-supplied
    *prefixes* (mapping prefix -> base IRI).
    """
    table: Dict[str, str] = {p: ns.base for p, ns in PREFIXES.items()}
    if prefixes:
        table.update(prefixes)

    def abbreviate(term: Term) -> str:
        if isinstance(term, IRI):
            if term == RDF.type:
                return "a"
            best: Tuple[int, str] = (-1, term.n3())
            for prefix, base in table.items():
                if term.value.startswith(base) and len(base) > best[0]:
                    local = term.value[len(base):]
                    if local and re.fullmatch(r"[A-Za-z0-9_][A-Za-z0-9_.-]*", local):
                        best = (len(base), f"{prefix}:{local}")
            return best[1]
        return term.n3()

    by_subject: Dict[Term, List[Triple]] = {}
    for triple in graph:
        by_subject.setdefault(triple.subject, []).append(triple)

    used_prefixes = set()

    def note_usage(text: str) -> str:
        if ":" in text and not text.startswith("<") and not text.startswith('"'):
            used_prefixes.add(text.split(":", 1)[0])
        return text

    body_lines: List[str] = []
    for subject in sorted(by_subject, key=lambda t: t.sort_key()):
        triples = sorted(by_subject[subject], key=lambda t: t.sort_key())
        subject_text = note_usage(abbreviate(subject)) if isinstance(subject, IRI) else subject.n3()
        by_predicate: Dict[IRI, List[Term]] = {}
        for triple in triples:
            by_predicate.setdefault(triple.predicate, []).append(triple.object)
        predicate_parts = []
        for predicate in sorted(by_predicate, key=lambda t: t.sort_key()):
            objects = by_predicate[predicate]
            object_texts = []
            for obj in objects:
                if isinstance(obj, IRI):
                    object_texts.append(note_usage(abbreviate(obj)))
                else:
                    text = obj.n3()
                    if isinstance(obj, Literal) and obj.datatype:
                        compact = abbreviate(IRI(obj.datatype))
                        if not compact.startswith("<"):
                            note_usage(compact)
                            escaped = text[: text.rindex("^^")]
                            text = f"{escaped}^^{compact}"
                    object_texts.append(text)
            pred_text = note_usage(abbreviate(predicate)) if predicate != RDF.type else "a"
            predicate_parts.append(f"{pred_text} {', '.join(object_texts)}")
        body_lines.append(f"{subject_text} " + " ;\n    ".join(predicate_parts) + " .")

    header_lines = [
        f"@prefix {prefix}: <{table[prefix]}> ."
        for prefix in sorted(used_prefixes)
        if prefix in table
    ]
    sections = []
    if header_lines:
        sections.append("\n".join(header_lines))
    sections.append("\n\n".join(body_lines))
    return "\n\n".join(sections) + "\n"
