"""RDF term model: IRIs, literals, blank nodes, variables and triples.

These are the atoms every other layer (triple store, SPARQL engine, endpoint
simulator, H-BOLD core) is built from.  Terms are immutable, hashable and
ordered so they can live in set-based indexes and sorted result sequences.

The ordering follows the SPARQL ``ORDER BY`` term ordering: blank nodes sort
before IRIs, IRIs before literals (SPARQL 1.1 section 15.1), with a total
order inside each kind so sorting is deterministic.
"""

from __future__ import annotations

import re
from typing import Optional, Tuple, Union

__all__ = [
    "Term",
    "IRI",
    "BNode",
    "Literal",
    "Variable",
    "Triple",
    "XSD_STRING",
    "XSD_INTEGER",
    "XSD_DECIMAL",
    "XSD_DOUBLE",
    "XSD_BOOLEAN",
    "XSD_DATETIME",
    "XSD_DATE",
]

XSD = "http://www.w3.org/2001/XMLSchema#"
XSD_STRING = XSD + "string"
XSD_INTEGER = XSD + "integer"
XSD_DECIMAL = XSD + "decimal"
XSD_DOUBLE = XSD + "double"
XSD_BOOLEAN = XSD + "boolean"
XSD_DATETIME = XSD + "dateTime"
XSD_DATE = XSD + "date"

_NUMERIC_DATATYPES = frozenset({XSD_INTEGER, XSD_DECIMAL, XSD_DOUBLE})

# Sort keys per term kind (SPARQL ordering: bnode < IRI < literal).
_KIND_BNODE = 0
_KIND_IRI = 1
_KIND_LITERAL = 2
_KIND_VARIABLE = 3

_IRI_RE = re.compile(r"^[^<>\"{}|^`\\\x00-\x20]*$")
_LANG_RE = re.compile(r"^[a-zA-Z]+(-[a-zA-Z0-9]+)*$")
_BNODE_LABEL_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.-]*$")
_VAR_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class Term:
    """Common base for all RDF terms.

    Subclasses are slotted, immutable value objects.  ``sort_key()`` yields a
    tuple comparable across *all* term kinds.
    """

    __slots__ = ()

    def sort_key(self) -> Tuple:
        raise NotImplementedError

    def n3(self) -> str:
        """Return the N-Triples / SPARQL surface syntax for this term."""
        raise NotImplementedError

    def __lt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __le__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() <= other.sort_key()

    def __gt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() > other.sort_key()

    def __ge__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() >= other.sort_key()


class IRI(Term):
    """An absolute (or at least opaque) IRI reference."""

    __slots__ = ("value", "_hash")

    def __init__(self, value: str):
        if not isinstance(value, str):
            raise TypeError(f"IRI value must be str, got {type(value).__name__}")
        if not value:
            raise ValueError("IRI value must be non-empty")
        if not _IRI_RE.match(value):
            raise ValueError(f"invalid IRI: {value!r}")
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash((IRI, value)))

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("IRI is immutable")

    @classmethod
    def _restore(cls, value: str) -> "IRI":
        """Rebuild without validation: for deserializing terms that were
        validated when first interned (the durability snapshot/WAL path,
        where per-term regex checks dominate recovery time)."""
        self = object.__new__(cls)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash((IRI, value)))
        return self

    def __eq__(self, other) -> bool:
        return isinstance(other, IRI) and other.value == self.value

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"IRI({self.value!r})"

    def __str__(self) -> str:
        return self.value

    def n3(self) -> str:
        return f"<{self.value}>"

    def sort_key(self) -> Tuple:
        return (_KIND_IRI, self.value)

    def local_name(self) -> str:
        """Heuristic local name: the fragment, else the last path segment."""
        value = self.value
        if "#" in value:
            frag = value.rsplit("#", 1)[1]
            if frag:
                return frag
        tail = value.rstrip("/").rsplit("/", 1)[-1]
        return tail or value

    def namespace(self) -> str:
        """The IRI minus :meth:`local_name` (best-effort prefix split)."""
        local = self.local_name()
        if local and self.value.endswith(local):
            return self.value[: -len(local)]
        return self.value


class BNode(Term):
    """A blank node with an explicit label."""

    __slots__ = ("label", "_hash")

    _counter = 0

    def __init__(self, label: Optional[str] = None):
        if label is None:
            BNode._counter += 1
            label = f"b{BNode._counter}"
        if not isinstance(label, str):
            raise TypeError("BNode label must be str")
        if not _BNODE_LABEL_RE.match(label):
            raise ValueError(f"invalid blank node label: {label!r}")
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "_hash", hash((BNode, label)))

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("BNode is immutable")

    @classmethod
    def _restore(cls, label: str) -> "BNode":
        """Rebuild without validation (see :meth:`IRI._restore`)."""
        self = object.__new__(cls)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "_hash", hash((BNode, label)))
        return self

    def __eq__(self, other) -> bool:
        return isinstance(other, BNode) and other.label == self.label

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"BNode({self.label!r})"

    def __str__(self) -> str:
        return f"_:{self.label}"

    def n3(self) -> str:
        return f"_:{self.label}"

    def sort_key(self) -> Tuple:
        return (_KIND_BNODE, self.label)


class Literal(Term):
    """An RDF literal: lexical form + optional language tag or datatype IRI.

    ``Literal`` accepts native Python values and maps them onto XSD types::

        Literal(3)       -> "3"^^xsd:integer
        Literal(2.5)     -> "2.5"^^xsd:double
        Literal(True)    -> "true"^^xsd:boolean
        Literal("hi")    -> plain string literal (xsd:string)
    """

    __slots__ = ("lexical", "language", "datatype", "_hash")

    def __init__(
        self,
        value: Union[str, int, float, bool],
        language: Optional[str] = None,
        datatype: Optional[Union[str, IRI]] = None,
    ):
        if language is not None and datatype is not None:
            raise ValueError("a literal cannot carry both language and datatype")

        if isinstance(value, bool):
            lexical = "true" if value else "false"
            datatype = datatype or XSD_BOOLEAN
        elif isinstance(value, int):
            lexical = str(value)
            datatype = datatype or XSD_INTEGER
        elif isinstance(value, float):
            lexical = repr(value)
            datatype = datatype or XSD_DOUBLE
        elif isinstance(value, str):
            lexical = value
        else:
            raise TypeError(f"unsupported literal value type: {type(value).__name__}")

        if language is not None:
            if not _LANG_RE.match(language):
                raise ValueError(f"invalid language tag: {language!r}")
            language = language.lower()

        if isinstance(datatype, IRI):
            datatype = datatype.value
        if datatype == XSD_STRING:
            datatype = None  # plain literal and xsd:string are the same value space

        object.__setattr__(self, "lexical", lexical)
        object.__setattr__(self, "language", language)
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "_hash", hash((Literal, lexical, language, datatype)))

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("Literal is immutable")

    @classmethod
    def _restore(
        cls, lexical: str, language: Optional[str], datatype: Optional[str]
    ) -> "Literal":
        """Rebuild from already-normalized fields (see :meth:`IRI._restore`):
        *language* is stored lowercased and plain/xsd:string literals carry
        ``datatype=None``, so the constructor's mapping must not re-run."""
        self = object.__new__(cls)
        object.__setattr__(self, "lexical", lexical)
        object.__setattr__(self, "language", language)
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "_hash", hash((Literal, lexical, language, datatype)))
        return self

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Literal)
            and other.lexical == self.lexical
            and other.language == self.language
            and other.datatype == self.datatype
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        extra = ""
        if self.language:
            extra = f", language={self.language!r}"
        elif self.datatype:
            extra = f", datatype={self.datatype!r}"
        return f"Literal({self.lexical!r}{extra})"

    def __str__(self) -> str:
        return self.lexical

    def n3(self) -> str:
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        if self.language:
            return f'"{escaped}"@{self.language}'
        if self.datatype:
            return f'"{escaped}"^^<{self.datatype}>'
        return f'"{escaped}"'

    def sort_key(self) -> Tuple:
        # Numeric literals order by numeric value among themselves.
        numeric = self.numeric_value()
        if numeric is not None:
            return (_KIND_LITERAL, 0, float(numeric), self.lexical)
        return (_KIND_LITERAL, 1, self.lexical, self.language or "", self.datatype or "")

    # -- value-space helpers -------------------------------------------------

    def is_numeric(self) -> bool:
        return self.datatype in _NUMERIC_DATATYPES

    def numeric_value(self) -> Optional[float]:
        """The numeric value, or None for non-numeric literals."""
        if not self.is_numeric():
            return None
        try:
            if self.datatype == XSD_INTEGER:
                return int(self.lexical)
            return float(self.lexical)
        except ValueError:
            return None

    def boolean_value(self) -> Optional[bool]:
        if self.datatype != XSD_BOOLEAN:
            return None
        if self.lexical in ("true", "1"):
            return True
        if self.lexical in ("false", "0"):
            return False
        return None

    def to_python(self) -> Union[str, int, float, bool]:
        """Best-effort conversion to a native Python value."""
        if self.datatype == XSD_INTEGER:
            try:
                return int(self.lexical)
            except ValueError:
                return self.lexical
        if self.datatype in (XSD_DECIMAL, XSD_DOUBLE):
            try:
                return float(self.lexical)
            except ValueError:
                return self.lexical
        if self.datatype == XSD_BOOLEAN:
            value = self.boolean_value()
            return self.lexical if value is None else value
        return self.lexical


class Variable(Term):
    """A SPARQL variable (``?name``). Only valid inside query patterns."""

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        if name.startswith("?") or name.startswith("$"):
            name = name[1:]
        if not _VAR_NAME_RE.match(name):
            raise ValueError(f"invalid variable name: {name!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash((Variable, name)))

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("Variable is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, Variable) and other.name == self.name

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return f"?{self.name}"

    def n3(self) -> str:
        return f"?{self.name}"

    def sort_key(self) -> Tuple:
        return (_KIND_VARIABLE, self.name)


class Triple:
    """An (s, p, o) ground triple.

    Subjects may be :class:`IRI` or :class:`BNode`, predicates :class:`IRI`,
    objects any ground term.  Patterns with variables are handled by the
    SPARQL layer, not by this class.
    """

    __slots__ = ("subject", "predicate", "object", "_hash")

    def __init__(self, subject: Term, predicate: IRI, object: Term):
        if not isinstance(subject, (IRI, BNode)):
            raise TypeError(f"triple subject must be IRI or BNode, got {subject!r}")
        if not isinstance(predicate, IRI):
            raise TypeError(f"triple predicate must be IRI, got {predicate!r}")
        if not isinstance(object, (IRI, BNode, Literal)):
            raise TypeError(f"triple object must be a ground term, got {object!r}")
        super().__setattr__("subject", subject)
        super().__setattr__("predicate", predicate)
        super().__setattr__("object", object)

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("Triple is immutable")

    def __iter__(self):
        yield self.subject
        yield self.predicate
        yield self.object

    def __getitem__(self, index: int) -> Term:
        return (self.subject, self.predicate, self.object)[index]

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Triple)
            and other.subject == self.subject
            and other.predicate == self.predicate
            and other.object == self.object
        )

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            value = hash((Triple, self.subject, self.predicate, self.object))
            super().__setattr__("_hash", value)
            return value

    def __repr__(self) -> str:
        return f"Triple({self.subject!r}, {self.predicate!r}, {self.object!r})"

    def n3(self) -> str:
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def sort_key(self) -> Tuple:
        return (
            self.subject.sort_key(),
            self.predicate.sort_key(),
            self.object.sort_key(),
        )


_object_setattr = object.__setattr__


def _unchecked_triple(subject: Term, predicate: IRI, obj: Term) -> Triple:
    """Build a :class:`Triple` skipping positional type validation.

    Only for terms that already passed through a validated store boundary
    (the dictionary-encoded graph decodes millions of these on hot paths).
    """
    triple = Triple.__new__(Triple)
    _object_setattr(triple, "subject", subject)
    _object_setattr(triple, "predicate", predicate)
    _object_setattr(triple, "object", obj)
    return triple
