"""N-Triples reader and writer (RDF 1.1 N-Triples, the line-based format).

N-Triples is the lingua franca for RDF dumps; the paper's pipeline ingests
"RDF dumps through a SPARQL endpoint", and our simulated endpoints load
fixture data through this module.
"""

from __future__ import annotations

import io
import re
from typing import Iterable, Iterator, TextIO, Union

from .graph import Graph
from .terms import BNode, IRI, Literal, Triple

__all__ = ["parse_ntriples", "serialize_ntriples", "NTriplesError"]


class NTriplesError(ValueError):
    """Raised on malformed N-Triples input, with 1-based line numbers."""

    def __init__(self, message: str, lineno: int):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


_IRIREF = r"<([^<>\"{}|^`\\\x00-\x20]*)>"
_BNODE = r"_:([A-Za-z0-9_][A-Za-z0-9_.-]*)"
_LITERAL = r'"((?:[^"\\\n\r]|\\.)*)"'
_LANG = r"@([a-zA-Z]+(?:-[a-zA-Z0-9]+)*)"

_SUBJECT_RE = re.compile(rf"(?:{_IRIREF}|{_BNODE})\s+")
_PREDICATE_RE = re.compile(rf"{_IRIREF}\s+")
_OBJECT_RE = re.compile(
    rf"(?:{_IRIREF}|{_BNODE}|{_LITERAL}(?:{_LANG}|\^\^{_IRIREF})?)\s*\.\s*(?:#.*)?$"
)

_ESCAPES = {"t": "\t", "n": "\n", "r": "\r", '"': '"', "\\": "\\", "b": "\b", "f": "\f"}


def _unescape(text: str, lineno: int) -> str:
    # \uXXXX / \UXXXXXXXX are handled before the single-character escapes.
    out = []
    i = 0
    while i < len(text):
        c = text[i]
        if c != "\\":
            out.append(c)
            i += 1
            continue
        if i + 1 >= len(text):
            raise NTriplesError("dangling backslash", lineno)
        nxt = text[i + 1]
        if nxt == "u":
            out.append(chr(int(text[i + 2 : i + 6], 16)))
            i += 6
        elif nxt == "U":
            out.append(chr(int(text[i + 2 : i + 10], 16)))
            i += 10
        elif nxt in _ESCAPES:
            out.append(_ESCAPES[nxt])
            i += 2
        else:
            raise NTriplesError(f"invalid escape \\{nxt}", lineno)
    return "".join(out)


def parse_ntriples(source: Union[str, TextIO]) -> Iterator[Triple]:
    """Yield triples from N-Triples text or a file-like object.

    Blank lines and ``#`` comment lines are skipped.  Malformed lines raise
    :class:`NTriplesError` carrying the line number.
    """
    stream: TextIO
    if isinstance(source, str):
        stream = io.StringIO(source)
    else:
        stream = source

    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue

        match = _SUBJECT_RE.match(line)
        if not match:
            raise NTriplesError("expected subject", lineno)
        iri_value, bnode_label = match.group(1), match.group(2)
        subject = IRI(iri_value) if iri_value is not None else BNode(bnode_label)
        rest = line[match.end():]

        match = _PREDICATE_RE.match(rest)
        if not match:
            raise NTriplesError("expected predicate IRI", lineno)
        predicate = IRI(match.group(1))
        rest = rest[match.end():]

        match = _OBJECT_RE.match(rest)
        if not match:
            raise NTriplesError("expected object followed by '.'", lineno)
        obj_iri, obj_bnode, obj_lex, obj_lang, obj_dt = match.groups()
        if obj_iri is not None:
            obj = IRI(obj_iri)
        elif obj_bnode is not None:
            obj = BNode(obj_bnode)
        else:
            lexical = _unescape(obj_lex, lineno)
            if obj_lang:
                obj = Literal(lexical, language=obj_lang)
            elif obj_dt:
                obj = Literal(lexical, datatype=obj_dt)
            else:
                obj = Literal(lexical)

        yield Triple(subject, predicate, obj)


def serialize_ntriples(triples: Iterable[Triple], sort: bool = False) -> str:
    """Serialize *triples* to N-Triples text.

    With ``sort=True`` the output is canonicalized by term order, which makes
    round-trip tests and fixture diffs deterministic.
    """
    items = list(triples)
    if sort:
        items.sort(key=lambda t: t.sort_key())
    return "".join(t.n3() + "\n" for t in items)


def graph_from_ntriples(source: Union[str, TextIO], identifier: str = None) -> Graph:
    """Parse N-Triples straight into a fresh :class:`Graph`."""
    graph = Graph(identifier=identifier)
    graph.update(parse_ntriples(source))
    return graph
