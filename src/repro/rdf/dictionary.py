"""Dictionary encoding for RDF terms: a bidirectional Term <-> int table.

Every term that enters a :class:`~repro.rdf.graph.Graph` is interned to a
small integer ID; the permutation indexes, the SPARQL join pipeline and the
property-path closures all operate on those integers and only decode back
to :class:`~repro.rdf.terms.Term` objects at the result boundary.  Integers
hash in a single machine op where IRIs and literals hash their full lexical
forms, so this is the classic triple-store trick (RDF-3X, Virtuoso, and the
"extensible database simulator" lineage) for making joins cheap.

The table reference-counts term usage so that removing triples frees the
IDs of terms that no longer occur anywhere -- the dictionary never holds
stale entries, a property the graph test-suite checks after random
add/remove sequences.  Freed IDs go onto a free list and are reused, which
keeps the ID space dense under churn; callers must treat an ID as valid
only while the term it encodes is still referenced.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from .terms import Term

__all__ = ["TermDict"]


class TermDict:
    """A reference-counted, bidirectional ``Term <-> int`` intern table."""

    __slots__ = ("_term_to_id", "_id_to_term", "_refcount", "_next_id", "_free",
                 "epoch")

    def __init__(self):
        self._term_to_id: Dict[Term, int] = {}
        self._id_to_term: Dict[int, Term] = {}
        self._refcount: Dict[int, int] = {}
        self._next_id = 0
        self._free: List[int] = []
        # Durability epoch: bumped by repro.rdf.durability each time the
        # dictionary is snapshotted, and recorded in every snapshot file so
        # recovery can refuse to pair shard columns with the wrong table.
        self.epoch = 0

    # -- encoding -----------------------------------------------------------

    def encode(self, term: Term) -> int:
        """Intern *term*, creating an ID (refcount 0) on first sight."""
        term_id = self._term_to_id.get(term)
        if term_id is None:
            if self._free:
                term_id = self._free.pop()
            else:
                term_id = self._next_id
                self._next_id += 1
            self._term_to_id[term] = term_id
            self._id_to_term[term_id] = term
            self._refcount[term_id] = 0
        return term_id

    def lookup(self, term: Term) -> Optional[int]:
        """The ID of *term* if it is interned; never creates an entry."""
        return self._term_to_id.get(term)

    def decode(self, term_id: int) -> Term:
        """The term behind *term_id*; raises ``KeyError`` for freed IDs."""
        return self._id_to_term[term_id]

    # -- reference counting --------------------------------------------------

    def incref(self, term_id: int, count: int = 1) -> None:
        self._refcount[term_id] += count

    def decref(self, term_id: int, count: int = 1) -> None:
        """Drop *count* references; frees the entry when none remain."""
        remaining = self._refcount[term_id] - count
        if remaining > 0:
            self._refcount[term_id] = remaining
            return
        if remaining < 0:  # pragma: no cover - internal invariant
            raise ValueError(f"refcount underflow for id {term_id}")
        del self._refcount[term_id]
        term = self._id_to_term.pop(term_id)
        del self._term_to_id[term]
        self._free.append(term_id)

    def refcount(self, term_id: int) -> int:
        return self._refcount.get(term_id, 0)

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._term_to_id)

    def __contains__(self, term: Term) -> bool:
        return term in self._term_to_id

    def items(self) -> Iterator[Tuple[Term, int]]:
        return iter(self._term_to_id.items())

    def terms(self) -> Iterator[Term]:
        return iter(self._term_to_id)

    def copy(self) -> "TermDict":
        out = TermDict()
        out._term_to_id = dict(self._term_to_id)
        out._id_to_term = dict(self._id_to_term)
        out._refcount = dict(self._refcount)
        out._next_id = self._next_id
        out._free = list(self._free)
        out.epoch = self.epoch
        return out

    # -- durability ----------------------------------------------------------

    def snapshot_items(self) -> Iterator[Tuple[int, int, Term]]:
        """``(term_id, refcount, term)`` rows in ascending-ID order.

        The ID order makes snapshot bytes deterministic for a given table
        state regardless of insertion history.
        """
        for term_id in sorted(self._id_to_term):
            yield term_id, self._refcount[term_id], self._id_to_term[term_id]

    @classmethod
    def restore(
        cls,
        items: Iterator[Tuple[int, int, Term]],
        next_id: int,
        free: List[int],
        epoch: int,
    ) -> "TermDict":
        """Rebuild a table from :meth:`snapshot_items` output.

        ``next_id`` and ``free`` must round-trip too: ID assignment after
        recovery has to match the live process, or WAL replay and future
        interning would diverge from the pre-crash store.
        """
        out = cls()
        for term_id, refcount, term in items:
            out._term_to_id[term] = term_id
            out._id_to_term[term_id] = term
            out._refcount[term_id] = refcount
        out._next_id = next_id
        out._free = list(free)
        out.epoch = epoch
        return out

    def __repr__(self) -> str:
        return f"<TermDict {len(self)} terms>"
