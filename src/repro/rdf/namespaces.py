"""Well-known RDF namespaces and a small helper for minting namespaced IRIs.

The H-BOLD workload touches RDF/RDFS/OWL for schema discovery, DCAT/DCTERMS
for the open-data-portal crawl (Listing 1 of the paper), and FOAF/schema.org
style vocabularies in the generated datasets.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from .terms import IRI

__all__ = [
    "Namespace",
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "DCAT",
    "DCTERMS",
    "FOAF",
    "SCHEMA",
    "VOID",
    "SWC",
    "PREFIXES",
    "curie",
    "expand_curie",
]


class Namespace:
    """A namespace prefix that mints :class:`IRI` terms via attribute access.

    >>> EX = Namespace("http://example.org/")
    >>> EX.Person
    IRI('http://example.org/Person')
    >>> EX["has-part"]
    IRI('http://example.org/has-part')
    """

    __slots__ = ("base", "_cache")

    def __init__(self, base: str):
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "_cache", {})

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("Namespace is immutable")

    def __getattr__(self, name: str) -> IRI:
        if name.startswith("__"):
            raise AttributeError(name)
        return self.term(name)

    def __getitem__(self, name: str) -> IRI:
        return self.term(name)

    def __contains__(self, iri: IRI) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self.base)

    def __eq__(self, other) -> bool:
        return isinstance(other, Namespace) and other.base == self.base

    def __hash__(self) -> int:
        return hash((Namespace, self.base))

    def __repr__(self) -> str:
        return f"Namespace({self.base!r})"

    def term(self, name: str) -> IRI:
        """Mint (and memoize) the IRI for *name* under this namespace.

        Minting validates the IRI with a regex; the memo makes repeated
        mints of hot vocabulary terms (``rdf:type`` on every triple of a
        generator run) a dict hit instead.
        """
        cached = self._cache.get(name)
        if cached is None:
            cached = self._cache[name] = IRI(self.base + name)
        return cached


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
DCAT = Namespace("http://www.w3.org/ns/dcat#")
DCTERMS = Namespace("http://purl.org/dc/terms/")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")
SCHEMA = Namespace("http://schema.org/")
VOID = Namespace("http://rdfs.org/ns/void#")
# ScholarlyData / Semantic Web Conference ontology namespace used by Figure 2.
SWC = Namespace("https://w3id.org/scholarlydata/ontology/conference-ontology.owl#")

#: Default prefix table used by the Turtle writer and the SPARQL parser.
PREFIXES: Dict[str, Namespace] = {
    "rdf": RDF,
    "rdfs": RDFS,
    "owl": OWL,
    "xsd": XSD,
    "dcat": DCAT,
    "dc": DCTERMS,
    "dcterms": DCTERMS,
    "foaf": FOAF,
    "schema": SCHEMA,
    "void": VOID,
    "swc": SWC,
}


def curie(iri: IRI, prefixes: Dict[str, Namespace] = PREFIXES) -> str:
    """Compact *iri* to ``prefix:local`` if a known namespace matches.

    Falls back to the full ``<iri>`` syntax when no prefix applies.  Longest
    namespace match wins so e.g. ``dcterms`` beats a shorter overlap.
    """
    best: Tuple[int, str, str] = (-1, "", "")
    for prefix, namespace in prefixes.items():
        base = namespace.base
        if iri.value.startswith(base) and len(base) > best[0]:
            local = iri.value[len(base):]
            if local and all(c.isalnum() or c in "_-." for c in local):
                best = (len(base), prefix, local)
    if best[0] >= 0:
        return f"{best[1]}:{best[2]}"
    return iri.n3()


def expand_curie(text: str, prefixes: Dict[str, Namespace] = PREFIXES) -> IRI:
    """Expand ``prefix:local`` to an :class:`IRI` using *prefixes*.

    Raises ``KeyError`` for an unknown prefix and ``ValueError`` for text
    that is not a CURIE at all.
    """
    if ":" not in text:
        raise ValueError(f"not a CURIE: {text!r}")
    prefix, local = text.split(":", 1)
    namespace = prefixes[prefix]
    return namespace.term(local)


def iter_prefixes() -> Iterator[Tuple[str, str]]:
    """Yield ``(prefix, base)`` pairs of the default prefix table."""
    for prefix, namespace in PREFIXES.items():
        yield prefix, namespace.base
