"""Columnar shard snapshots and term-dictionary snapshots.

Shard snapshot layout (all little-endian)::

    magic "RSHD" | u16 version | u32 termdict-epoch | u64 rows
    | 3 x (u64 column-bytes, u32 column-crc32)      # s, p, o columns
    | s column | p column | o column

Each column is the raw bytes of an ``array('q')`` holding one component of
the shard's (s, p, o) rows, sorted ascending -- the same canonical order
:meth:`Shard.triples_ids` yields, so snapshot bytes are a pure function of
shard content.  Columns (not row tuples) keep the hot load path a single
``array.frombytes`` per component and let a reader verify checksums
without materializing any Python tuples.

The term-dictionary snapshot is a record stream (`format.py` framing):
record 0 is a JSON header ``{"epoch", "next_id", "free", "terms"}``,
followed by one record per ~4096 terms carrying ``[[id, refcount,
term], ...]`` batches.  Batching keeps record count (and per-record
checksum overhead) low without building one giant JSON document.

Writers stage to a temp file and ``os.replace`` onto the final name --
snapshot files therefore never exist in a half-written state under their
real names; a crash mid-write leaves only a stray temp file, which the
manifest never references.
"""

from __future__ import annotations

import os
import struct
import tempfile
import zlib
from array import array
from typing import Iterable, List, Optional, Tuple

from ..dictionary import TermDict
from .crash import CrashInjector, CrashPoint, boundary
from .format import FormatError, decode_term, dumps, encode_term, loads, pack_record, scan_records

__all__ = [
    "SnapshotError",
    "read_shard_columns",
    "read_termdict_snapshot",
    "write_shard_snapshot",
    "write_termdict_snapshot",
]

SHARD_MAGIC = b"RSHD"
SHARD_VERSION = 1
_SHARD_HEADER = struct.Struct("<4sHIQ")  # magic, version, epoch, rows
_COLUMN_META = struct.Struct("<QI")  # byte length, crc32
TERM_BATCH = 4096


class SnapshotError(RuntimeError):
    """A snapshot file is missing, corrupt, or from the wrong epoch."""


def _atomic_write(
    path: str,
    chunks: Iterable[bytes],
    injector: Optional[CrashInjector],
    op: str,
) -> None:
    """Write *chunks* to *path* via temp + fsync + ``os.replace``.

    Crash boundaries: ``{op}:before`` (nothing written), ``{op}:partial``
    (temp holds a strict prefix), ``{op}:staged`` (temp complete, not yet
    renamed), ``{op}:after`` (file installed).
    """
    directory = os.path.dirname(path) or "."
    boundary(injector, f"{op}:before")
    fd, tmp_path = tempfile.mkstemp(
        prefix=f".{os.path.basename(path)}.", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            first = True
            for chunk in chunks:
                if first:
                    # model a torn write: crash here leaves a partial temp
                    half = len(chunk) // 2
                    handle.write(chunk[:half])
                    handle.flush()
                    boundary(injector, f"{op}:partial")
                    handle.write(chunk[half:])
                    first = False
                else:
                    handle.write(chunk)
            handle.flush()
            os.fsync(handle.fileno())
        boundary(injector, f"{op}:staged")
        os.replace(tmp_path, path)
    except Exception as exc:
        if not isinstance(exc, CrashPoint) and os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
    boundary(injector, f"{op}:after")


# -- shard snapshots ---------------------------------------------------------


def write_shard_snapshot(
    path: str,
    rows: Iterable[Tuple[int, int, int]],
    epoch: int,
    injector: Optional[CrashInjector] = None,
) -> Tuple[int, int]:
    """Write sorted (s, p, o) ID *rows* as columns; return (rows, checksum).

    The returned checksum (crc32 over the three column byte runs) is what
    the manifest records for the file.
    """
    s_col, p_col, o_col = array("q"), array("q"), array("q")
    for s, p, o in sorted(rows):
        s_col.append(s)
        p_col.append(p)
        o_col.append(o)
    columns = [col.tobytes() for col in (s_col, p_col, o_col)]
    header = _SHARD_HEADER.pack(SHARD_MAGIC, SHARD_VERSION, epoch, len(s_col))
    meta = b"".join(
        _COLUMN_META.pack(len(blob), zlib.crc32(blob)) for blob in columns
    )
    checksum = 0
    for blob in columns:
        checksum = zlib.crc32(blob, checksum)
    _atomic_write(path, [header + meta] + columns, injector, "snapshot-write")
    return len(s_col), checksum


def read_shard_columns(
    path: str,
    expected_epoch: Optional[int] = None,
    expected_checksum: Optional[int] = None,
    use_mmap: bool = True,
) -> Tuple[array, array, array]:
    """Read and checksum-verify a shard snapshot's (s, p, o) columns.

    With ``use_mmap`` (the default) the file is memory-mapped and columns
    are sliced out of the map -- the checksum pass touches each page once
    and ``array.frombytes`` is the only copy.  Falls back to a plain read
    for empty files (mmap rejects length 0) or if mapping fails.
    """
    try:
        with open(path, "rb") as handle:
            if use_mmap:
                import mmap as _mmap

                try:
                    # closed by refcounting once the last column view dies
                    data = memoryview(
                        _mmap.mmap(handle.fileno(), 0, access=_mmap.ACCESS_READ)
                    )
                except (ValueError, OSError):
                    data = handle.read()
            else:
                data = handle.read()
    except OSError as exc:
        raise SnapshotError(f"cannot read shard snapshot {path}: {exc}") from exc
    if len(data) < _SHARD_HEADER.size + 3 * _COLUMN_META.size:
        raise SnapshotError(f"shard snapshot {path} truncated header")
    magic, version, epoch, rows = _SHARD_HEADER.unpack_from(data, 0)
    if magic != SHARD_MAGIC:
        raise SnapshotError(f"shard snapshot {path} bad magic {magic!r}")
    if version != SHARD_VERSION:
        raise SnapshotError(f"shard snapshot {path} version {version} unsupported")
    if expected_epoch is not None and epoch != expected_epoch:
        raise SnapshotError(
            f"shard snapshot {path} is epoch {epoch}, expected {expected_epoch}"
        )
    metas = []
    pos = _SHARD_HEADER.size
    for _ in range(3):
        metas.append(_COLUMN_META.unpack_from(data, pos))
        pos += _COLUMN_META.size
    columns: List[array] = []
    combined = 0
    for length, crc in metas:
        blob = data[pos : pos + length]
        if len(blob) != length:
            raise SnapshotError(f"shard snapshot {path} truncated column")
        if zlib.crc32(blob) != crc:
            raise SnapshotError(f"shard snapshot {path} column checksum mismatch")
        combined = zlib.crc32(blob, combined)
        col = array("q")
        col.frombytes(blob)
        columns.append(col)
        pos += length
    if any(len(col) != rows for col in columns):
        raise SnapshotError(f"shard snapshot {path} row-count mismatch")
    if expected_checksum is not None and combined != expected_checksum:
        raise SnapshotError(
            f"shard snapshot {path} does not match its manifest checksum"
        )
    return columns[0], columns[1], columns[2]


# -- term-dictionary snapshots ----------------------------------------------


def write_termdict_snapshot(
    path: str, term_dict: TermDict, injector: Optional[CrashInjector] = None
) -> Tuple[int, int]:
    """Snapshot *term_dict* to *path*; return (terms, checksum)."""
    header = dumps(
        {
            "epoch": term_dict.epoch,
            "next_id": term_dict._next_id,
            "free": sorted(term_dict._free),
            "terms": len(term_dict),
        }
    )
    chunks = [pack_record(header)]
    batch: List[list] = []
    for term_id, refcount, term in term_dict.snapshot_items():
        batch.append([term_id, refcount, encode_term(term)])
        if len(batch) >= TERM_BATCH:
            chunks.append(pack_record(dumps(batch)))
            batch = []
    if batch:
        chunks.append(pack_record(dumps(batch)))
    checksum = 0
    for chunk in chunks:
        checksum = zlib.crc32(chunk, checksum)
    _atomic_write(path, chunks, injector, "termdict-write")
    return len(term_dict), checksum


def read_termdict_snapshot(
    path: str,
    expected_epoch: Optional[int] = None,
    expected_checksum: Optional[int] = None,
) -> TermDict:
    """Rebuild a :class:`TermDict` from a snapshot file."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise SnapshotError(f"cannot read termdict snapshot {path}: {exc}") from exc
    if expected_checksum is not None and zlib.crc32(data) != expected_checksum:
        raise SnapshotError(
            f"termdict snapshot {path} does not match its manifest checksum"
        )
    payloads, _, reason = scan_records(data)
    if reason is not None or not payloads:
        raise SnapshotError(
            f"termdict snapshot {path} corrupt ({reason or 'empty'})"
        )
    try:
        header = loads(payloads[0])
        items = []
        for payload in payloads[1:]:
            for term_id, refcount, encoded in loads(payload):
                items.append((term_id, refcount, decode_term(encoded)))
    except FormatError as exc:
        raise SnapshotError(f"termdict snapshot {path}: {exc}") from exc
    if len(items) != header.get("terms"):
        raise SnapshotError(
            f"termdict snapshot {path} holds {len(items)} terms, "
            f"header says {header.get('terms')}"
        )
    epoch = header.get("epoch", 0)
    if expected_epoch is not None and epoch != expected_epoch:
        raise SnapshotError(
            f"termdict snapshot {path} is epoch {epoch}, expected {expected_epoch}"
        )
    return TermDict.restore(iter(items), header["next_id"], header["free"], epoch)
