"""Deterministic crash-point injection for the durability layer.

The writer paths (`snapshot.py`, `wal.py`, `manifest.py`, `store.py`) call
:meth:`CrashInjector.boundary` at every durability-relevant instant -- just
before bytes are written, after a *partial* prefix of a record has reached
the file (the torn-write window), and after the bytes are flushed.  A
boundary either returns or raises :class:`CrashPoint`, which models the
process dying at exactly that instant: whatever was flushed before the
boundary is on disk, nothing after it is.

Mirrors the ``serving/faults.py`` philosophy: decisions are stateless
hashes of ``(seed, op, sequence)``, so a crash timeline is a pure value of
the seed -- reproducible across runs and machines, no RNG object threading.
Two modes:

* ``crash_at=K`` -- crash at the K-th boundary reached.  The recovery
  harness does a dry run (``crash_at=None``) to count boundaries, then
  sweeps K over every one of them.
* ``p_crash=p`` with a ``seed`` -- each boundary independently crashes
  with probability *p* via the stateless hash, for randomized soak tests.

``ops`` optionally restricts crashing to boundaries whose label starts
with one of the given prefixes (e.g. ``("manifest-swap",)``).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional, Tuple

__all__ = ["CrashInjector", "CrashPoint"]


class CrashPoint(RuntimeError):
    """An injected crash: the simulated process died at *op* / *sequence*."""

    def __init__(self, op: str, sequence: int):
        super().__init__(f"injected crash at boundary {sequence} ({op})")
        self.op = op
        self.sequence = sequence


class CrashInjector:
    """Raise :class:`CrashPoint` at deterministically-chosen boundaries."""

    __slots__ = ("seed", "p_crash", "crash_at", "ops", "sequence", "trace")

    def __init__(
        self,
        seed: int = 0,
        p_crash: float = 0.0,
        crash_at: Optional[int] = None,
        ops: Optional[Iterable[str]] = None,
    ):
        self.seed = seed
        self.p_crash = p_crash
        self.crash_at = crash_at
        self.ops: Optional[Tuple[str, ...]] = tuple(ops) if ops is not None else None
        self.sequence = 0
        #: every boundary reached, in order: ``[(sequence, op), ...]``
        self.trace: List[Tuple[int, str]] = []

    def draw(self, op: str, sequence: int) -> float:
        """Uniform [0, 1) hash of (seed, op, sequence) -- stateless."""
        digest = hashlib.sha256(
            f"{self.seed}:{op}:{sequence}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def boundary(self, op: str) -> None:
        """Record one durability boundary; raise if this is the crash."""
        sequence = self.sequence
        self.sequence += 1
        self.trace.append((sequence, op))
        if self.ops is not None and not op.startswith(self.ops):
            return
        if self.crash_at is not None:
            if sequence == self.crash_at:
                raise CrashPoint(op, sequence)
            return
        if self.p_crash > 0.0 and self.draw(op, sequence) < self.p_crash:
            raise CrashPoint(op, sequence)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CrashInjector seed={self.seed} crash_at={self.crash_at} "
            f"p_crash={self.p_crash} at={self.sequence}>"
        )


def boundary(injector: Optional[CrashInjector], op: str) -> None:
    """`injector.boundary(op)` tolerating ``injector=None`` (the fast path)."""
    if injector is not None:
        injector.boundary(op)
