"""Durable storage for the dictionary-encoded triple store.

The package gives :class:`~repro.rdf.graph.Graph` and
:class:`~repro.rdf.sharding.ShardedTripleStore` a crash-safe on-disk form:

* per-shard **columnar snapshots** -- the sorted (s, p, o) ID rows of one
  shard as three ``array('q')`` columns behind a checksummed header
  (`snapshot.py`),
* a **term-dictionary snapshot** carrying the full intern table plus its
  free list and epoch, so ID assignment after recovery matches the live
  process (`snapshot.py`),
* an append-only **write-ahead log** of term-level mutations in
  length-prefixed, CRC-checksummed records; a torn tail is detected and
  truncated on replay (`wal.py`, `format.py`),
* a **manifest** binding {termdict epoch, shard snapshot files, WAL offset,
  ``Graph.generation``, content digest} together, swapped atomically with
  write-temp + ``os.replace`` -- the same contract as
  ``docstore/persistence.py`` (`manifest.py`),
* a deterministic **crash-point injector** in the style of
  ``serving/faults.py`` so recovery is provable, not hoped-for
  (`crash.py`).

The commit rule is single-pointer: a store state is durable exactly when
(a) the manifest referencing its snapshot files has been swapped in, plus
(b) whatever fully-flushed prefix of the current WAL segment exists on
disk.  Every other file is garbage until the manifest points at it and
prunable the moment the manifest stops pointing at it.

`store.py` orchestrates save / load / recovery and exposes the lazy
per-shard loader (cold shards do not pay index memory until touched).
"""

from .crash import CrashInjector, CrashPoint
from .format import FormatError, decode_term, encode_term
from .manifest import ManifestError, read_manifest, write_manifest
from .paths import store_files
from .store import (
    DurabilityError,
    Journal,
    LazyShard,
    attach_journal,
    content_digest,
    load_graph,
    replay_wal,
    save_graph,
)
from .wal import WalReplayError, WriteAheadLog, read_wal_records

__all__ = [
    "CrashInjector",
    "CrashPoint",
    "DurabilityError",
    "FormatError",
    "Journal",
    "LazyShard",
    "ManifestError",
    "WalReplayError",
    "WriteAheadLog",
    "attach_journal",
    "content_digest",
    "decode_term",
    "encode_term",
    "load_graph",
    "read_manifest",
    "read_wal_records",
    "replay_wal",
    "save_graph",
    "store_files",
    "write_manifest",
]
