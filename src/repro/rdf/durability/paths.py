"""Centralized file layout for a durable store directory.

Every filename the durability layer reads or writes is minted here (the
ExportBlock_3 ``store/paths.py`` idiom): one module owns the layout, so
pruning, recovery and tests never re-derive name patterns ad hoc.

A store directory looks like::

    <root>/
        manifest.json              # the single commit pointer
        termdict-000003.snap       # TermDict snapshot for epoch 3
        shard-000-000003.snap      # shard 0 columns for epoch 3
        shard-001-000003.snap
        wal-000003.log             # mutations since the epoch-3 snapshot

Epochs are monotonically increasing save generations.  Files from older
epochs may coexist briefly (a crash between manifest swap and prune); they
are garbage by definition -- the manifest is the only commit pointer -- and
:func:`orphan_files` identifies them for cleanup.
"""

from __future__ import annotations

import os
import re
from typing import Dict, List

__all__ = [
    "MANIFEST",
    "manifest_path",
    "orphan_files",
    "shard_file",
    "store_files",
    "termdict_file",
    "wal_file",
]

MANIFEST = "manifest.json"

_STORE_FILE = re.compile(
    r"^(?:termdict-\d{6}\.snap|shard-\d{3}-\d{6}\.snap|wal-\d{6}\.log)$"
)


def manifest_path(root: str) -> str:
    return os.path.join(root, MANIFEST)


def termdict_file(epoch: int) -> str:
    return f"termdict-{epoch:06d}.snap"


def shard_file(index: int, epoch: int) -> str:
    return f"shard-{index:03d}-{epoch:06d}.snap"


def wal_file(epoch: int) -> str:
    return f"wal-{epoch:06d}.log"


def store_files(root: str) -> List[str]:
    """All durability-layer filenames present under *root*, sorted."""
    try:
        names = os.listdir(root)
    except FileNotFoundError:
        return []
    return sorted(name for name in names if _STORE_FILE.match(name))


def referenced_files(manifest: Dict) -> List[str]:
    """The filenames the manifest pins as live."""
    names = [manifest["termdict"]["file"], manifest["wal"]["file"]]
    names.extend(entry["file"] for entry in manifest["shard_files"])
    return names


def orphan_files(root: str, manifest: Dict) -> List[str]:
    """Store files under *root* the manifest does not reference."""
    live = set(referenced_files(manifest))
    return [name for name in store_files(root) if name not in live]
