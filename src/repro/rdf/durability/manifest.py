"""The catalog manifest: the durable store's single commit pointer.

A manifest is a small JSON document binding together everything one
recovery needs::

    {
      "version": 1,
      "identifier": "...",          # graph identifier (or null)
      "sharded": true, "shards": 4,
      "epoch": 3,                   # save generation; names the files
      "generation": 117,            # Graph.generation at snapshot time
      "size": 20412,                # triple count at snapshot time
      "digest": "sha256:...",       # canonical (s,p,o) digest at snapshot
      "termdict": {"file": ..., "terms": N, "next_id": ..., "checksum": ...},
      "shard_files": [{"file": ..., "triples": n, "checksum": ...}, ...],
      "wal": {"file": ..., "offset": 0}
    }

The swap rule (the ``docstore/persistence.py`` contract): write the new
manifest to a temp file in the same directory, flush + fsync, then
``os.replace`` onto ``manifest.json``.  ``os.replace`` is atomic on POSIX,
so a reader observes either the old manifest or the new one -- never a
mix, never a partial file.  Everything else in the directory is garbage
until a manifest points at it, which is what makes crash recovery a pure
function of (manifest, WAL prefix).
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Optional

from .crash import CrashInjector, CrashPoint, boundary
from .paths import manifest_path

__all__ = ["MANIFEST_VERSION", "ManifestError", "read_manifest", "write_manifest"]

MANIFEST_VERSION = 1

_REQUIRED = ("version", "sharded", "epoch", "generation", "size", "digest",
             "termdict", "shard_files", "wal")


class ManifestError(RuntimeError):
    """Missing, unreadable, or structurally invalid manifest."""


def write_manifest(
    root: str, doc: Dict, injector: Optional[CrashInjector] = None
) -> None:
    """Atomically install *doc* as the store's manifest (temp + replace)."""
    payload = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    boundary(injector, "manifest-swap:before")
    fd, tmp_path = tempfile.mkstemp(
        prefix=".manifest.", suffix=".tmp", dir=root, text=False
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        boundary(injector, "manifest-swap:staged")
        os.replace(tmp_path, manifest_path(root))
    except Exception as exc:
        # A real I/O failure cleans up its temp file; an injected crash
        # (the process "died") must leave it behind, exactly as a kill
        # would -- recovery has to tolerate stray temp files.
        if not isinstance(exc, CrashPoint) and os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
    boundary(injector, "manifest-swap:after")


def read_manifest(root: str) -> Dict:
    """Load and structurally validate the manifest under *root*."""
    path = manifest_path(root)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except FileNotFoundError:
        raise ManifestError(f"no manifest at {path}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise ManifestError(f"unreadable manifest at {path}: {exc}") from exc
    if not isinstance(doc, dict):
        raise ManifestError(f"manifest at {path} is not an object")
    missing = [key for key in _REQUIRED if key not in doc]
    if missing:
        raise ManifestError(f"manifest at {path} missing keys: {missing}")
    if doc["version"] != MANIFEST_VERSION:
        raise ManifestError(
            f"manifest version {doc['version']} unsupported "
            f"(expected {MANIFEST_VERSION})"
        )
    return doc
