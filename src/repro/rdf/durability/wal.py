"""The append-only write-ahead log of term-level mutations.

Each record is a `format.py`-framed JSON payload: ``["add", s, p, o]``,
``["remove", s, p, o]`` (terms encoded per :func:`format.encode_term`), or
``["clear"]``.  Logging *terms* rather than IDs makes replay independent
of dictionary ID assignment -- a replayed ``add`` re-interns through the
normal path, so double-replay is naturally idempotent and a WAL can even
be replayed onto a store whose free-list history differs.

Write-ahead discipline: `store.py`'s journal emits the record (and flushes
it) *before* the in-memory mutation applies.  A crash inside the append
therefore loses at most the in-flight record, never a mutation the caller
was told succeeded.

The append path exposes the same crash boundaries as the snapshot writers:
``wal-append:before`` (nothing written), ``wal-append:partial`` (a torn
record -- strict prefix of the frame is on disk), ``wal-append:after``
(record fully flushed).  ``records_appended`` increments only once the
bytes are durable, which the recovery harness uses as its writer-side
oracle of the durable prefix.
"""

from __future__ import annotations

import os
from typing import Any, List, Optional, Tuple

from ..terms import Term
from .crash import CrashInjector, boundary
from .format import FormatError, decode_term, dumps, encode_term, loads, pack_record, scan_records

__all__ = ["WalReplayError", "WriteAheadLog", "read_wal_records"]


class WalReplayError(RuntimeError):
    """A WAL record inside the valid region is corrupt (not a torn tail)."""


class WriteAheadLog:
    """Appender for one WAL segment file."""

    __slots__ = ("path", "injector", "records_appended", "_handle", "offset")

    def __init__(
        self,
        path: str,
        injector: Optional[CrashInjector] = None,
        offset: Optional[int] = None,
    ):
        self.path = path
        self.injector = injector
        self.records_appended = 0
        self._handle = open(path, "ab")
        if offset is not None and self._handle.tell() != offset:
            # recovery truncated a torn tail before reopening
            self._handle.truncate(offset)
            self._handle.seek(offset)
        self.offset = self._handle.tell()

    def append(self, op: str, *terms: Term) -> None:
        """Durably append one mutation record (torn-write boundaries inside)."""
        payload: List[Any] = [op]
        payload.extend(encode_term(term) for term in terms)
        record = pack_record(dumps(payload))
        handle = self._handle
        boundary(self.injector, "wal-append:before")
        half = len(record) // 2
        handle.write(record[:half])
        handle.flush()
        boundary(self.injector, "wal-append:partial")
        handle.write(record[half:])
        handle.flush()
        self.offset += len(record)
        self.records_appended += 1
        boundary(self.injector, "wal-append:after")

    def sync(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WriteAheadLog {self.path} +{self.records_appended}>"


def read_wal_records(
    path: str, offset: int = 0
) -> Tuple[List[List[Any]], int, Optional[str]]:
    """Decode WAL ops from *path* starting at byte *offset*.

    Returns ``(ops, valid_end, reason)``: ``ops`` are decoded payloads like
    ``["add", Term, Term, Term]``; ``valid_end`` is the offset just past the
    last intact record; ``reason`` follows :func:`format.scan_records`
    (``None`` clean, ``torn-*`` crash tail, ``bad-checksum`` corruption).
    A missing file reads as empty -- a store saved and never mutated may
    have an empty segment.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return [], offset, None
    payloads, valid_end, reason = scan_records(data, offset)
    ops: List[List[Any]] = []
    for payload in payloads:
        decoded = loads(payload)
        if not isinstance(decoded, list) or not decoded:
            raise WalReplayError(f"malformed WAL payload in {path}: {decoded!r}")
        op = [decoded[0]]
        try:
            op.extend(decode_term(item) for item in decoded[1:])
        except FormatError as exc:
            raise WalReplayError(f"bad term in WAL record ({path}): {exc}") from exc
        ops.append(op)
    return ops, valid_end, reason
