"""Save / load / recovery orchestration for durable graphs.

The durable state of a store is ``(manifest, WAL prefix)``:

* :func:`save_graph` writes a full snapshot -- term dictionary plus one
  columnar file per shard (a plain :class:`Graph` is one pseudo-shard) --
  under a fresh *epoch*, creates the epoch's empty WAL segment, then
  atomically swaps the manifest and prunes files of older epochs.  Until
  the swap, every new file is invisible garbage and the previous
  (manifest, WAL) pair stays fully intact, which is the whole
  crash-consistency argument: a crash anywhere leaves exactly one valid
  commit pointer on disk.
* :class:`Journal` (via :func:`attach_journal`) hooks the graph's mutation
  paths so every *content-changing* term-level mutation appends a WAL
  record **before** it applies in memory; no-op writes (duplicate adds,
  absent removes) log nothing, mirroring the ``Graph.generation`` rule.
* :func:`load_graph` reads the manifest, restores the dictionary, loads
  shards eagerly or lazily (:class:`LazyShard` defers building a shard's
  indexes until first touch), optionally verifies the snapshot digest,
  then replays the WAL tail -- truncating a torn final record, failing
  loudly on mid-stream corruption.

Replay applies term-level records through the public mutation API, so a
second replay of the same records is a sequence of no-ops: recovery is
idempotent by construction, and recovered ID assignment (free list, next
ID) matches the pre-crash process exactly because the dictionary snapshot
round-trips its allocation state.
"""

from __future__ import annotations

import hashlib
import os
from typing import Callable, Dict, List, Optional, Tuple

from ..graph import Graph
from ..sharding import Shard, ShardedTripleStore
from ..terms import _unchecked_triple
from .crash import CrashInjector, boundary
from .manifest import MANIFEST_VERSION, read_manifest, write_manifest
from .paths import orphan_files, shard_file, termdict_file, wal_file
from .snapshot import (
    read_shard_columns,
    read_termdict_snapshot,
    write_shard_snapshot,
    write_termdict_snapshot,
)
from .wal import WalReplayError, WriteAheadLog, read_wal_records

__all__ = [
    "DurabilityError",
    "Journal",
    "LazyShard",
    "attach_journal",
    "content_digest",
    "load_graph",
    "replay_wal",
    "save_graph",
]


class DurabilityError(RuntimeError):
    """Recovery found durable state that violates its own manifest."""


# -- canonical content digest ------------------------------------------------


def content_digest(graph: Graph) -> str:
    """SHA-256 over the sorted N3 lines of the store's (s, p, o) triples.

    Canonical with respect to everything incidental: dictionary ID
    assignment, shard count, insertion order, and free-list history all
    wash out, so two stores digest equal iff they hold the same triples.
    """
    lines = sorted(
        f"{t.subject.n3()} {t.predicate.n3()} {t.object.n3()}"
        for t in graph.triples()
    )
    digest = hashlib.sha256()
    for line in lines:
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    return "sha256:" + digest.hexdigest()


# -- save --------------------------------------------------------------------


def _shard_rows(graph: Graph) -> List:
    """Per-shard ID-row iterables; a plain Graph is one pseudo-shard."""
    if graph.is_sharded:
        return [shard.triples_ids() for shard in graph.shards]
    return [graph.triples_ids()]


def save_graph(
    graph: Graph, root: str, injector: Optional[CrashInjector] = None, obs=None
) -> Dict:
    """Write a full snapshot of *graph* under *root* and commit it.

    Write order is the durability contract: (1) term-dictionary and shard
    snapshot files under a fresh epoch, (2) the epoch's empty WAL segment,
    (3) the manifest swap (the commit point), (4) prune of older-epoch
    files.  A crash anywhere before (3) leaves the previous commit fully
    intact; a crash after (3) leaves the new one plus harmless orphans.

    *obs* is an optional ``repro.obs`` tracer: the checkpoint records a
    ``durability.checkpoint`` span (epoch, shard count, triples) -- an
    injected crash surfaces as the span's error annotation.
    """
    if obs is not None and obs.enabled:
        with obs.span("durability.checkpoint", root=root):
            manifest = _save_graph(graph, root, injector)
            obs.note(
                epoch=manifest["epoch"],
                shards=len(manifest["shard_files"]),
                triples=manifest["size"],
            )
            return manifest
    return _save_graph(graph, root, injector)


def _save_graph(
    graph: Graph, root: str, injector: Optional[CrashInjector] = None
) -> Dict:
    os.makedirs(root, exist_ok=True)
    try:
        previous = read_manifest(root)
        epoch = previous["epoch"] + 1
    except Exception:
        epoch = 1

    term_dict = graph.dictionary
    term_dict.epoch = epoch
    td_name = termdict_file(epoch)
    terms, td_checksum = write_termdict_snapshot(
        os.path.join(root, td_name), term_dict, injector
    )

    shard_entries = []
    for index, rows in enumerate(_shard_rows(graph)):
        name = shard_file(index, epoch)
        triples, checksum = write_shard_snapshot(
            os.path.join(root, name), rows, epoch, injector
        )
        shard_entries.append({"file": name, "triples": triples, "checksum": checksum})

    wal_name = wal_file(epoch)
    boundary(injector, "wal-create:before")
    with open(os.path.join(root, wal_name), "wb"):
        pass
    boundary(injector, "wal-create:after")

    manifest = {
        "version": MANIFEST_VERSION,
        "identifier": graph.identifier,
        "sharded": bool(graph.is_sharded),
        "shards": graph.num_shards if graph.is_sharded else 1,
        "epoch": epoch,
        "generation": graph.generation,
        "size": len(graph),
        "digest": content_digest(graph),
        "termdict": {
            "file": td_name,
            "terms": terms,
            "next_id": term_dict._next_id,
            "checksum": td_checksum,
        },
        "shard_files": shard_entries,
        "wal": {"file": wal_name, "offset": 0},
    }
    write_manifest(root, manifest, injector)

    for name in orphan_files(root, manifest):
        boundary(injector, "prune:file")
        try:
            os.unlink(os.path.join(root, name))
        except OSError:  # pragma: no cover - prune is best-effort
            pass
    # stray temp files from crashed earlier attempts are garbage too
    for name in os.listdir(root):
        if name.startswith(".") and name.endswith(".tmp"):
            try:
                os.unlink(os.path.join(root, name))
            except OSError:  # pragma: no cover
                pass
    return manifest


# -- the journal (live WAL session) ------------------------------------------


class Journal:
    """The WAL session binding a live graph to its store directory.

    While attached (``graph._wal is self``) every content-changing
    mutation logs a record *before* applying -- see the hooks in
    ``Graph.add/remove/clear/add_many_terms`` and their sharded overrides.
    """

    __slots__ = ("graph", "root", "injector", "wal", "obs")

    def __init__(
        self, graph: Graph, root: str, injector: Optional[CrashInjector] = None,
        obs=None,
    ):
        manifest = read_manifest(root)
        self.graph = graph
        self.root = root
        self.injector = injector
        self.obs = obs
        self.wal = WriteAheadLog(
            os.path.join(root, manifest["wal"]["file"]), injector=injector
        )
        graph._wal = self

    @property
    def records_appended(self) -> int:
        return self.wal.records_appended

    def log_add(self, s, p, o) -> None:
        self.wal.append("add", s, p, o)

    def log_remove(self, s, p, o) -> None:
        self.wal.append("remove", s, p, o)

    def log_clear(self) -> None:
        self.wal.append("clear")

    def checkpoint(self) -> Dict:
        """Fold the WAL into a fresh full snapshot and rotate the segment."""
        manifest = save_graph(
            self.graph, self.root, injector=self.injector, obs=self.obs
        )
        self.wal.close()
        self.wal = WriteAheadLog(
            os.path.join(self.root, manifest["wal"]["file"]),
            injector=self.injector,
        )
        return manifest

    def close(self) -> None:
        if self.graph._wal is self:
            self.graph._wal = None
        self.wal.close()


def attach_journal(
    graph: Graph, root: str, injector: Optional[CrashInjector] = None, obs=None
) -> Journal:
    """Attach a WAL session for *graph* to the store at *root*.

    The store must have been saved (the manifest names the active WAL
    segment).  Typical lifecycle::

        graph.save(root)
        journal = attach_journal(graph, root)
        ... mutations are now logged ahead of applying ...
        journal.checkpoint()   # fold the log into a new snapshot
        journal.close()
    """
    if graph._wal is not None:
        raise DurabilityError("graph already has an attached journal")
    return Journal(graph, root, injector, obs=obs)


# -- lazy shards -------------------------------------------------------------


class LazyShard(Shard):
    """A shard whose indexes build from its snapshot file on first touch.

    The ``spo``/``pos``/``osp`` slots are shadowed by properties that
    hydrate before first access, so every existing read/write path works
    unchanged; ``size`` stays a plain slot (set from the manifest), so
    counting and shard-balance accounting never force a load.

    Snapshot columns are already the ``(s, p, o)``-sorted run the batch
    scan pipeline consumes, so :meth:`columns` on a cold shard reads them
    straight off disk into the shard's run cache **without** building the
    dict indexes -- snapshot load -> columnar scan copies nothing beyond
    the file read itself.  Hydration (first index touch) then fills the
    indexes from the cached columns instead of re-reading the file.
    """

    __slots__ = ("_loader",)

    def __init__(self, loader: Callable[[], Tuple], size: int):
        self._loader = None
        super().__init__()
        self.size = size
        self._loader = loader

    @property
    def hydrated(self) -> bool:
        return self._loader is None

    def _load_columns(self) -> Tuple:
        """The snapshot's sorted columns, cached on the shard."""
        cols = self._columns
        if cols is None:
            cols = self._loader()
            if len(cols[0]) != self.size:
                raise DurabilityError(
                    f"shard snapshot holds {len(cols[0])} rows, "
                    f"manifest says {self.size}"
                )
            self._columns = cols
        return cols

    def columns(self) -> Tuple:
        if self._loader is not None:
            return self._load_columns()
        return super().columns()

    def _hydrate(self) -> None:
        columns = self._load_columns()
        self._loader = None
        _fill_indexes(
            Shard.spo.__get__(self),
            Shard.pos.__get__(self),
            Shard.osp.__get__(self),
            columns,
        )

    # slot shadows: hydrate-on-read, plain writes (Shard.__init__ and
    # hydration itself store through the base descriptors)

    @property
    def spo(self):
        if self._loader is not None:
            self._hydrate()
        return Shard.spo.__get__(self)

    @spo.setter
    def spo(self, value):
        Shard.spo.__set__(self, value)

    @property
    def pos(self):
        if self._loader is not None:
            self._hydrate()
        return Shard.pos.__get__(self)

    @pos.setter
    def pos(self, value):
        Shard.pos.__set__(self, value)

    @property
    def osp(self):
        if self._loader is not None:
            self._hydrate()
        return Shard.osp.__get__(self)

    @osp.setter
    def osp(self, value):
        Shard.osp.__set__(self, value)

    def __repr__(self) -> str:
        state = "hydrated" if self.hydrated else "cold"
        return f"<LazyShard {self.size} triples, {state}>"


# -- load / recovery ---------------------------------------------------------


def _fill_indexes(spo, pos, osp, columns) -> None:
    # Snapshot rows are sorted by (s, p, o), so the SPO index fills in
    # runs: reuse the (s) and (s, p) containers across consecutive rows
    # instead of paying two dict probes per row.  POS/OSP rows arrive in
    # scattered order and keep the setdefault probes.
    s_col, p_col, o_col = columns
    prev_s = prev_p = None
    by_p = objects = None
    pos_setdefault = pos.setdefault
    osp_setdefault = osp.setdefault
    for s, p, o in zip(s_col, p_col, o_col):
        if s != prev_s:
            by_p = spo[s] = {}
            prev_s, prev_p = s, None
        if p != prev_p:
            objects = by_p[p] = set()
            prev_p = p
        objects.add(o)
        pos_setdefault(p, {}).setdefault(o, set()).add(s)
        osp_setdefault(o, {}).setdefault(s, set()).add(p)


def _apply_wal_ops(graph: Graph, ops: List[List]) -> int:
    """Apply decoded WAL ops through the public mutation API; count changes."""
    applied = 0
    for op in ops:
        kind = op[0]
        if kind == "add":
            applied += bool(graph.add(_unchecked_triple(op[1], op[2], op[3])))
        elif kind == "remove":
            applied += bool(graph.remove(_unchecked_triple(op[1], op[2], op[3])))
        elif kind == "clear":
            graph.clear()
            applied += 1
        else:
            raise WalReplayError(f"unknown WAL op {kind!r}")
    return applied


def replay_wal(graph: Graph, root: str, manifest: Optional[Dict] = None) -> Tuple[int, Optional[str]]:
    """Replay the store's WAL tail onto *graph*; returns (changes, reason).

    Safe to call repeatedly: records are term-level and replay through the
    normal mutation paths, so re-applying an already-applied record is a
    no-op (this is what the double-replay tests pin).  ``reason`` reports
    a detected torn tail (``torn-*``) or ``None``; mid-stream corruption
    raises :class:`WalReplayError`.
    """
    if manifest is None:
        manifest = read_manifest(root)
    path = os.path.join(root, manifest["wal"]["file"])
    ops, valid_end, reason = read_wal_records(path, manifest["wal"]["offset"])
    if reason == "bad-checksum":
        raise WalReplayError(
            f"WAL record checksum mismatch in {path} at offset {valid_end}"
        )
    applied = _apply_wal_ops(graph, ops)
    return applied, reason


def load_graph(
    root: str,
    lazy: Optional[bool] = None,
    verify: Optional[bool] = None,
    clock=None,
    obs=None,
) -> Graph:
    """Recover a graph from the durable store at *root*.

    * ``lazy`` (default: sharded stores yes, plain graphs no) loads shard
      indexes on first touch instead of up front.
    * ``verify`` (default: the opposite of ``lazy``) recomputes the
      canonical content digest of the *snapshot* state and compares it to
      the manifest's recorded digest before replaying the WAL tail --
      forcing full hydration, so lazy loads default it off.
    * A torn WAL tail is truncated on disk so a later
      :func:`attach_journal` appends from the last durable record.
    * ``obs`` is an optional ``repro.obs`` tracer: recovery records a
      ``durability.recover`` span with a nested ``durability.wal_replay``
      event (records applied, torn-tail reason).
    """
    if obs is not None and obs.enabled:
        with obs.span("durability.recover", root=root):
            return _load_graph(root, lazy, verify, clock, obs)
    return _load_graph(root, lazy, verify, clock, None)


def _load_graph(root, lazy, verify, clock, obs) -> Graph:
    manifest = read_manifest(root)
    epoch = manifest["epoch"]
    if lazy is None:
        lazy = bool(manifest["sharded"])
    if verify is None:
        verify = not lazy

    td = manifest["termdict"]
    term_dict = read_termdict_snapshot(
        os.path.join(root, td["file"]),
        expected_epoch=epoch,
        expected_checksum=td["checksum"],
    )
    if len(term_dict) != td["terms"]:
        raise DurabilityError(
            f"termdict holds {len(term_dict)} terms, manifest says {td['terms']}"
        )

    if manifest["sharded"]:
        graph = ShardedTripleStore(
            identifier=manifest["identifier"],
            shards=manifest["shards"],
            clock=clock,
        )
        graph._dict = term_dict
        shards = []
        for entry in manifest["shard_files"]:
            path = os.path.join(root, entry["file"])
            if lazy:
                shard = LazyShard(
                    _shard_loader(path, epoch, entry["checksum"]), entry["triples"]
                )
            else:
                # eager loads get a plain Shard: no property indirection on
                # the hot index paths afterwards
                shard = Shard()
                columns = read_shard_columns(
                    path, expected_epoch=epoch, expected_checksum=entry["checksum"]
                )
                _fill_indexes(shard.spo, shard.pos, shard.osp, columns)
                shard.size = entry["triples"]
                # the snapshot columns ARE the sorted run: seed the shard's
                # columnar cache so the first batch scan copies nothing
                shard._columns = columns
            shards.append(shard)
        graph._shards = tuple(shards)
    else:
        graph = Graph(identifier=manifest["identifier"])
        graph._dict = term_dict
        entry = manifest["shard_files"][0]
        _fill_indexes(
            graph._spo,
            graph._pos,
            graph._osp,
            read_shard_columns(
                os.path.join(root, entry["file"]),
                expected_epoch=epoch,
                expected_checksum=entry["checksum"],
            ),
        )
    graph._size = manifest["size"]
    graph._generation = manifest["generation"]

    if verify:
        digest = content_digest(graph)
        if digest != manifest["digest"]:
            raise DurabilityError(
                f"snapshot digest {digest} does not match manifest "
                f"digest {manifest['digest']} (store {root})"
            )

    applied, reason = replay_wal(graph, root, manifest)
    if reason is not None:
        # torn tail: drop the partial record so future appends are clean
        _truncate_torn_tail(root, manifest)
    if obs is not None:
        obs.event("durability.wal_replay", applied=applied, reason=reason)
        obs.note(
            epoch=epoch,
            shards=len(manifest["shard_files"]),
            triples=manifest["size"],
            lazy=bool(lazy),
            verified=bool(verify),
        )
    return graph


def _shard_loader(path: str, epoch: int, checksum: int) -> Callable[[], Tuple]:
    def load():
        return read_shard_columns(
            path, expected_epoch=epoch, expected_checksum=checksum
        )

    return load


def _truncate_torn_tail(root: str, manifest: Dict) -> None:
    path = os.path.join(root, manifest["wal"]["file"])
    try:
        _, valid_end, reason = read_wal_records(path, manifest["wal"]["offset"])
        if reason is not None:
            with open(path, "r+b") as handle:
                handle.truncate(valid_end)
    except OSError:  # pragma: no cover - truncation is best-effort
        pass
