"""On-disk record framing and term codecs for the durability layer.

Everything the WAL and the term-dictionary snapshot write goes through one
record shape::

    u32 payload-length | u32 crc32(payload) | payload bytes

Length-prefixed + checksummed records give the reader exactly the two
failure signals crash recovery needs: a record whose prefix ran off the end
of the file is a **torn tail** (the process died mid-append -- truncate and
carry on), while a record whose checksum mismatches *inside* the valid
region is **corruption** (refuse to load).  The distinction matters: a torn
tail is an expected artifact of a crash, silent corruption is not.

Terms serialize as small JSON arrays -- ``["I", value]`` for IRIs,
``["B", label]`` for blank nodes, ``["L", lexical, language, datatype]``
for literals -- so payloads stay self-describing and diffable with any
JSON tool.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, List, Optional, Tuple

from ..terms import BNode, IRI, Literal, Term

__all__ = [
    "FormatError",
    "HEADER",
    "decode_term",
    "encode_term",
    "pack_record",
    "scan_records",
]

#: record header: little-endian (payload length, crc32 of payload)
HEADER = struct.Struct("<II")


class FormatError(ValueError):
    """A snapshot/WAL byte stream violates the record format."""


# -- record framing ----------------------------------------------------------


def pack_record(payload: bytes) -> bytes:
    """Frame *payload* as one length-prefixed, checksummed record."""
    return HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def scan_records(
    data: bytes, offset: int = 0
) -> Tuple[List[bytes], int, Optional[str]]:
    """Walk records in *data* starting at *offset*.

    Returns ``(payloads, valid_end, reason)`` where ``valid_end`` is the
    byte offset just past the last intact record and ``reason`` is ``None``
    for a clean stream, ``"torn-header"`` / ``"torn-payload"`` when the
    final record is incomplete (the crash-tail case -- callers truncate to
    ``valid_end``), or ``"bad-checksum"`` when a fully-present record fails
    its CRC (corruption -- callers must refuse the stream).
    """
    payloads: List[bytes] = []
    end = len(data)
    pos = offset
    while pos < end:
        if pos + HEADER.size > end:
            return payloads, pos, "torn-header"
        length, crc = HEADER.unpack_from(data, pos)
        body_start = pos + HEADER.size
        if body_start + length > end:
            return payloads, pos, "torn-payload"
        payload = bytes(data[body_start : body_start + length])
        if zlib.crc32(payload) != crc:
            return payloads, pos, "bad-checksum"
        payloads.append(payload)
        pos = body_start + length
    return payloads, pos, None


# -- term codecs -------------------------------------------------------------


def encode_term(term: Term) -> List[Any]:
    if isinstance(term, IRI):
        return ["I", term.value]
    if isinstance(term, BNode):
        return ["B", term.label]
    if isinstance(term, Literal):
        return ["L", term.lexical, term.language, term.datatype]
    raise FormatError(f"cannot serialize term {term!r}")


def decode_term(obj: Any) -> Term:
    # _restore skips constructor validation: every term in a snapshot/WAL
    # was validated when it was first interned, and re-running the IRI /
    # language-tag regexes dominates recovery time on large term tables
    try:
        kind = obj[0]
        if kind == "I":
            return IRI._restore(obj[1])
        if kind == "B":
            return BNode._restore(obj[1])
        if kind == "L":
            return Literal._restore(obj[1], obj[2], obj[3])
    except (TypeError, IndexError) as exc:
        raise FormatError(f"malformed term payload {obj!r}") from exc
    raise FormatError(f"unknown term tag in {obj!r}")


def dumps(obj: Any) -> bytes:
    """Compact deterministic JSON bytes (the payload codec)."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8")


def loads(payload: bytes) -> Any:
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FormatError(f"undecodable record payload: {exc}") from exc
