"""Subject-hash-partitioned storage: N shards under one :class:`Graph` facade.

A :class:`ShardedTripleStore` is a :class:`~repro.rdf.graph.Graph` whose
triples are additionally partitioned into ``N`` shards by **subject ID
modulo N** over the single shared :class:`~repro.rdf.dictionary.TermDict`.
Each shard owns its own ID-space SPO/POS/OSP permutation indexes holding
exactly the triples whose subject hashes to it, which is the classic
subject-partitioning rule: a subject's whole forward star lives in one
shard, so subject-bound lookups never fan out while predicate/object
scans split ``1/N`` per shard.

The facade keeps the inherited *global* indexes fully populated too --
every write lands in both -- so the entire existing read surface
(term-level API, point lookups, property paths, per-row index joins,
community detection) works unchanged on a sharded graph.  What the
shards buy is the **partition-parallel scan path** in
:mod:`repro.sparql.parallel_exec`: pattern scans that span subjects (and
the first hash-join build of a BGP) run shard-by-shard through the
deterministic worker pool of :mod:`repro.core.parallel`, charging only
the *makespan* of the per-shard work to simulated time instead of the
sequential sum.

**Merge determinism rule.**  Each shard task returns its matches as a
run sorted by the ``(s, p, o)`` ID triple; the merged stream is the
ordered merge of those runs, i.e. ascending ``(s, p, o)`` order overall.
Subjects partition disjointly, so this canonical order is *independent
of the shard count*: ``Graph(shards=1)`` and ``Graph(shards=8)`` feed
the SPARQL pipelines byte-identical row streams, which is what pins
query results (including row order) across shard counts.  A plain
``Graph()`` scans in index-dict order instead, so sharded and unsharded
stores agree on result *multisets* but not necessarily on the order of
unordered queries.

The pool timebase is a private :class:`SimulationClock` per store --
shard makespans accumulate in :attr:`ShardedTripleStore.shard_stats`
(and in the engine's ``exec_stats``), and the simulated *endpoint*
latency model reads the parallel/sequential ratio from there rather
than having scans advance the shared network clock directly.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

from .graph import Graph, IdIndex
from .terms import IRI, Term, Triple

__all__ = ["ShardedTripleStore", "Shard"]


class Shard:
    """One partition: its own SPO/POS/OSP indexes over shared term IDs."""

    __slots__ = ("spo", "pos", "osp", "size")

    def __init__(self):
        self.spo: IdIndex = {}
        self.pos: IdIndex = {}
        self.osp: IdIndex = {}
        self.size = 0

    def insert(self, s: int, p: int, o: int) -> None:
        """Insert an ID triple the owning store already deduplicated."""
        self.spo.setdefault(s, {}).setdefault(p, set()).add(o)
        self.pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self.osp.setdefault(o, {}).setdefault(s, set()).add(p)
        self.size += 1

    def discard(self, s: int, p: int, o: int) -> None:
        """Remove an ID triple the owning store verified was present."""
        by_predicate = self.spo[s]
        by_predicate[p].discard(o)
        if not by_predicate[p]:
            del by_predicate[p]
            if not by_predicate:
                del self.spo[s]
        by_object = self.pos[p]
        by_object[o].discard(s)
        if not by_object[o]:
            del by_object[o]
            if not by_object:
                del self.pos[p]
        by_subject = self.osp[o]
        by_subject[s].discard(p)
        if not by_subject[s]:
            del by_subject[s]
            if not by_subject:
                del self.osp[o]
        self.size -= 1

    def triples_ids(
        self,
        s: Optional[int] = None,
        p: Optional[int] = None,
        o: Optional[int] = None,
    ) -> Iterator[Tuple[int, int, int]]:
        """This shard's ID triples matching the (wildcard) pattern.

        Same index-selection logic as :meth:`Graph.triples_ids`, over the
        shard-local indexes only.  The partition-parallel scan path sorts
        each shard's output into a run before merging, so iteration order
        here is irrelevant to query semantics.
        """
        if s is not None:
            by_predicate = self.spo.get(s)
            if not by_predicate:
                return
            if p is not None:
                objects = by_predicate.get(p)
                if not objects:
                    return
                if o is not None:
                    if o in objects:
                        yield (s, p, o)
                    return
                for obj in objects:
                    yield (s, p, obj)
                return
            for pred, objects in by_predicate.items():
                if o is not None:
                    if o in objects:
                        yield (s, pred, o)
                    continue
                for obj in objects:
                    yield (s, pred, obj)
            return

        if p is not None:
            by_object = self.pos.get(p)
            if not by_object:
                return
            if o is not None:
                for subj in by_object.get(o, ()):
                    yield (subj, p, o)
                return
            for obj, subjects in by_object.items():
                for subj in subjects:
                    yield (subj, p, obj)
            return

        if o is not None:
            by_subject = self.osp.get(o)
            if not by_subject:
                return
            for subj, predicates in by_subject.items():
                for pred in predicates:
                    yield (subj, pred, o)
            return

        for subj, by_predicate in self.spo.items():
            for pred, objects in by_predicate.items():
                for obj in objects:
                    yield (subj, pred, obj)

    def copy(self) -> "Shard":
        out = Shard()
        out.spo = {s: {p: set(o) for p, o in by_p.items()} for s, by_p in self.spo.items()}
        out.pos = {p: {o: set(s) for o, s in by_o.items()} for p, by_o in self.pos.items()}
        out.osp = {o: {s: set(p) for s, p in by_s.items()} for o, by_s in self.osp.items()}
        out.size = self.size
        return out

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"<Shard {self.size} triples, {len(self.spo)} subjects>"


class ShardedTripleStore(Graph):
    """A :class:`Graph` partitioned into subject-hash shards.

    Constructed directly or through the facade ``Graph(shards=N)``.  The
    full :class:`Graph` API behaves identically (the global indexes stay
    authoritative); the shards feed the partition-parallel SPARQL scan
    path and the endpoint latency model.
    """

    #: duck-typing flag the SPARQL layer dispatches on (no import cycle)
    is_sharded = True

    def __init__(
        self,
        identifier: Optional[str] = None,
        shards: int = 4,
        clock=None,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        super().__init__(identifier)
        self._shards = tuple(Shard() for _ in range(shards))
        if clock is None:
            # Private pool timebase (lazy import: repro.endpoint imports the
            # SPARQL evaluator, which reads graphs -- keep rdf leaf-free).
            from ..endpoint.clock import SimulationClock

            clock = SimulationClock()
        #: the deterministic pool's timebase for shard-local work; private
        #: by default so scans never advance the shared network clock
        self.clock = clock
        #: cumulative partition-parallel accounting: ``batches`` pool
        #: dispatches, ``parallel_ms`` the sum of batch makespans,
        #: ``sequential_ms`` what a single worker would have paid,
        #: ``rows`` total rows produced by shard tasks
        self.shard_stats = {
            "batches": 0,
            "parallel_ms": 0.0,
            "sequential_ms": 0.0,
            "rows": 0,
        }

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_graph(
        cls, graph: Graph, shards: int, clock=None, identifier: Optional[str] = None
    ) -> "ShardedTripleStore":
        """A sharded copy of *graph* (re-encoded, so shard assignment is a
        pure function of the source's triple iteration order -- identical
        for every shard count)."""
        out = cls(identifier=identifier or graph.identifier, shards=shards, clock=clock)
        out.add_many_terms(
            (triple.subject, triple.predicate, triple.object)
            for triple in graph.triples()
        )
        return out

    # -- shard topology -------------------------------------------------------

    @property
    def shards(self) -> Tuple[Shard, ...]:
        return self._shards

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def shard_index(self, subject_id: int) -> int:
        """The shard owning *subject_id* (subject-hash partition rule)."""
        return subject_id % len(self._shards)

    def shard_of(self, subject_id: int) -> Shard:
        return self._shards[subject_id % len(self._shards)]

    def shard_sizes(self) -> Tuple[int, ...]:
        return tuple(shard.size for shard in self._shards)

    def parallel_factor(self) -> float:
        """Max shard share of the triples: the scan-makespan bound.

        ``1/N`` for perfectly balanced shards, ``1.0`` for one shard (or
        an empty store); the endpoint latency model uses this as the
        static execution-cost scaling when a query ran no shard batch.
        """
        if not self._size:
            return 1.0
        return max(shard.size for shard in self._shards) / float(self._size)

    # -- mutation (global indexes via the base class, plus shard routing) -----

    def add(self, triple: Triple) -> bool:
        added = super().add(triple)
        if added:
            d = self._dict
            s = d.lookup(triple.subject)
            p = d.lookup(triple.predicate)
            o = d.lookup(triple.object)
            self._shards[s % len(self._shards)].insert(s, p, o)
        return added

    def add_many_terms(self, spo_terms: Iterable[Tuple[Term, IRI, Term]]) -> int:
        """Bulk load with shard routing fused into the tight loop."""
        self._generation += 1
        d = self._dict
        encode = d.encode
        refcount = d._refcount
        spo, pos, osp = self._spo, self._pos, self._osp
        shards = self._shards
        n_shards = len(shards)
        added = 0
        for s_term, p_term, o_term in spo_terms:
            s = encode(s_term)
            p = encode(p_term)
            o = encode(o_term)
            by_predicate = spo.get(s)
            if by_predicate is None:
                by_predicate = spo[s] = {}
            objects = by_predicate.get(p)
            if objects is None:
                objects = by_predicate[p] = set()
            if o in objects:
                continue
            objects.add(o)
            by_object = pos.get(p)
            if by_object is None:
                by_object = pos[p] = {}
            subjects = by_object.get(o)
            if subjects is None:
                subjects = by_object[o] = set()
            subjects.add(s)
            by_subject = osp.get(o)
            if by_subject is None:
                by_subject = osp[o] = {}
            predicates = by_subject.get(s)
            if predicates is None:
                predicates = by_subject[s] = set()
            predicates.add(p)
            refcount[s] += 1
            refcount[p] += 1
            refcount[o] += 1
            shards[s % n_shards].insert(s, p, o)
            added += 1
        self._size += added
        return added

    def remove(self, triple: Triple) -> bool:
        # Capture the IDs before the base removal decrefs (and possibly
        # frees) them.
        d = self._dict
        s = d.lookup(triple.subject)
        p = d.lookup(triple.predicate)
        o = d.lookup(triple.object)
        removed = super().remove(triple)
        if removed:
            self._shards[s % len(self._shards)].discard(s, p, o)
        return removed

    def clear(self) -> None:
        super().clear()
        self._shards = tuple(Shard() for _ in range(len(self._shards)))

    def copy(self) -> "ShardedTripleStore":
        out = ShardedTripleStore(
            identifier=self.identifier, shards=len(self._shards)
        )
        out._dict = self._dict.copy()
        out._spo = {s: {p: set(o) for p, o in by_p.items()} for s, by_p in self._spo.items()}
        out._pos = {p: {o: set(s) for o, s in by_o.items()} for p, by_o in self._pos.items()}
        out._osp = {o: {s: set(p) for s, p in by_s.items()} for o, by_s in self._osp.items()}
        out._size = self._size
        out._shards = tuple(shard.copy() for shard in self._shards)
        return out

    def __repr__(self) -> str:
        name = self.identifier or "anonymous"
        return (
            f"<ShardedTripleStore {name!r} with {self._size} triples "
            f"over {len(self._shards)} shards>"
        )
