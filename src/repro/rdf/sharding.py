"""Subject-hash-partitioned storage: N shards under one :class:`Graph` facade.

A :class:`ShardedTripleStore` is a :class:`~repro.rdf.graph.Graph` whose
triples are partitioned into ``N`` shards by **subject ID modulo N** over
the single shared :class:`~repro.rdf.dictionary.TermDict`.  Each shard
owns its own ID-space SPO/POS/OSP permutation indexes holding exactly the
triples whose subject hashes to it, which is the classic
subject-partitioning rule: a subject's whole forward star lives in one
shard, so subject-bound lookups never fan out while predicate/object
scans split ``1/N`` per shard.

The shards are the **only** storage: the inherited global indexes stay
empty (a write lands in exactly one shard), which halves insert cost and
index memory against the PR 4 double-write layout.  The entire read
surface is *routed* instead:

* subject-bound requests (``triples_ids(s, ...)``, point lookups,
  ``__contains__``, ``objects(subject, predicate)``, ``value``, the
  evaluator's per-row index-nested-loop probes) go straight to the owning
  shard -- same O(1) dict walks as before, just one hop deeper;
* unbound-subject scans fan out across shards and come back as the
  ordered merge of per-shard runs sorted by the ``(s, p, o)`` ID triple
  -- the same sorted-run merge the partition-parallel operators use, so
  the stream is **byte-identical at any shard count**;
* whole-index views (``spo_ids``/``pos_ids``/``osp_ids``) materialize a
  merged read-only snapshot on demand; they exist for tests and
  debugging, the hot paths never call them on a sharded graph.

What the shards buy beyond the storage saving is the
**partition-parallel scan path** in :mod:`repro.sparql.parallel_exec`:
pattern scans that span subjects (and the first hash-join build of a
BGP) run shard-by-shard through the deterministic worker pool of
:mod:`repro.core.parallel`, charging only the *makespan* of the
per-shard work to simulated time instead of the sequential sum.

**Merge determinism rule.**  Each shard task returns its matches as a
run sorted by the ``(s, p, o)`` ID triple; the merged stream is the
ordered merge of those runs, i.e. ascending ``(s, p, o)`` order overall.
Subjects partition disjointly, so this canonical order is *independent
of the shard count*: ``Graph(shards=1)`` and ``Graph(shards=8)`` feed
the SPARQL pipelines byte-identical row streams, which is what pins
query results (including row order) across shard counts.  Subject-bound
reads inherit the same invariance for free: all writes for one subject
land in its one shard in global write order, so the shard-local dict
and set iteration orders are a pure function of the write sequence,
never of ``N``.  A plain ``Graph()`` scans in index-dict order instead,
so sharded and unsharded stores agree on result *multisets* but not
necessarily on the order of unordered queries.

The pool timebase is a private :class:`SimulationClock` per store --
shard makespans accumulate in :attr:`ShardedTripleStore.shard_stats`
(and in the engine's ``exec_stats``), and the simulated *endpoint*
latency model reads the parallel/sequential ratio from there rather
than having scans advance the shared network clock directly.
"""

from __future__ import annotations

import heapq
from array import array
from typing import Iterable, Iterator, Optional, Set, Tuple

from .graph import Graph, IdIndex
from .namespaces import RDF, RDFS
from .terms import IRI, Term, Triple

__all__ = ["ShardedTripleStore", "Shard"]


class Shard:
    """One partition: its own SPO/POS/OSP indexes over shared term IDs."""

    __slots__ = ("spo", "pos", "osp", "size", "_columns")

    #: overridden by :class:`repro.rdf.durability.LazyShard`, whose indexes
    #: build from a snapshot file on first touch; memory accounting checks
    #: this to avoid forcing cold shards resident
    hydrated = True

    def __init__(self):
        self.spo: IdIndex = {}
        self.pos: IdIndex = {}
        self.osp: IdIndex = {}
        self.size = 0
        #: the shard's full sorted run as three ``array('q')`` columns
        #: ((s, p, o)-sorted, same layout the durability snapshots use).
        #: Built on demand by :meth:`columns`, dropped on any mutation;
        #: snapshot loads seed it directly so load -> scan copies nothing.
        self._columns: Optional[Tuple] = None

    def columns(self) -> Tuple:
        """The shard's (s, p, o)-sorted run as ``(s_col, p_col, o_col)``.

        The columnar unit of execution for batch scans: identical content
        to ``sorted(self.triples_ids())``, held as three parallel
        ``array('q')`` columns.  Cached until the shard mutates; treat the
        arrays as immutable (every invalidation replaces, never edits).
        """
        cols = self._columns
        if cols is None:
            rows = sorted(self.triples_ids())
            if rows:
                s_col, p_col, o_col = zip(*rows)
            else:
                s_col = p_col = o_col = ()
            cols = self._columns = (
                array("q", s_col), array("q", p_col), array("q", o_col)
            )
        return cols

    def insert(self, s: int, p: int, o: int) -> None:
        """Insert an ID triple the owning store already deduplicated."""
        self.spo.setdefault(s, {}).setdefault(p, set()).add(o)
        self.pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self.osp.setdefault(o, {}).setdefault(s, set()).add(p)
        self.size += 1
        self._columns = None

    def discard(self, s: int, p: int, o: int) -> None:
        """Remove an ID triple the owning store verified was present."""
        self._columns = None
        by_predicate = self.spo[s]
        by_predicate[p].discard(o)
        if not by_predicate[p]:
            del by_predicate[p]
            if not by_predicate:
                del self.spo[s]
        by_object = self.pos[p]
        by_object[o].discard(s)
        if not by_object[o]:
            del by_object[o]
            if not by_object:
                del self.pos[p]
        by_subject = self.osp[o]
        by_subject[s].discard(p)
        if not by_subject[s]:
            del by_subject[s]
            if not by_subject:
                del self.osp[o]
        self.size -= 1

    def triples_ids(
        self,
        s: Optional[int] = None,
        p: Optional[int] = None,
        o: Optional[int] = None,
    ) -> Iterator[Tuple[int, int, int]]:
        """This shard's ID triples matching the (wildcard) pattern.

        Same index-selection logic as :meth:`Graph.triples_ids`, over the
        shard-local indexes only.  Shard-spanning consumers sort each
        shard's output into a run before merging, so iteration order here
        is only observable for subject-bound patterns -- where it is a
        pure function of the write sequence (see the module's merge
        determinism rule).
        """
        if s is not None:
            by_predicate = self.spo.get(s)
            if not by_predicate:
                return
            if p is not None:
                objects = by_predicate.get(p)
                if not objects:
                    return
                if o is not None:
                    if o in objects:
                        yield (s, p, o)
                    return
                for obj in objects:
                    yield (s, p, obj)
                return
            for pred, objects in by_predicate.items():
                if o is not None:
                    if o in objects:
                        yield (s, pred, o)
                    continue
                for obj in objects:
                    yield (s, pred, obj)
            return

        if p is not None:
            by_object = self.pos.get(p)
            if not by_object:
                return
            if o is not None:
                for subj in by_object.get(o, ()):
                    yield (subj, p, o)
                return
            for obj, subjects in by_object.items():
                for subj in subjects:
                    yield (subj, p, obj)
            return

        if o is not None:
            by_subject = self.osp.get(o)
            if not by_subject:
                return
            for subj, predicates in by_subject.items():
                for pred in predicates:
                    yield (subj, pred, o)
            return

        for subj, by_predicate in self.spo.items():
            for pred, objects in by_predicate.items():
                for obj in objects:
                    yield (subj, pred, obj)

    def copy(self) -> "Shard":
        out = Shard()
        out.spo = {s: {p: set(o) for p, o in by_p.items()} for s, by_p in self.spo.items()}
        out.pos = {p: {o: set(s) for o, s in by_o.items()} for p, by_o in self.pos.items()}
        out.osp = {o: {s: set(p) for s, p in by_s.items()} for o, by_s in self.osp.items()}
        out.size = self.size
        # the cached run is immutable-by-contract, so sharing it is safe:
        # either shard's next mutation replaces its own reference
        out._columns = self._columns
        return out

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"<Shard {self.size} triples, {len(self.spo)} subjects>"


class ShardedTripleStore(Graph):
    """A :class:`Graph` partitioned into subject-hash shards.

    Constructed directly or through the facade ``Graph(shards=N)``.  The
    full :class:`Graph` API behaves identically; the shards are the only
    storage (single-copy layout) and every accessor routes: subject-bound
    reads hit the owning shard, unbound scans merge sorted per-shard runs.
    """

    #: duck-typing flag the SPARQL layer dispatches on (no import cycle)
    is_sharded = True

    def __init__(
        self,
        identifier: Optional[str] = None,
        shards: int = 4,
        clock=None,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        super().__init__(identifier)
        self._shards = tuple(Shard() for _ in range(shards))
        #: whether the pool timebase below is store-private (constructed
        #: here) or an external clock the caller owns; ``copy()`` keys its
        #: carry-over behaviour on this.
        self._private_clock = clock is None
        if clock is None:
            # Private pool timebase (lazy import: repro.endpoint imports the
            # SPARQL evaluator, which reads graphs -- keep rdf leaf-free).
            from ..endpoint.clock import SimulationClock

            clock = SimulationClock()
        #: the deterministic pool's timebase for shard-local work; private
        #: by default so scans never advance the shared network clock
        self.clock = clock
        #: cumulative partition-parallel accounting: ``batches`` pool
        #: dispatches, ``parallel_ms`` the sum of batch makespans,
        #: ``sequential_ms`` what a single worker would have paid,
        #: ``rows`` total rows produced by shard tasks
        self.shard_stats = {
            "batches": 0,
            "parallel_ms": 0.0,
            "sequential_ms": 0.0,
            "rows": 0,
        }

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_graph(
        cls, graph: Graph, shards: int, clock=None, identifier: Optional[str] = None
    ) -> "ShardedTripleStore":
        """A sharded copy of *graph* (re-encoded, so shard assignment is a
        pure function of the source's triple iteration order -- identical
        for every shard count)."""
        out = cls(identifier=identifier or graph.identifier, shards=shards, clock=clock)
        out.add_many_terms(
            (triple.subject, triple.predicate, triple.object)
            for triple in graph.triples()
        )
        return out

    # -- shard topology -------------------------------------------------------

    @property
    def shards(self) -> Tuple[Shard, ...]:
        return self._shards

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def shard_index(self, subject_id: int) -> int:
        """The shard owning *subject_id* (subject-hash partition rule)."""
        return subject_id % len(self._shards)

    def shard_of(self, subject_id: int) -> Shard:
        return self._shards[subject_id % len(self._shards)]

    def shard_sizes(self) -> Tuple[int, ...]:
        return tuple(shard.size for shard in self._shards)

    def parallel_factor(self) -> float:
        """Max shard share of the triples: the scan-makespan bound.

        ``1/N`` for perfectly balanced shards, ``1.0`` for one shard (or
        an empty store); the endpoint latency model uses this as the
        static execution-cost scaling when a query ran no shard batch.
        """
        if not self._size:
            return 1.0
        return max(shard.size for shard in self._shards) / float(self._size)

    # -- mutation (single-copy: the owning shard is the only index) -----------

    def add(self, triple: Triple) -> bool:
        d = self._dict
        s = d.encode(triple.subject)
        p = d.encode(triple.predicate)
        o = d.encode(triple.object)
        shard = self._shards[s % len(self._shards)]
        by_predicate = shard.spo.get(s)
        if by_predicate is not None:
            objects = by_predicate.get(p)
            if objects is not None and o in objects:
                return False
        if self._wal is not None:
            self._wal.log_add(triple.subject, triple.predicate, triple.object)
        self._generation += 1
        shard.insert(s, p, o)
        d.incref(s)
        d.incref(p)
        d.incref(o)
        self._size += 1
        return True

    def add_many_terms(self, spo_terms: Iterable[Tuple[Term, IRI, Term]]) -> int:
        """Bulk load writing each triple to its one owning shard only.

        Bulk input is overwhelmingly ``(s, p)``-major (``Graph.triples()``
        iterates SPO, generators emit a subject's star contiguously with
        its predicates grouped), so the shard route, the subject's SPO
        bucket and its refcount resolve once per subject *run*, and the
        ``(s, p)``/POS buckets once per predicate run -- not once per
        triple.  A non-contiguous repeat just re-resolves; correctness
        never depends on the input order.
        """
        d = self._dict
        encode = d.encode
        # Inline the intern-hit path: bulk loads re-see almost every term
        # (a dataset has far fewer distinct terms than term occurrences),
        # so the common case is one dict probe, not a method call.
        term_to_id = d._term_to_id
        lookup = term_to_id.get
        refcount = d._refcount
        shards = self._shards
        n_shards = len(shards)
        wal = self._wal
        added = 0
        last_s: Optional[int] = None
        last_p: Optional[int] = None
        shard: Optional[Shard] = None
        pos = osp = None
        by_predicate = objects = by_object = None
        # Per-run accumulators flushed on run change: the subject's and
        # predicate's refcounts and the owning shard's size move once per
        # run instead of once per triple.
        subject_run_refs = predicate_run_refs = shard_run_size = 0
        for s_term, p_term, o_term in spo_terms:
            s = lookup(s_term)
            if s is None:
                s = encode(s_term)
            p = lookup(p_term)
            if p is None:
                p = encode(p_term)
            o = lookup(o_term)
            if o is None:
                o = encode(o_term)
            if s != last_s:
                if predicate_run_refs:
                    refcount[last_p] += predicate_run_refs
                    predicate_run_refs = 0
                if subject_run_refs:
                    refcount[last_s] += subject_run_refs
                    subject_run_refs = 0
                if shard_run_size:
                    shard.size += shard_run_size
                    shard_run_size = 0
                last_s = s
                last_p = None
                shard = shards[s % n_shards]
                # bulk writes bypass Shard.insert, so the columnar-run
                # cache invalidates here (once per subject run, not per
                # triple)
                shard._columns = None
                pos, osp = shard.pos, shard.osp
                spo = shard.spo
                by_predicate = spo.get(s)
                if by_predicate is None:
                    by_predicate = spo[s] = {}
            if p != last_p:
                if predicate_run_refs:
                    refcount[last_p] += predicate_run_refs
                    predicate_run_refs = 0
                last_p = p
                objects = by_predicate.get(p)
                if objects is None:
                    objects = by_predicate[p] = set()
                by_object = pos.get(p)
                if by_object is None:
                    by_object = pos[p] = {}
            if o in objects:
                continue
            if wal is not None:
                wal.log_add(s_term, p_term, o_term)
            objects.add(o)
            subjects = by_object.get(o)
            if subjects is None:
                subjects = by_object[o] = set()
            subjects.add(s)
            by_subject = osp.get(o)
            if by_subject is None:
                by_subject = osp[o] = {}
            predicates = by_subject.get(s)
            if predicates is None:
                predicates = by_subject[s] = set()
            predicates.add(p)
            subject_run_refs += 1
            predicate_run_refs += 1
            shard_run_size += 1
            refcount[o] += 1
            added += 1
        if predicate_run_refs:
            refcount[last_p] += predicate_run_refs
        if subject_run_refs:
            refcount[last_s] += subject_run_refs
        if shard_run_size:
            shard.size += shard_run_size
        self._size += added
        if added:
            self._generation += 1
        return added

    def remove(self, triple: Triple) -> bool:
        d = self._dict
        s = d.lookup(triple.subject)
        p = d.lookup(triple.predicate)
        o = d.lookup(triple.object)
        if s is None or p is None or o is None:
            return False
        shard = self._shards[s % len(self._shards)]
        objects = shard.spo.get(s, {}).get(p)
        if not objects or o not in objects:
            return False
        if self._wal is not None:
            self._wal.log_remove(triple.subject, triple.predicate, triple.object)
        self._generation += 1
        shard.discard(s, p, o)
        d.decref(s)
        d.decref(p)
        d.decref(o)
        self._size -= 1
        return True

    def clear(self) -> None:
        super().clear()
        self._shards = tuple(Shard() for _ in range(len(self._shards)))

    def copy(self) -> "ShardedTripleStore":
        """A structural clone sharing no mutable state with the original.

        The pool timebase carries over: a store-private clock is cloned at
        its current simulated time (so the copy keeps the time the pool
        already spent, without coupling the two stores), while an external
        clock -- one passed into the constructor, e.g. a shared network
        clock -- is handed to the copy as the same object.
        ``shard_stats`` deliberately starts fresh: the counters are
        per-store *cumulative accounting*, not content, and a clone has
        run zero batches of its own.
        """
        if self._private_clock:
            from ..endpoint.clock import SimulationClock

            clock = SimulationClock(self.clock.now_ms)
        else:
            clock = self.clock
        out = ShardedTripleStore(
            identifier=self.identifier, shards=len(self._shards), clock=clock
        )
        out._private_clock = self._private_clock
        out._dict = self._dict.copy()
        out._size = self._size
        out._shards = tuple(shard.copy() for shard in self._shards)
        return out

    # -- routed read views ----------------------------------------------------

    def triples_ids(
        self,
        s: Optional[int] = None,
        p: Optional[int] = None,
        o: Optional[int] = None,
    ) -> Iterator[Tuple[int, int, int]]:
        """Routed scan primitive: owning shard, or a sorted fan-out merge.

        Subject-bound patterns read the one owning shard directly (its
        iteration order is shard-count-invariant).  Unbound-subject
        patterns span shards, so each shard's matches are sorted into a
        run and the runs merge in ascending ``(s, p, o)`` order -- the
        same canonical stream :func:`repro.sparql.parallel_exec.parallel_scan_ids`
        produces, minus the pool accounting (plain index reads charge no
        simulated time, exactly like an unsharded graph's).
        """
        if s is not None:
            yield from self._shards[s % len(self._shards)].triples_ids(s, p, o)
            return
        shards = self._shards
        if len(shards) == 1:
            yield from sorted(shards[0].triples_ids(None, p, o))
            return
        runs = [sorted(shard.triples_ids(None, p, o)) for shard in shards]
        yield from heapq.merge(*runs)

    def count_ids(
        self,
        s: Optional[int] = None,
        p: Optional[int] = None,
        o: Optional[int] = None,
    ) -> int:
        """Pattern cardinality from shard-local index sizes (no fan-out
        materialization: counting sums per-shard dict/set lengths)."""
        if s is None and p is None and o is None:
            return self._size
        if s is not None:
            shard = self._shards[s % len(self._shards)]
            if p is not None and o is None:
                return len(shard.spo.get(s, {}).get(p, ()))
            if p is None and o is None:
                return sum(len(v) for v in shard.spo.get(s, {}).values())
            return sum(1 for _ in shard.triples_ids(s, p, o))
        if p is not None and o is not None:
            return sum(
                len(shard.pos.get(p, {}).get(o, ())) for shard in self._shards
            )
        if p is not None:
            return sum(
                sum(len(v) for v in shard.pos.get(p, {}).values())
                for shard in self._shards
            )
        return sum(
            sum(len(v) for v in shard.osp.get(o, {}).values())
            for shard in self._shards
        )

    def __contains__(self, triple: Triple) -> bool:
        d = self._dict
        s = d.lookup(triple.subject)
        p = d.lookup(triple.predicate)
        o = d.lookup(triple.object)
        if s is None or p is None or o is None:
            return False
        shard = self._shards[s % len(self._shards)]
        return o in shard.spo.get(s, {}).get(p, ())

    def node_ids(self) -> Set[int]:
        """IDs occurring as subject or object -- the property-path universe.

        Built in ascending-ID insertion order so the resulting set's
        iteration order (which the full-closure path scan observes) is a
        pure function of the ID set, independent of the shard count.
        """
        seen: Set[int] = set()
        for shard in self._shards:
            seen.update(shard.spo)
            seen.update(shard.osp)
        out: Set[int] = set()
        for term_id in sorted(seen):
            out.add(term_id)
        return out

    def is_node_id(self, term_id: int) -> bool:
        if term_id in self._shards[term_id % len(self._shards)].spo:
            return True
        return any(term_id in shard.osp for shard in self._shards)

    # -- whole-index snapshots (tests/debugging; hot paths route instead) ----

    def spo_ids(self) -> IdIndex:
        """Merged SPO view: a fresh dict mapping each subject to its owning
        shard's (live) inner index.  Subjects partition disjointly, so the
        merge is shallow and O(subjects).  Read-only by contract; iteration
        order is shard-major, *not* shard-count-invariant -- canonical
        streams come from :meth:`triples_ids`.
        """
        merged: IdIndex = {}
        for shard in self._shards:
            merged.update(shard.spo)
        return merged

    def pos_ids(self) -> IdIndex:
        """Merged POS snapshot (deep-merged: predicates span shards).
        O(size) to build; exists for inspection, not hot paths."""
        return self._merged_index("pos")

    def osp_ids(self) -> IdIndex:
        """Merged OSP snapshot (deep-merged: objects span shards).
        O(size) to build; exists for inspection, not hot paths."""
        return self._merged_index("osp")

    def _merged_index(self, name: str) -> IdIndex:
        merged: IdIndex = {}
        for shard in self._shards:
            for key, by_mid in getattr(shard, name).items():
                dst = merged.get(key)
                if dst is None:
                    dst = merged[key] = {}
                for mid, leaves in by_mid.items():
                    bucket = dst.get(mid)
                    if bucket is None:
                        # copy: the snapshot must never alias shard-owned
                        # sets it might later extend with another shard's
                        dst[mid] = set(leaves)
                    else:
                        bucket |= leaves
        return merged

    # -- routed convenience accessors -----------------------------------------

    def subjects(self, predicate: Optional[IRI] = None, obj: Optional[Term] = None):
        """Distinct subjects of ``(?, predicate, obj)``; the bound-bound
        fast path fans out over shard POS indexes in ascending-ID order
        (shard-count-invariant)."""
        if predicate is not None and obj is not None:
            p = self._dict.lookup(predicate)
            o = self._dict.lookup(obj)
            if p is None or o is None:
                return
            decode = self._dict.decode
            subject_ids: list = []
            for shard in self._shards:
                subject_ids.extend(shard.pos.get(p, {}).get(o, ()))
            for s in sorted(subject_ids):
                yield decode(s)
            return
        yield from super().subjects(predicate, obj)

    def objects(self, subject: Optional[Term] = None, predicate: Optional[IRI] = None):
        """Distinct objects of ``(subject, predicate, ?)``; the bound-bound
        fast path is a single owning-shard lookup."""
        if subject is not None and predicate is not None:
            s = self._dict.lookup(subject)
            p = self._dict.lookup(predicate)
            if s is None or p is None:
                return
            decode = self._dict.decode
            shard = self._shards[s % len(self._shards)]
            for o in shard.spo.get(s, {}).get(p, ()):
                yield decode(o)
            return
        yield from super().objects(subject, predicate)

    def classes(self) -> Set[Term]:
        p = self._dict.lookup(RDF.type)
        if p is None:
            return set()
        decode = self._dict.decode
        return {
            decode(o) for shard in self._shards for o in shard.pos.get(p, {})
        }

    def instances_of(self, cls: Term) -> Set[Term]:
        p = self._dict.lookup(RDF.type)
        o = self._dict.lookup(cls)
        if p is None or o is None:
            return set()
        decode = self._dict.decode
        return {
            decode(s)
            for shard in self._shards
            for s in shard.pos.get(p, {}).get(o, ())
        }

    def class_count(self, cls: Term) -> int:
        p = self._dict.lookup(RDF.type)
        o = self._dict.lookup(cls)
        if p is None or o is None:
            return 0
        return sum(len(shard.pos.get(p, {}).get(o, ())) for shard in self._shards)

    def subclasses(self, cls: Term) -> Set[Term]:
        p = self._dict.lookup(RDFS.subClassOf)
        o = self._dict.lookup(cls)
        if p is None or o is None:
            return set()
        decode = self._dict.decode
        return {
            decode(s)
            for shard in self._shards
            for s in shard.pos.get(p, {}).get(o, ())
        }

    def __repr__(self) -> str:
        name = self.identifier or "anonymous"
        return (
            f"<ShardedTripleStore {name!r} with {self._size} triples "
            f"over {len(self._shards)} shards>"
        )
