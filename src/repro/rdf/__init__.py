"""RDF substrate: terms, namespaces, indexed triple store, N-Triples, Turtle.

This package replaces rdflib for the H-BOLD reproduction.  It provides the
data model (``IRI``, ``BNode``, ``Literal``, ``Triple``), an in-memory
triple store with SPO/POS/OSP indexes (``Graph``), and readers/writers for
the two serializations the pipeline uses (N-Triples and a Turtle subset).
"""

from .dictionary import TermDict
from .durability import (
    CrashInjector,
    CrashPoint,
    DurabilityError,
    Journal,
    LazyShard,
    attach_journal,
    content_digest,
    load_graph,
    save_graph,
)
from .graph import Graph
from .namespaces import (
    DCAT,
    DCTERMS,
    FOAF,
    OWL,
    PREFIXES,
    RDF,
    RDFS,
    SCHEMA,
    SWC,
    VOID,
    XSD,
    Namespace,
    curie,
    expand_curie,
)
from .ntriples import NTriplesError, graph_from_ntriples, parse_ntriples, serialize_ntriples
from .sharding import Shard, ShardedTripleStore
from .terms import BNode, IRI, Literal, Term, Triple, Variable
from .turtle import TurtleError, parse_turtle, serialize_turtle

__all__ = [
    "BNode",
    "CrashInjector",
    "CrashPoint",
    "DCAT",
    "DCTERMS",
    "DurabilityError",
    "FOAF",
    "Graph",
    "IRI",
    "Journal",
    "LazyShard",
    "Literal",
    "Namespace",
    "NTriplesError",
    "OWL",
    "PREFIXES",
    "RDF",
    "RDFS",
    "SCHEMA",
    "SWC",
    "Shard",
    "ShardedTripleStore",
    "Term",
    "TermDict",
    "Triple",
    "TurtleError",
    "VOID",
    "Variable",
    "XSD",
    "attach_journal",
    "content_digest",
    "curie",
    "expand_curie",
    "load_graph",
    "save_graph",
    "graph_from_ntriples",
    "parse_ntriples",
    "parse_turtle",
    "serialize_ntriples",
    "serialize_turtle",
]
