"""RDF substrate: terms, namespaces, indexed triple store, N-Triples, Turtle.

This package replaces rdflib for the H-BOLD reproduction.  It provides the
data model (``IRI``, ``BNode``, ``Literal``, ``Triple``), an in-memory
triple store with SPO/POS/OSP indexes (``Graph``), and readers/writers for
the two serializations the pipeline uses (N-Triples and a Turtle subset).
"""

from .dictionary import TermDict
from .graph import Graph
from .namespaces import (
    DCAT,
    DCTERMS,
    FOAF,
    OWL,
    PREFIXES,
    RDF,
    RDFS,
    SCHEMA,
    SWC,
    VOID,
    XSD,
    Namespace,
    curie,
    expand_curie,
)
from .ntriples import NTriplesError, graph_from_ntriples, parse_ntriples, serialize_ntriples
from .sharding import Shard, ShardedTripleStore
from .terms import BNode, IRI, Literal, Term, Triple, Variable
from .turtle import TurtleError, parse_turtle, serialize_turtle

__all__ = [
    "BNode",
    "DCAT",
    "DCTERMS",
    "FOAF",
    "Graph",
    "IRI",
    "Literal",
    "Namespace",
    "NTriplesError",
    "OWL",
    "PREFIXES",
    "RDF",
    "RDFS",
    "SCHEMA",
    "SWC",
    "Shard",
    "ShardedTripleStore",
    "Term",
    "TermDict",
    "Triple",
    "TurtleError",
    "VOID",
    "Variable",
    "XSD",
    "curie",
    "expand_curie",
    "graph_from_ntriples",
    "parse_ntriples",
    "parse_turtle",
    "serialize_ntriples",
    "serialize_turtle",
]
