"""An indexed, in-memory, dictionary-encoded RDF triple store.

This is the storage substrate under every simulated SPARQL endpoint.  Every
term is interned to an integer ID through a :class:`~repro.rdf.dictionary.TermDict`
and the three permutation indexes (SPO, POS, OSP) are dict-of-dict-of-set
structures over those integers, so that any triple pattern with at least one
bound position is answered without a full scan and every hash operation on
the hot path is an integer hash -- the same design as classical hexastores
reduced to the three orderings a single-variable-join workload needs, plus
the dictionary encoding production stores layer underneath.

Two API surfaces coexist:

* the **term-level** API (``add``, ``remove``, ``triples``, ``subjects``,
  ...) speaks :class:`~repro.rdf.terms.Triple` objects and is what parsers,
  generators and tests use;
* the **ID-level** API (``lookup_id``, ``decode_id``, ``triples_ids``,
  ``count_ids``, the ``*_ids`` index accessors) is consumed by the SPARQL
  hash-join pipeline and the property-path closures, which decode back to
  terms only at the result boundary.

The store is deliberately *not* thread-safe: the simulation layers are
single-threaded and the paper's server pipeline is batch-oriented.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Set, Tuple, Union

from .dictionary import TermDict
from .namespaces import RDF, RDFS
from .terms import BNode, IRI, Literal, Term, Triple, _unchecked_triple

__all__ = ["Graph"]

_SubjectLike = Union[IRI, BNode]
TriplePattern = Tuple[Optional[Term], Optional[IRI], Optional[Term]]

IdIndex = Dict[int, Dict[int, Set[int]]]


class Graph:
    """A set of triples with dictionary-encoded SPO/POS/OSP indexes.

    >>> g = Graph()
    >>> from repro.rdf.terms import IRI, Literal
    >>> s, p = IRI("http://ex.org/s"), IRI("http://ex.org/p")
    >>> _ = g.add(Triple(s, p, Literal("x")))
    >>> len(g)
    1

    ``Graph(shards=N)`` is the sharding facade: it constructs a
    :class:`~repro.rdf.sharding.ShardedTripleStore` (a Graph subclass)
    whose triples are additionally partitioned into N subject-hash
    shards for the partition-parallel SPARQL scan path.  Every call
    site that takes a ``Graph`` accepts either.
    """

    #: overridden by :class:`~repro.rdf.sharding.ShardedTripleStore`;
    #: the SPARQL layer dispatches on this without importing it
    is_sharded = False

    def __new__(cls, identifier: Optional[str] = None, shards: Optional[int] = None, **kwargs):
        if cls is Graph and shards is not None:
            from .sharding import ShardedTripleStore

            # type(obj).__init__ runs next, so the subclass sees `shards`.
            return super().__new__(ShardedTripleStore)
        return super().__new__(cls)

    def __init__(self, identifier: Optional[str] = None, shards: Optional[int] = None):
        self.identifier = identifier
        self._dict = TermDict()
        self._spo: IdIndex = {}
        self._pos: IdIndex = {}
        self._osp: IdIndex = {}
        self._size = 0
        self._generation = 0
        self._derived: Dict[str, object] = {}
        #: attached durability journal (:class:`repro.rdf.durability.Journal`)
        #: or None; when set, content-changing mutations write-ahead-log a
        #: record before applying.  Never carried by ``copy()``.
        self._wal = None

    def derived_cache(self, name: str, factory):
        """Home for caches *derived* from this graph's content.

        Consumers (e.g. the SPARQL compiled-plan cache) call this with a
        stable *name* and a zero-argument *factory*; the first call creates
        the cache, every later call — from any consumer naming the same
        key — returns the same object, so transient consumers (short-lived
        query engines, exploration sessions) share one cache per graph
        instead of each warming their own.

        The graph never invalidates these caches itself: consumers embed
        ``generation`` in their entries and validate on lookup (see the
        property below), which keeps this layer free of any knowledge
        about what is being cached.  ``copy()`` does not carry caches over
        (the clone is independently mutable) and ``clear()`` relies on the
        generation bump.
        """
        cache = self._derived.get(name)
        if cache is None:
            cache = self._derived[name] = factory()
        return cache

    @property
    def generation(self) -> int:
        """Mutation counter: bumps only when the triple set actually changes.

        Cache keys derived from this graph's content (compiled query plans,
        cardinality estimates) embed the generation and compare it on reuse;
        a bump invalidates every derived artifact at once without the graph
        having to know who is caching what.  No-op writes -- a duplicate
        ``add``, removing an absent triple, an all-duplicate ``add_many`` --
        leave the content untouched and therefore do *not* bump, so
        duplicate-heavy loads cannot evict still-valid plans or
        ``derived_cache`` entries.
        """
        return self._generation

    # -- dictionary access ---------------------------------------------------

    @property
    def dictionary(self) -> TermDict:
        """The intern table.  Read-only from the caller's perspective."""
        return self._dict

    def lookup_id(self, term: Term) -> Optional[int]:
        """The ID of *term*, or None when it occurs in no triple."""
        return self._dict.lookup(term)

    def decode_id(self, term_id: int) -> Term:
        """The term behind *term_id* (KeyError for stale IDs)."""
        return self._dict.decode(term_id)

    def term_count(self) -> int:
        """How many distinct terms the dictionary currently holds."""
        return len(self._dict)

    # -- ID-level index views (do not mutate) --------------------------------

    def spo_ids(self) -> IdIndex:
        return self._spo

    def pos_ids(self) -> IdIndex:
        return self._pos

    def osp_ids(self) -> IdIndex:
        return self._osp

    def node_ids(self) -> Set[int]:
        """IDs occurring as subject or object -- the property-path universe."""
        return set(self._spo) | set(self._osp)

    def is_node_id(self, term_id: int) -> bool:
        """Does *term_id* occur as a subject or object (path universe)?"""
        return term_id in self._spo or term_id in self._osp

    def is_node_term(self, term: Term) -> bool:
        """Does *term* occur as a subject or object (path universe)?"""
        term_id = self._dict.lookup(term)
        return term_id is not None and self.is_node_id(term_id)

    # -- mutation ------------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Insert *triple*; return True if it was not already present."""
        d = self._dict
        s = d.encode(triple.subject)
        p = d.encode(triple.predicate)
        o = d.encode(triple.object)
        by_predicate = self._spo.get(s)
        if by_predicate is None:
            by_predicate = self._spo[s] = {}
        objects = by_predicate.get(p)
        if objects is None:
            objects = by_predicate[p] = set()
        if o in objects:
            return False
        if self._wal is not None:
            self._wal.log_add(triple.subject, triple.predicate, triple.object)
        self._generation += 1
        objects.add(o)
        self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._osp.setdefault(o, {}).setdefault(s, set()).add(p)
        d.incref(s)
        d.incref(p)
        d.incref(o)
        self._size += 1
        return True

    def add_triple(self, subject: _SubjectLike, predicate: IRI, obj: Term) -> bool:
        """Convenience: build and insert a :class:`Triple`."""
        return self.add(Triple(subject, predicate, obj))

    def add_many(self, triples: Iterable[Triple]) -> int:
        """Bulk-load *triples*; return how many were new."""
        return self.add_many_terms(
            (triple.subject, triple.predicate, triple.object) for triple in triples
        )

    def add_many_terms(self, spo_terms: Iterable[Tuple[Term, IRI, Term]]) -> int:
        """Bulk-load ``(subject, predicate, object)`` term tuples.

        The fast path for generators and graph copies: one tight loop with
        the dictionary, indexes and refcounts bound to locals, no per-triple
        method dispatch or :class:`Triple` wrappers.  Positions are not
        type-checked; callers own the triple validity (generators and
        parsers construct well-typed terms).
        """
        d = self._dict
        encode = d.encode
        # Inline the intern-hit path: bulk loads re-see almost every term,
        # so the common case is one dict probe, not a method call.
        lookup = d._term_to_id.get
        refcount = d._refcount
        spo, pos, osp = self._spo, self._pos, self._osp
        wal = self._wal
        added = 0
        for s_term, p_term, o_term in spo_terms:
            s = lookup(s_term)
            if s is None:
                s = encode(s_term)
            p = lookup(p_term)
            if p is None:
                p = encode(p_term)
            o = lookup(o_term)
            if o is None:
                o = encode(o_term)
            by_predicate = spo.get(s)
            if by_predicate is None:
                by_predicate = spo[s] = {}
            objects = by_predicate.get(p)
            if objects is None:
                objects = by_predicate[p] = set()
            if o in objects:
                continue
            if wal is not None:
                wal.log_add(s_term, p_term, o_term)
            objects.add(o)
            by_object = pos.get(p)
            if by_object is None:
                by_object = pos[p] = {}
            subjects = by_object.get(o)
            if subjects is None:
                subjects = by_object[o] = set()
            subjects.add(s)
            by_subject = osp.get(o)
            if by_subject is None:
                by_subject = osp[o] = {}
            predicates = by_subject.get(s)
            if predicates is None:
                predicates = by_subject[s] = set()
            predicates.add(p)
            refcount[s] += 1
            refcount[p] += 1
            refcount[o] += 1
            added += 1
        self._size += added
        if added:
            self._generation += 1
        return added

    def update(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; return how many were new."""
        return self.add_many(triples)

    def remove(self, triple: Triple) -> bool:
        """Remove *triple*; return True if it was present."""
        d = self._dict
        s = d.lookup(triple.subject)
        p = d.lookup(triple.predicate)
        o = d.lookup(triple.object)
        if s is None or p is None or o is None:
            return False
        by_predicate = self._spo.get(s)
        objects = by_predicate.get(p) if by_predicate else None
        if not objects or o not in objects:
            return False
        if self._wal is not None:
            self._wal.log_remove(triple.subject, triple.predicate, triple.object)
        self._generation += 1
        objects.discard(o)
        if not objects:
            del by_predicate[p]
            if not by_predicate:
                del self._spo[s]
        by_object = self._pos[p]
        by_object[o].discard(s)
        if not by_object[o]:
            del by_object[o]
            if not by_object:
                del self._pos[p]
        by_subject = self._osp[o]
        by_subject[s].discard(p)
        if not by_subject[s]:
            del by_subject[s]
            if not by_subject:
                del self._osp[o]
        d.decref(s)
        d.decref(p)
        d.decref(o)
        self._size -= 1
        return True

    def remove_pattern(self, subject=None, predicate=None, obj=None) -> int:
        """Remove every triple matching the pattern; return removal count."""
        victims = list(self.triples(subject, predicate, obj))
        for triple in victims:
            self.remove(triple)
        return len(victims)

    def clear(self) -> None:
        if self._size or len(self._dict):
            if self._wal is not None:
                self._wal.log_clear()
            self._generation += 1
        self._dict = TermDict()
        self._spo = {}
        self._pos = {}
        self._osp = {}
        self._size = 0

    # -- lookup --------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: Triple) -> bool:
        d = self._dict
        s = d.lookup(triple.subject)
        p = d.lookup(triple.predicate)
        o = d.lookup(triple.object)
        if s is None or p is None or o is None:
            return False
        return o in self._spo.get(s, {}).get(p, ())

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def triples_ids(
        self,
        s: Optional[int] = None,
        p: Optional[int] = None,
        o: Optional[int] = None,
    ) -> Iterator[Tuple[int, int, int]]:
        """Iterate ID triples matching the (possibly wildcard) ID pattern.

        ``None`` in a position is a wildcard.  The most selective index for
        the bound positions is used.  This is the scan primitive under the
        SPARQL hash-join pipeline.
        """
        if s is not None:
            by_predicate = self._spo.get(s)
            if not by_predicate:
                return
            if p is not None:
                objects = by_predicate.get(p)
                if not objects:
                    return
                if o is not None:
                    if o in objects:
                        yield (s, p, o)
                    return
                for obj in objects:
                    yield (s, p, obj)
                return
            for pred, objects in by_predicate.items():
                if o is not None:
                    if o in objects:
                        yield (s, pred, o)
                    continue
                for obj in objects:
                    yield (s, pred, obj)
            return

        if p is not None:
            by_object = self._pos.get(p)
            if not by_object:
                return
            if o is not None:
                for subj in by_object.get(o, ()):
                    yield (subj, p, o)
                return
            for obj, subjects in by_object.items():
                for subj in subjects:
                    yield (subj, p, obj)
            return

        if o is not None:
            by_subject = self._osp.get(o)
            if not by_subject:
                return
            for subj, predicates in by_subject.items():
                for pred in predicates:
                    yield (subj, pred, o)
            return

        for subj, by_predicate in self._spo.items():
            for pred, objects in by_predicate.items():
                for obj in objects:
                    yield (subj, pred, obj)

    def triples(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[IRI] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Iterate triples matching the (possibly wildcard) pattern.

        ``None`` in a position is a wildcard.  Terms not interned in the
        dictionary cannot match anything, so those patterns return empty
        without touching an index.
        """
        lookup = self._dict.lookup
        s = p = o = None
        if subject is not None:
            s = lookup(subject)
            if s is None:
                return
        if predicate is not None:
            p = lookup(predicate)
            if p is None:
                return
        if obj is not None:
            o = lookup(obj)
            if o is None:
                return
        decode = self._dict.decode
        for s_id, p_id, o_id in self.triples_ids(s, p, o):
            yield _unchecked_triple(decode(s_id), decode(p_id), decode(o_id))

    def count_ids(
        self,
        s: Optional[int] = None,
        p: Optional[int] = None,
        o: Optional[int] = None,
    ) -> int:
        """Count ID triples matching the pattern without materializing them."""
        if s is None and p is None and o is None:
            return self._size
        if s is not None and p is not None and o is None:
            return len(self._spo.get(s, {}).get(p, ()))
        if s is not None and p is None and o is None:
            return sum(len(v) for v in self._spo.get(s, {}).values())
        if p is not None and s is None and o is None:
            return sum(len(v) for v in self._pos.get(p, {}).values())
        if p is not None and o is not None and s is None:
            return len(self._pos.get(p, {}).get(o, ()))
        if o is not None and s is None and p is None:
            return sum(len(v) for v in self._osp.get(o, {}).values())
        return sum(1 for _ in self.triples_ids(s, p, o))

    def count(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[IRI] = None,
        obj: Optional[Term] = None,
    ) -> int:
        """Count triples matching the pattern without materializing them."""
        lookup = self._dict.lookup
        s = p = o = None
        if subject is not None:
            s = lookup(subject)
            if s is None:
                return 0
        if predicate is not None:
            p = lookup(predicate)
            if p is None:
                return 0
        if obj is not None:
            o = lookup(obj)
            if o is None:
                return 0
        return self.count_ids(s, p, o)

    # -- convenience accessors -------------------------------------------

    def subjects(self, predicate: Optional[IRI] = None, obj: Optional[Term] = None):
        """Distinct subjects of triples matching ``(?, predicate, obj)``."""
        decode = self._dict.decode
        if predicate is not None and obj is not None:
            p = self._dict.lookup(predicate)
            o = self._dict.lookup(obj)
            if p is None or o is None:
                return
            for s in self._pos.get(p, {}).get(o, ()):
                yield decode(s)
            return
        seen = set()
        for triple in self.triples(None, predicate, obj):
            if triple.subject not in seen:
                seen.add(triple.subject)
                yield triple.subject

    def predicates(self, subject: Optional[Term] = None, obj: Optional[Term] = None):
        """Distinct predicates of triples matching ``(subject, ?, obj)``."""
        seen = set()
        for triple in self.triples(subject, None, obj):
            if triple.predicate not in seen:
                seen.add(triple.predicate)
                yield triple.predicate

    def objects(self, subject: Optional[Term] = None, predicate: Optional[IRI] = None):
        """Distinct objects of triples matching ``(subject, predicate, ?)``."""
        decode = self._dict.decode
        if subject is not None and predicate is not None:
            s = self._dict.lookup(subject)
            p = self._dict.lookup(predicate)
            if s is None or p is None:
                return
            for o in self._spo.get(s, {}).get(p, ()):
                yield decode(o)
            return
        seen = set()
        for triple in self.triples(subject, predicate, None):
            if triple.object not in seen:
                seen.add(triple.object)
                yield triple.object

    def value(
        self, subject: Optional[Term] = None, predicate: Optional[IRI] = None
    ) -> Optional[Term]:
        """The first object of ``(subject, predicate, ?)``, or None."""
        for obj in self.objects(subject, predicate):
            return obj
        return None

    # -- schema-level helpers used by index extraction ---------------------

    def classes(self) -> Set[Term]:
        """Distinct instantiated classes (objects of ``rdf:type``)."""
        p = self._dict.lookup(RDF.type)
        if p is None:
            return set()
        decode = self._dict.decode
        return {decode(o) for o in self._pos.get(p, {})}

    def instances_of(self, cls: Term) -> Set[Term]:
        """Subjects typed as *cls*."""
        p = self._dict.lookup(RDF.type)
        o = self._dict.lookup(cls)
        if p is None or o is None:
            return set()
        decode = self._dict.decode
        return {decode(s) for s in self._pos.get(p, {}).get(o, ())}

    def class_count(self, cls: Term) -> int:
        p = self._dict.lookup(RDF.type)
        o = self._dict.lookup(cls)
        if p is None or o is None:
            return 0
        return len(self._pos.get(p, {}).get(o, ()))

    def subclasses(self, cls: Term) -> Set[Term]:
        """Direct rdfs:subClassOf children of *cls*."""
        p = self._dict.lookup(RDFS.subClassOf)
        o = self._dict.lookup(cls)
        if p is None or o is None:
            return set()
        decode = self._dict.decode
        return {decode(s) for s in self._pos.get(p, {}).get(o, ())}

    def label(self, subject: Term) -> Optional[str]:
        """The rdfs:label of *subject* if present, as a plain string."""
        value = self.value(subject, RDFS.label)
        if isinstance(value, Literal):
            return value.lexical
        return None

    # -- durability facade -----------------------------------------------

    def save(self, root: str, injector=None) -> dict:
        """Write a full durable snapshot of this graph under *root*.

        Columnar per-shard snapshot files + term-dictionary snapshot +
        a fresh write-ahead-log segment, committed by an atomic manifest
        swap.  Returns the manifest.  See :mod:`repro.rdf.durability`.
        """
        from .durability import save_graph

        return save_graph(self, root, injector=injector)

    @classmethod
    def load(
        cls,
        root: str,
        lazy: Optional[bool] = None,
        verify: Optional[bool] = None,
        clock=None,
    ) -> "Graph":
        """Recover a graph from the durable store at *root*.

        Returns a :class:`Graph` or
        :class:`~repro.rdf.sharding.ShardedTripleStore` per the manifest.
        ``lazy`` defers per-shard index builds to first touch (default for
        sharded stores); ``verify`` checks the snapshot's content digest
        against the manifest before WAL replay (default for eager loads).
        """
        from .durability import load_graph

        return load_graph(root, lazy=lazy, verify=verify, clock=clock)

    # -- set-algebra -----------------------------------------------------

    def __iadd__(self, other: "Graph") -> "Graph":
        self.update(other)
        return self

    def copy(self) -> "Graph":
        """A structural clone sharing no mutable state with the original."""
        out = Graph(identifier=self.identifier)
        out._dict = self._dict.copy()
        out._spo = {s: {p: set(o) for p, o in by_p.items()} for s, by_p in self._spo.items()}
        out._pos = {p: {o: set(s) for o, s in by_o.items()} for p, by_o in self._pos.items()}
        out._osp = {o: {s: set(p) for s, p in by_s.items()} for o, by_s in self._osp.items()}
        out._size = self._size
        return out

    def __repr__(self) -> str:
        name = self.identifier or "anonymous"
        return f"<Graph {name!r} with {self._size} triples>"
