"""An indexed, in-memory RDF triple store.

This is the storage substrate under every simulated SPARQL endpoint.  It
maintains three permutation indexes (SPO, POS, OSP) so that any triple
pattern with at least one bound position is answered without a full scan --
the same design as classical hexastores reduced to the three orderings a
single-variable-join workload actually needs.

The store is deliberately *not* thread-safe: the simulation layers are
single-threaded and the paper's server pipeline is batch-oriented.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, Optional, Set, Tuple, Union

from .namespaces import RDF, RDFS
from .terms import BNode, IRI, Literal, Term, Triple

__all__ = ["Graph"]

_SubjectLike = Union[IRI, BNode]
TriplePattern = Tuple[Optional[Term], Optional[IRI], Optional[Term]]


class Graph:
    """A set of triples with SPO/POS/OSP indexes and graph-level helpers.

    >>> g = Graph()
    >>> from repro.rdf.terms import IRI, Literal
    >>> s, p = IRI("http://ex.org/s"), IRI("http://ex.org/p")
    >>> _ = g.add(Triple(s, p, Literal("x")))
    >>> len(g)
    1
    """

    def __init__(self, identifier: Optional[str] = None):
        self.identifier = identifier
        self._spo: Dict[Term, Dict[IRI, Set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._pos: Dict[IRI, Dict[Term, Set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._osp: Dict[Term, Dict[Term, Set[IRI]]] = defaultdict(lambda: defaultdict(set))
        self._size = 0

    # -- mutation ------------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Insert *triple*; return True if it was not already present."""
        s, p, o = triple.subject, triple.predicate, triple.object
        objects = self._spo[s][p]
        if o in objects:
            return False
        objects.add(o)
        self._pos[p][o].add(s)
        self._osp[o][s].add(p)
        self._size += 1
        return True

    def add_triple(self, subject: _SubjectLike, predicate: IRI, obj: Term) -> bool:
        """Convenience: build and insert a :class:`Triple`."""
        return self.add(Triple(subject, predicate, obj))

    def update(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; return how many were new."""
        added = 0
        for triple in triples:
            if self.add(triple):
                added += 1
        return added

    def remove(self, triple: Triple) -> bool:
        """Remove *triple*; return True if it was present."""
        s, p, o = triple.subject, triple.predicate, triple.object
        objects = self._spo.get(s, {}).get(p)
        if not objects or o not in objects:
            return False
        objects.discard(o)
        if not objects:
            del self._spo[s][p]
            if not self._spo[s]:
                del self._spo[s]
        self._pos[p][o].discard(s)
        if not self._pos[p][o]:
            del self._pos[p][o]
            if not self._pos[p]:
                del self._pos[p]
        self._osp[o][s].discard(p)
        if not self._osp[o][s]:
            del self._osp[o][s]
            if not self._osp[o]:
                del self._osp[o]
        self._size -= 1
        return True

    def remove_pattern(self, subject=None, predicate=None, obj=None) -> int:
        """Remove every triple matching the pattern; return removal count."""
        victims = list(self.triples(subject, predicate, obj))
        for triple in victims:
            self.remove(triple)
        return len(victims)

    def clear(self) -> None:
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._size = 0

    # -- lookup --------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: Triple) -> bool:
        return triple.object in self._spo.get(triple.subject, {}).get(
            triple.predicate, ()
        )

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def triples(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[IRI] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Iterate triples matching the (possibly wildcard) pattern.

        ``None`` in a position is a wildcard.  The most selective index for
        the bound positions is used.
        """
        if subject is not None:
            by_predicate = self._spo.get(subject)
            if not by_predicate:
                return
            if predicate is not None:
                objects = by_predicate.get(predicate)
                if not objects:
                    return
                if obj is not None:
                    if obj in objects:
                        yield Triple(subject, predicate, obj)
                    return
                for o in objects:
                    yield Triple(subject, predicate, o)
                return
            for p, objects in by_predicate.items():
                if obj is not None:
                    if obj in objects:
                        yield Triple(subject, p, obj)
                    continue
                for o in objects:
                    yield Triple(subject, p, o)
            return

        if predicate is not None:
            by_object = self._pos.get(predicate)
            if not by_object:
                return
            if obj is not None:
                for s in by_object.get(obj, ()):
                    yield Triple(s, predicate, obj)
                return
            for o, subjects in by_object.items():
                for s in subjects:
                    yield Triple(s, predicate, o)
            return

        if obj is not None:
            by_subject = self._osp.get(obj)
            if not by_subject:
                return
            for s, predicates in by_subject.items():
                for p in predicates:
                    yield Triple(s, p, obj)
            return

        for s, by_predicate in self._spo.items():
            for p, objects in by_predicate.items():
                for o in objects:
                    yield Triple(s, p, o)

    def count(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[IRI] = None,
        obj: Optional[Term] = None,
    ) -> int:
        """Count triples matching the pattern without materializing them."""
        if subject is None and predicate is None and obj is None:
            return self._size
        if subject is not None and predicate is not None and obj is None:
            return len(self._spo.get(subject, {}).get(predicate, ()))
        if subject is not None and predicate is None and obj is None:
            return sum(len(v) for v in self._spo.get(subject, {}).values())
        if predicate is not None and subject is None and obj is None:
            return sum(len(v) for v in self._pos.get(predicate, {}).values())
        if predicate is not None and obj is not None and subject is None:
            return len(self._pos.get(predicate, {}).get(obj, ()))
        if obj is not None and subject is None and predicate is None:
            return sum(len(v) for v in self._osp.get(obj, {}).values())
        return sum(1 for _ in self.triples(subject, predicate, obj))

    # -- convenience accessors -------------------------------------------

    def subjects(self, predicate: Optional[IRI] = None, obj: Optional[Term] = None):
        """Distinct subjects of triples matching ``(?, predicate, obj)``."""
        if predicate is not None and obj is not None:
            yield from self._pos.get(predicate, {}).get(obj, ())
            return
        seen = set()
        for triple in self.triples(None, predicate, obj):
            if triple.subject not in seen:
                seen.add(triple.subject)
                yield triple.subject

    def predicates(self, subject: Optional[Term] = None, obj: Optional[Term] = None):
        """Distinct predicates of triples matching ``(subject, ?, obj)``."""
        seen = set()
        for triple in self.triples(subject, None, obj):
            if triple.predicate not in seen:
                seen.add(triple.predicate)
                yield triple.predicate

    def objects(self, subject: Optional[Term] = None, predicate: Optional[IRI] = None):
        """Distinct objects of triples matching ``(subject, predicate, ?)``."""
        if subject is not None and predicate is not None:
            yield from self._spo.get(subject, {}).get(predicate, ())
            return
        seen = set()
        for triple in self.triples(subject, predicate, None):
            if triple.object not in seen:
                seen.add(triple.object)
                yield triple.object

    def value(
        self, subject: Optional[Term] = None, predicate: Optional[IRI] = None
    ) -> Optional[Term]:
        """The first object of ``(subject, predicate, ?)``, or None."""
        for obj in self.objects(subject, predicate):
            return obj
        return None

    # -- schema-level helpers used by index extraction ---------------------

    def classes(self) -> Set[Term]:
        """Distinct instantiated classes (objects of ``rdf:type``)."""
        return set(self._pos.get(RDF.type, {}).keys())

    def instances_of(self, cls: Term) -> Set[Term]:
        """Subjects typed as *cls*."""
        return set(self._pos.get(RDF.type, {}).get(cls, ()))

    def class_count(self, cls: Term) -> int:
        return len(self._pos.get(RDF.type, {}).get(cls, ()))

    def subclasses(self, cls: Term) -> Set[Term]:
        """Direct rdfs:subClassOf children of *cls*."""
        return set(self._pos.get(RDFS.subClassOf, {}).get(cls, ()))

    def label(self, subject: Term) -> Optional[str]:
        """The rdfs:label of *subject* if present, as a plain string."""
        value = self.value(subject, RDFS.label)
        if isinstance(value, Literal):
            return value.lexical
        return None

    # -- set-algebra -----------------------------------------------------

    def __iadd__(self, other: "Graph") -> "Graph":
        self.update(other)
        return self

    def copy(self) -> "Graph":
        out = Graph(identifier=self.identifier)
        out.update(self)
        return out

    def __repr__(self) -> str:
        name = self.identifier or "anonymous"
        return f"<Graph {name!r} with {self._size} triples>"
