"""Baselines from the paper's related work (§4).

Currently: rdf:SynopsViz's HETree hierarchical binning (Bikakis et al.),
the value-centric exploration approach the paper contrasts H-BOLD's
schema-centric approach against.
"""

from .synopsviz import (
    HETreeNode,
    build_hetree_c,
    build_hetree_r,
    fetch_property_values,
    hetree_to_hierarchy,
)

__all__ = [
    "HETreeNode",
    "build_hetree_c",
    "build_hetree_r",
    "fetch_property_values",
    "hetree_to_hierarchy",
]
