"""rdf:SynopsViz-style hierarchical charting -- the §4 baseline.

The paper's related work (Bikakis et al., "A hierarchical aggregation
framework for efficient multilevel visual exploration and analysis" /
"rdf:SynopsViz") explores LD through *value* hierarchies: the numeric or
temporal values of one property are binned into a balanced tree (HETree),
each level a coarser histogram, and the user drills down level by level.

This module implements the two HETree construction modes of that paper:

* **HETree-C** ("content"): leaves hold equal-*count* value groups,
* **HETree-R** ("range"):   leaves hold equal-*width* value ranges,

both aggregated bottom-up with a fixed branching degree, with per-node
statistics (count, min, max, mean) exactly as the framework defines, and
an adapter that runs it against our simulated endpoints.

Contrast with H-BOLD (the reproduction's subject): SynopsViz explores the
values of one property at a time and needs numeric/temporal data, while
H-BOLD abstracts the *schema*.  The B1 benchmark quantifies that contrast.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..endpoint.network import SparqlClient
from ..viz.hierarchy import HierarchyNode

__all__ = ["HETreeNode", "build_hetree_c", "build_hetree_r", "fetch_property_values",
           "hetree_to_hierarchy"]


class HETreeNode:
    """One node of a HETree: an interval with aggregate statistics."""

    __slots__ = ("low", "high", "count", "minimum", "maximum", "mean", "children")

    def __init__(
        self,
        low: float,
        high: float,
        count: int,
        minimum: Optional[float],
        maximum: Optional[float],
        mean: Optional[float],
        children: Sequence["HETreeNode"] = (),
    ):
        if high < low:
            raise ValueError(f"inverted interval [{low}, {high}]")
        self.low = low
        self.high = high
        self.count = count
        self.minimum = minimum
        self.maximum = maximum
        self.mean = mean
        self.children = list(children)

    def is_leaf(self) -> bool:
        return not self.children

    def depth(self) -> int:
        if self.is_leaf():
            return 0
        return 1 + max(child.depth() for child in self.children)

    def leaves(self) -> List["HETreeNode"]:
        if self.is_leaf():
            return [self]
        out: List[HETreeNode] = []
        for child in self.children:
            out.extend(child.leaves())
        return out

    def label(self) -> str:
        return f"[{self.low:g}, {self.high:g})"

    def __repr__(self) -> str:
        return f"<HETreeNode {self.label()} n={self.count}>"


def _leaf_stats(values: List[float]) -> Tuple[Optional[float], Optional[float], Optional[float]]:
    if not values:
        return None, None, None
    return min(values), max(values), sum(values) / len(values)


def _aggregate(children: List[HETreeNode]) -> HETreeNode:
    count = sum(child.count for child in children)
    minima = [c.minimum for c in children if c.minimum is not None]
    maxima = [c.maximum for c in children if c.maximum is not None]
    weighted = [
        c.mean * c.count for c in children if c.mean is not None and c.count > 0
    ]
    mean = (sum(weighted) / count) if count > 0 and weighted else None
    return HETreeNode(
        children[0].low,
        children[-1].high,
        count,
        min(minima) if minima else None,
        max(maxima) if maxima else None,
        mean,
        children,
    )


def _build_bottom_up(leaves: List[HETreeNode], degree: int) -> HETreeNode:
    level = leaves
    while len(level) > 1:
        grouped: List[HETreeNode] = []
        for start in range(0, len(level), degree):
            chunk = level[start : start + degree]
            grouped.append(_aggregate(chunk) if len(chunk) > 1 else chunk[0])
        level = grouped
    return level[0]


def build_hetree_r(
    values: Sequence[float], leaf_count: int = 8, degree: int = 3
) -> HETreeNode:
    """HETree-R: equal-*range* leaves over [min, max], fanned by *degree*."""
    if leaf_count <= 0 or degree < 2:
        raise ValueError("need leaf_count >= 1 and degree >= 2")
    items = sorted(float(v) for v in values)
    if not items:
        return HETreeNode(0.0, 0.0, 0, None, None, None)
    low, high = items[0], items[-1]
    if high == low:
        high = low + 1.0  # degenerate single-value domain
    width = (high - low) / leaf_count

    leaves: List[HETreeNode] = []
    cursor = 0
    for index in range(leaf_count):
        bin_low = low + index * width
        bin_high = high if index == leaf_count - 1 else bin_low + width
        bucket: List[float] = []
        while cursor < len(items) and (
            items[cursor] < bin_high or index == leaf_count - 1
        ):
            bucket.append(items[cursor])
            cursor += 1
        minimum, maximum, mean = _leaf_stats(bucket)
        leaves.append(HETreeNode(bin_low, bin_high, len(bucket), minimum, maximum, mean))
    return _build_bottom_up(leaves, degree)


def build_hetree_c(
    values: Sequence[float], leaf_count: int = 8, degree: int = 3
) -> HETreeNode:
    """HETree-C: equal-*content* leaves (same number of values each)."""
    if leaf_count <= 0 or degree < 2:
        raise ValueError("need leaf_count >= 1 and degree >= 2")
    items = sorted(float(v) for v in values)
    if not items:
        return HETreeNode(0.0, 0.0, 0, None, None, None)
    per_leaf = max(1, math.ceil(len(items) / leaf_count))

    leaves: List[HETreeNode] = []
    for start in range(0, len(items), per_leaf):
        bucket = items[start : start + per_leaf]
        low = bucket[0]
        following = items[start + per_leaf] if start + per_leaf < len(items) else bucket[-1]
        high = following if following > low else low + 1e-9
        minimum, maximum, mean = _leaf_stats(bucket)
        leaves.append(HETreeNode(low, high, len(bucket), minimum, maximum, mean))
    return _build_bottom_up(leaves, degree)


def fetch_property_values(
    client: SparqlClient, url: str, class_iri: str, property_iri: str
) -> List[float]:
    """Pull the numeric values of one property of one class off an endpoint.

    Non-numeric bindings are skipped -- SynopsViz targets numeric and
    temporal properties only, which is exactly the limitation §4 notes.
    """
    query = (
        f"SELECT ?v WHERE {{ ?s a <{class_iri}> . ?s <{property_iri}> ?v }}"
    )
    result = client.select(url, query)
    values: List[float] = []
    for row in result:
        term = row.get("v")
        if term is None or not hasattr(term, "lexical"):
            continue
        try:
            values.append(float(term.lexical))
        except (TypeError, ValueError):
            continue
    return values


def hetree_to_hierarchy(root: HETreeNode) -> HierarchyNode:
    """Convert a HETree into a HierarchyNode tree for the §3.5 layouts."""

    def convert(node: HETreeNode) -> HierarchyNode:
        out = HierarchyNode(
            node.label(),
            value=float(node.count) if node.is_leaf() else None,
            data={
                "count": node.count,
                "mean": node.mean,
                "min": node.minimum,
                "max": node.maximum,
            },
        )
        for child in node.children:
            out.add_child(convert(child))
        return out

    return convert(root)
