"""repro: a from-scratch reproduction of H-BOLD.

"Providing Effective Visualizations over Big Linked Data"
(Desimoni & Po, EDBT/ICDT 2020 workshops).

Subpackages:

* :mod:`repro.rdf`       -- RDF data model, triple store, serializations
* :mod:`repro.sparql`    -- SPARQL subset engine
* :mod:`repro.endpoint`  -- simulated SPARQL endpoint network
* :mod:`repro.docstore`  -- embedded document store (MongoDB substitute)
* :mod:`repro.community` -- community detection algorithms
* :mod:`repro.viz`       -- layout algorithms + SVG/HTML rendering
* :mod:`repro.datagen`   -- synthetic Linked Data generators
* :mod:`repro.core`      -- H-BOLD itself (the paper's contribution)

Quickstart::

    from repro.datagen import build_world
    from repro.core import HBold

    world = build_world(indexable=20, broken=10, flaky=False)
    app = HBold(world.network)
    app.bootstrap_registry(world.listed_urls)
    app.update_all(world.indexable_urls)
    url = world.indexable_urls[0]
    session = app.explore(url)
    session.start_from_cluster_schema()
    app.render_treemap(url).save("figure4.svg")
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
