"""A SPARQLES-style availability monitor.

§3.1 cites the SPARQLES service (sparqles.ai.wu.ac.at) as the source of
endpoint-availability knowledge.  This module reproduces the part H-BOLD
relies on: a monitor that probes every endpoint on a schedule with a cheap
``ASK`` query, keeps per-endpoint probe histories, and derives the
availability classes SPARQLES reports (the ">99%", "95-99%", "75-95%",
"5-75%", "<5%" buckets).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .clock import SimulationClock
from .errors import EndpointError
from .network import EndpointNetwork, SparqlClient

__all__ = ["AvailabilityMonitor", "ProbeRecord", "AVAILABILITY_BUCKETS"]

#: SPARQLES availability classes: (label, lower bound inclusive)
AVAILABILITY_BUCKETS: Tuple[Tuple[str, float], ...] = (
    (">99%", 0.99),
    ("95-99%", 0.95),
    ("75-95%", 0.75),
    ("5-75%", 0.05),
    ("<5%", 0.0),
)

PROBE_QUERY = "ASK { ?s ?p ?o }"


class ProbeRecord:
    """One availability probe result."""

    __slots__ = ("day", "at_ms", "alive", "latency_ms")

    def __init__(self, day: int, at_ms: float, alive: bool, latency_ms: float):
        self.day = day
        self.at_ms = at_ms
        self.alive = alive
        self.latency_ms = latency_ms

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"<ProbeRecord day={self.day} {state} {self.latency_ms:.0f}ms>"


class AvailabilityMonitor:
    """Probes endpoints daily and aggregates availability statistics."""

    def __init__(self, network: EndpointNetwork, client: Optional[SparqlClient] = None,
                 metrics=None):
        self.network = network
        self.client = client or SparqlClient(network, max_retries=0)
        self._history: Dict[str, List[ProbeRecord]] = {}
        #: optional ``repro.obs.MetricsRegistry``: probes then count into
        #: ``monitor.probes`` / ``monitor.probe_failures`` and feed the
        #: ``monitor.probe_latency_ms`` histogram next to the serving
        #: metrics (registration only -- probe behavior is unchanged).
        self.metrics = metrics
        if metrics is not None:
            self._probes = metrics.counter(
                "monitor.probes", help="availability probes issued"
            )
            self._probe_failures = metrics.counter(
                "monitor.probe_failures", help="probes that found the endpoint down"
            )
            self._probe_latency = metrics.histogram(
                "monitor.probe_latency_ms", help="per-probe simulated latency"
            )

    # -- probing ------------------------------------------------------------

    def probe(self, url: str) -> ProbeRecord:
        """One ASK probe against *url*, recorded in the history."""
        clock: SimulationClock = self.network.clock
        start = clock.now_ms
        try:
            alive = bool(self.client.query(url, PROBE_QUERY))
        except EndpointError:
            alive = False
        record = ProbeRecord(clock.today, start, alive, clock.now_ms - start)
        self._history.setdefault(url, []).append(record)
        if self.metrics is not None:
            self._probes.inc()
            if not alive:
                self._probe_failures.inc()
            self._probe_latency.observe(record.latency_ms)
        return record

    def probe_all(self, urls: Optional[List[str]] = None) -> Dict[str, ProbeRecord]:
        targets = urls if urls is not None else self.network.urls()
        return {url: self.probe(url) for url in targets}

    def run_days(self, days: int, urls: Optional[List[str]] = None) -> None:
        """Probe daily for *days* simulated days."""
        clock = self.network.clock
        for _ in range(days):
            self.probe_all(urls)
            clock.sleep_until_day(clock.today + 1)

    # -- statistics ------------------------------------------------------------

    def history(self, url: str) -> List[ProbeRecord]:
        return list(self._history.get(url, ()))

    def availability(self, url: str) -> float:
        """Fraction of probes that succeeded (1.0 with no probes yet)."""
        records = self._history.get(url)
        if not records:
            return 1.0
        return sum(1 for r in records if r.alive) / len(records)

    def bucket(self, url: str) -> str:
        """The SPARQLES availability class for *url*."""
        ratio = self.availability(url)
        for label, lower in AVAILABILITY_BUCKETS:
            if ratio >= lower:
                return label
        return AVAILABILITY_BUCKETS[-1][0]

    def bucket_census(self, urls: Optional[List[str]] = None) -> Dict[str, int]:
        """How many endpoints fall into each availability class."""
        targets = urls if urls is not None else sorted(self._history)
        census = {label: 0 for label, _ in AVAILABILITY_BUCKETS}
        for url in targets:
            census[self.bucket(url)] += 1
        return census

    def mean_latency_ms(self, url: str) -> Optional[float]:
        """Mean probe latency over successful probes, or None."""
        alive = [r.latency_ms for r in self._history.get(url, ()) if r.alive]
        if not alive:
            return None
        return sum(alive) / len(alive)

    def flapping_endpoints(self, min_transitions: int = 4) -> List[str]:
        """Endpoints whose up/down state changed at least *min_transitions*
        times -- the ones §3.1's daily-retry rule exists for."""
        out = []
        for url, records in sorted(self._history.items()):
            transitions = sum(
                1
                for previous, current in zip(records, records[1:])
                if previous.alive != current.alive
            )
            if transitions >= min_transitions:
                out.append(url)
        return out
