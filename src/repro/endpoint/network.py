"""The endpoint network: a URL-addressed registry of simulated endpoints.

This is the "internet" of the reproduction -- index extraction, the portal
crawler and the presentation layer reach every endpoint through a
:class:`SparqlClient` bound to one :class:`EndpointNetwork`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Union

from ..sparql.results import AskResult, SelectResult
from .clock import SimulationClock
from .endpoint import SparqlEndpoint
from .errors import EndpointError, EndpointUnavailable, UnknownEndpoint

__all__ = ["EndpointNetwork", "SparqlClient"]


class EndpointNetwork:
    """Maps URL -> :class:`SparqlEndpoint`, sharing one simulation clock."""

    def __init__(self, clock: Optional[SimulationClock] = None):
        self.clock = clock or SimulationClock()
        self._endpoints: Dict[str, SparqlEndpoint] = {}

    def register(self, endpoint: SparqlEndpoint) -> SparqlEndpoint:
        if endpoint.url in self._endpoints:
            raise ValueError(f"endpoint already registered at {endpoint.url}")
        if endpoint.clock is not self.clock:
            raise ValueError("endpoint must share the network clock")
        self._endpoints[endpoint.url] = endpoint
        return endpoint

    def deregister(self, url: str) -> bool:
        return self._endpoints.pop(url, None) is not None

    def get(self, url: str) -> SparqlEndpoint:
        endpoint = self._endpoints.get(url)
        if endpoint is None:
            raise UnknownEndpoint(f"no endpoint at {url}", url=url)
        return endpoint

    def __contains__(self, url: str) -> bool:
        return url in self._endpoints

    def __len__(self) -> int:
        return len(self._endpoints)

    def urls(self) -> List[str]:
        return sorted(self._endpoints)

    def __iter__(self) -> Iterator[SparqlEndpoint]:
        for url in self.urls():
            yield self._endpoints[url]


class SparqlClient:
    """A client with retry/timeout policy over an :class:`EndpointNetwork`.

    Retries only *transient* failures (unavailability); feature rejections
    and timeouts surface immediately so the pattern-strategy layer can
    switch approach instead of hammering the endpoint.
    """

    def __init__(
        self,
        network: EndpointNetwork,
        max_retries: int = 2,
        retry_backoff_ms: float = 500.0,
    ):
        self.network = network
        self.max_retries = max_retries
        self.retry_backoff_ms = retry_backoff_ms

    def query(self, url: str, text: str) -> Union[SelectResult, AskResult]:
        endpoint = self.network.get(url)
        attempts = self.max_retries + 1
        last_error: Optional[EndpointError] = None
        for attempt in range(attempts):
            try:
                return endpoint.query(text)
            except EndpointUnavailable as exc:
                last_error = exc
                if attempt + 1 < attempts:
                    self.network.clock.advance(self.retry_backoff_ms * (attempt + 1))
        assert last_error is not None
        raise last_error

    # -- convenience wrappers ---------------------------------------------------

    def select(self, url: str, text: str) -> SelectResult:
        result = self.query(url, text)
        if not isinstance(result, SelectResult):
            raise TypeError(f"expected SELECT result, got {type(result).__name__}")
        return result

    def ask(self, url: str, text: str) -> bool:
        result = self.query(url, text)
        if not isinstance(result, AskResult):
            raise TypeError(f"expected ASK result, got {type(result).__name__}")
        return bool(result)

    def is_alive(self, url: str) -> bool:
        """The availability probe H-BOLD runs before extraction."""
        try:
            return self.ask(url, "ASK { ?s ?p ?o }")
        except EndpointError:
            return False
