"""The endpoint network: a URL-addressed registry of simulated endpoints.

This is the "internet" of the reproduction -- index extraction, the portal
crawler and the presentation layer reach every endpoint through a
:class:`SparqlClient` bound to one :class:`EndpointNetwork`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Union

from ..sparql.results import AskResult, SelectResult
from .clock import SimulationClock
from .endpoint import SparqlEndpoint
from .errors import EndpointError, EndpointUnavailable, UnknownEndpoint

__all__ = ["EndpointNetwork", "SparqlClient"]


class EndpointNetwork:
    """Maps URL -> :class:`SparqlEndpoint`, sharing one simulation clock."""

    def __init__(self, clock: Optional[SimulationClock] = None):
        self.clock = clock or SimulationClock()
        self._endpoints: Dict[str, SparqlEndpoint] = {}

    def register(self, endpoint: SparqlEndpoint) -> SparqlEndpoint:
        if endpoint.url in self._endpoints:
            raise ValueError(f"endpoint already registered at {endpoint.url}")
        if endpoint.clock is not self.clock:
            raise ValueError("endpoint must share the network clock")
        self._endpoints[endpoint.url] = endpoint
        return endpoint

    def deregister(self, url: str) -> bool:
        return self._endpoints.pop(url, None) is not None

    def get(self, url: str) -> SparqlEndpoint:
        endpoint = self._endpoints.get(url)
        if endpoint is None:
            raise UnknownEndpoint(f"no endpoint at {url}", url=url)
        return endpoint

    def __contains__(self, url: str) -> bool:
        return url in self._endpoints

    def __len__(self) -> int:
        return len(self._endpoints)

    def urls(self) -> List[str]:
        return sorted(self._endpoints)

    def __iter__(self) -> Iterator[SparqlEndpoint]:
        for url in self.urls():
            yield self._endpoints[url]


class SparqlClient:
    """A client with retry/timeout policy over an :class:`EndpointNetwork`.

    Retries only *transient* failures (unavailability); feature rejections
    and timeouts surface immediately so the pattern-strategy layer can
    switch approach instead of hammering the endpoint.

    Backoff is seeded exponential with full jitter (the serving tier's
    shared helper), not the old linear ramp: two clients with different
    seeds draw different delays for the same retry, so a fleet of
    crawlers recovering from the same outage spreads its retry storm
    instead of re-synchronizing on the endpoint -- and the total time a
    single call may spend backing off is capped by
    ``max_backoff_total_ms``.
    """

    def __init__(
        self,
        network: EndpointNetwork,
        max_retries: int = 2,
        retry_backoff_ms: float = 500.0,
        backoff_cap_ms: float = 8_000.0,
        max_backoff_total_ms: float = 20_000.0,
        seed: int = 0,
    ):
        self.network = network
        self.max_retries = max_retries
        #: base of the exponential ramp (attempt k draws from
        #: ``U(0, min(cap, base * 2^k))``)
        self.retry_backoff_ms = retry_backoff_ms
        self.backoff_cap_ms = backoff_cap_ms
        self.max_backoff_total_ms = max_backoff_total_ms
        self.seed = seed

    def query(self, url: str, text: str) -> Union[SelectResult, AskResult]:
        # shared with the serving tier's resilience layer; imported lazily
        # so the endpoint package stays importable on its own
        from ..serving.resilience import full_jitter_backoff_ms

        endpoint = self.network.get(url)
        attempts = self.max_retries + 1
        last_error: Optional[EndpointError] = None
        backed_off_ms = 0.0
        for attempt in range(attempts):
            try:
                return endpoint.query(text)
            except EndpointUnavailable as exc:
                last_error = exc
                if attempt + 1 >= attempts:
                    break
                delay_ms = full_jitter_backoff_ms(
                    self.seed, (url, text), attempt,
                    self.retry_backoff_ms, self.backoff_cap_ms,
                )
                if backed_off_ms + delay_ms > self.max_backoff_total_ms:
                    break  # retry budget spent; surface the failure
                self.network.clock.advance(delay_ms)
                backed_off_ms += delay_ms
        assert last_error is not None
        raise last_error

    # -- convenience wrappers ---------------------------------------------------

    def select(self, url: str, text: str) -> SelectResult:
        result = self.query(url, text)
        if not isinstance(result, SelectResult):
            raise TypeError(f"expected SELECT result, got {type(result).__name__}")
        return result

    def ask(self, url: str, text: str) -> bool:
        result = self.query(url, text)
        if not isinstance(result, AskResult):
            raise TypeError(f"expected ASK result, got {type(result).__name__}")
        return bool(result)

    def is_alive(self, url: str) -> bool:
        """The availability probe H-BOLD runs before extraction."""
        try:
            return self.ask(url, "ASK { ?s ?p ?o }")
        except EndpointError:
            return False
