"""Simulated time for the endpoint network.

Everything latency- or schedule-related in the reproduction runs against
this clock instead of wall time, which makes the E1/E3 benchmarks
deterministic and lets 60 simulated days run in milliseconds.

Time is kept in fractional milliseconds since the simulation epoch; days
(for the §3.1 update scheduler) are derived at 86_400_000 ms each.
"""

from __future__ import annotations

__all__ = ["SimulationClock", "MS_PER_DAY"]

MS_PER_DAY = 86_400_000.0


class SimulationClock:
    """A monotonically advancing simulated clock."""

    def __init__(self, start_ms: float = 0.0):
        self._now_ms = float(start_ms)

    @property
    def now_ms(self) -> float:
        return self._now_ms

    @property
    def today(self) -> int:
        """The current simulated day number (0-based)."""
        return int(self._now_ms // MS_PER_DAY)

    def advance(self, delta_ms: float) -> float:
        """Advance by *delta_ms* (must be non-negative); return new time."""
        if delta_ms < 0:
            raise ValueError(f"cannot move time backwards ({delta_ms} ms)")
        self._now_ms += delta_ms
        return self._now_ms

    def advance_days(self, days: float) -> float:
        return self.advance(days * MS_PER_DAY)

    def sleep_until_day(self, day: int) -> None:
        """Jump to the start of *day* (no-op if already past it)."""
        target = day * MS_PER_DAY
        if target > self._now_ms:
            self._now_ms = target

    # -- batch isolation (the simulated worker pool) ----------------------

    def checkpoint(self) -> float:
        """The current time, to hand back to :meth:`restore` later."""
        return self._now_ms

    def restore(self, checkpoint_ms: float) -> None:
        """Rewind to a previously taken :meth:`checkpoint`.

        This is the one sanctioned way time moves backwards, and it exists
        for exactly one caller: the simulated worker pool
        (:mod:`repro.core.parallel`), which runs each task of a batch
        against the batch-start clock, measures the task's elapsed
        simulated time, rewinds, and finally advances once by the parallel
        schedule's makespan.  Observers outside a batch still only ever
        see time move forward.
        """
        if checkpoint_ms > self._now_ms:
            raise ValueError(
                f"checkpoint {checkpoint_ms} is in the future of {self._now_ms}"
            )
        self._now_ms = checkpoint_ms

    def __repr__(self) -> str:
        return f"<SimulationClock day={self.today} t={self._now_ms:.1f}ms>"


class Stopwatch:
    """Measures elapsed simulated time across a code region."""

    def __init__(self, clock: SimulationClock):
        self.clock = clock
        self.start_ms = clock.now_ms

    def elapsed_ms(self) -> float:
        return self.clock.now_ms - self.start_ms
