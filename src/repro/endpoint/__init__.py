"""Simulated SPARQL endpoint network.

The paper indexes 130 live endpoints; offline we reproduce the *behaviour*
that matters to H-BOLD -- implementation quirks (result caps, missing
aggregate support), flaky availability, heterogeneous latency -- with
in-process endpoints wrapping our triple store, all sharing one simulated
clock so experiments are deterministic and fast.
"""

from .availability import (
    AlwaysAvailable,
    AvailabilityModel,
    MarkovAvailability,
    availability_ratio,
)
from .clock import MS_PER_DAY, SimulationClock
from .endpoint import SparqlEndpoint
from .errors import (
    CircuitOpen,
    EndpointError,
    EndpointTimeout,
    EndpointUnavailable,
    QueryRejected,
    UnknownEndpoint,
)
from .monitor import AVAILABILITY_BUCKETS, AvailabilityMonitor, ProbeRecord
from .network import EndpointNetwork, SparqlClient
from .profiles import PROFILES, EndpointProfile, profile_by_name

__all__ = [
    "AVAILABILITY_BUCKETS",
    "AlwaysAvailable",
    "AvailabilityMonitor",
    "AvailabilityModel",
    "CircuitOpen",
    "ProbeRecord",
    "EndpointError",
    "EndpointNetwork",
    "EndpointProfile",
    "EndpointTimeout",
    "EndpointUnavailable",
    "MS_PER_DAY",
    "MarkovAvailability",
    "PROFILES",
    "QueryRejected",
    "SimulationClock",
    "SparqlClient",
    "SparqlEndpoint",
    "UnknownEndpoint",
    "availability_ratio",
    "profile_by_name",
]
