"""Endpoint availability models.

§3.1 of the paper is built on two field observations: endpoints are often
temporarily unavailable ("it might work again after 1 or 2 days"), and the
SPARQLES monitor is cited for availability data.  We model each endpoint's
availability as a two-state Markov chain sampled per simulated day:

* state UP: goes down next day with probability ``p_fail``
* state DOWN: recovers next day with probability ``p_recover``

which produces exactly the short-outage behaviour the paper describes
(mean outage length = 1/p_recover days).  Traces are deterministic per
(seed, endpoint-url) so experiments are reproducible.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Optional, Tuple

__all__ = ["AvailabilityModel", "AlwaysAvailable", "MarkovAvailability", "availability_ratio"]


class AvailabilityModel:
    """Interface: is the endpoint reachable on a given simulated day?"""

    def is_available(self, day: int) -> bool:
        raise NotImplementedError


class AlwaysAvailable(AvailabilityModel):
    """The trivial model for tests and for rock-solid endpoints."""

    def is_available(self, day: int) -> bool:
        return True

    def __repr__(self) -> str:
        return "AlwaysAvailable()"


class MarkovAvailability(AvailabilityModel):
    """Two-state Markov availability, lazily sampled and memoized per day."""

    def __init__(
        self,
        url: str,
        p_fail: float = 0.08,
        p_recover: float = 0.55,
        seed: int = 0,
        start_up: bool = True,
    ):
        if not 0.0 <= p_fail <= 1.0 or not 0.0 < p_recover <= 1.0:
            raise ValueError(f"bad Markov parameters p_fail={p_fail} p_recover={p_recover}")
        self.url = url
        self.p_fail = p_fail
        self.p_recover = p_recover
        digest = hashlib.sha256(f"{seed}:{url}".encode("utf-8")).digest()
        self._rng = random.Random(int.from_bytes(digest[:8], "big"))
        self._states: List[bool] = [start_up]

    def is_available(self, day: int) -> bool:
        if day < 0:
            raise ValueError(f"negative day {day}")
        while len(self._states) <= day:
            previous = self._states[-1]
            if previous:
                self._states.append(self._rng.random() >= self.p_fail)
            else:
                self._states.append(self._rng.random() < self.p_recover)
        return self._states[day]

    def outage_days(self, horizon: int) -> List[int]:
        """Days in [0, horizon) on which the endpoint is down."""
        return [day for day in range(horizon) if not self.is_available(day)]

    def outage_windows_ms(self, horizon_days: int) -> List[Tuple[float, float]]:
        """The trace's down-time as ``[start_ms, end_ms)`` clock windows.

        Consecutive down days merge into one window, so a 3-day outage is
        one interval on the simulation timeline.  This is the bridge the
        serving tier's fault plans use: a Markov day trace becomes a set
        of injectable outage windows on the shared clock, which is how a
        long-horizon serving run finally crosses day boundaries.
        """
        from .clock import MS_PER_DAY

        windows: List[Tuple[float, float]] = []
        start: Optional[int] = None
        for day in range(horizon_days):
            if not self.is_available(day):
                if start is None:
                    start = day
            elif start is not None:
                windows.append((start * MS_PER_DAY, day * MS_PER_DAY))
                start = None
        if start is not None:
            windows.append((start * MS_PER_DAY, horizon_days * MS_PER_DAY))
        return windows

    def __repr__(self) -> str:
        return (
            f"MarkovAvailability({self.url!r}, p_fail={self.p_fail}, "
            f"p_recover={self.p_recover})"
        )


def availability_ratio(model: AvailabilityModel, horizon: int) -> float:
    """Fraction of days in [0, horizon) the endpoint is up."""
    if horizon <= 0:
        return 1.0
    up = sum(1 for day in range(horizon) if model.is_available(day))
    return up / horizon
