"""Errors raised by the simulated endpoint network.

Mirrors the failure modes a SPARQL client sees against real endpoints:
unreachable hosts, server-side timeouts, feature rejections and truncated
results (the last one is a *flag*, not an error -- Virtuoso truncates
silently, which is precisely why pattern strategies exist).
"""

from __future__ import annotations

__all__ = [
    "CircuitOpen",
    "EndpointError",
    "EndpointUnavailable",
    "EndpointTimeout",
    "QueryRejected",
    "UnknownEndpoint",
]


class EndpointError(Exception):
    """Base class for endpoint-level failures."""

    def __init__(self, message: str, url: str = ""):
        super().__init__(message)
        self.url = url


class EndpointUnavailable(EndpointError):
    """The endpoint did not answer (down on this simulated day)."""


class EndpointTimeout(EndpointError):
    """Execution exceeded the endpoint's server-side timeout."""


class QueryRejected(EndpointError):
    """The endpoint implementation does not support this query feature."""


class UnknownEndpoint(EndpointError):
    """No endpoint is registered at this URL (DNS failure analog)."""


class CircuitOpen(EndpointError):
    """The client-side circuit breaker refused to dispatch the call.

    Unlike the other errors here this one never crossed the wire: the
    resilience layer (:mod:`repro.serving.resilience`) tracks consecutive
    failures per endpoint and fails fast while the breaker is open, so a
    dead endpoint is not hammered with doomed connect attempts.
    """
