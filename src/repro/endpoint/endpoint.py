"""The simulated SPARQL endpoint.

Wraps one :class:`~repro.rdf.graph.Graph` behind the behaviour of a real
deployment: an implementation profile (capabilities + latency model), an
availability model, and a shared simulation clock that all query latency
is charged to.  The H-BOLD index-extraction code talks to these endpoints
exactly as it would to remote ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Union

from ..obs.trace import NULL_TRACER
from ..rdf.graph import Graph
from ..sparql.evaluator import QueryEngine
from ..sparql.nodes import AskQuery, SelectQuery
from ..sparql.parser import parse_query
from ..sparql.results import AskResult, SelectResult
from .availability import AlwaysAvailable, AvailabilityModel
from .clock import SimulationClock
from .errors import EndpointTimeout, EndpointUnavailable, QueryRejected
from .profiles import EndpointProfile, PROFILES

__all__ = ["SparqlEndpoint"]


class EndpointStats:
    """Counters the benchmarks read off each endpoint."""

    __slots__ = ("queries", "failures", "timeouts", "rejected", "truncated", "total_latency_ms")

    def __init__(self):
        self.queries = 0
        self.failures = 0
        self.timeouts = 0
        self.rejected = 0
        self.truncated = 0
        self.total_latency_ms = 0.0


class SparqlEndpoint:
    """One endpoint: a graph + a profile + availability + latency."""

    def __init__(
        self,
        url: str,
        graph: Graph,
        clock: SimulationClock,
        profile: Union[str, EndpointProfile] = "virtuoso",
        availability: Optional[AvailabilityModel] = None,
        seed: int = 0,
        title: str = "",
        strategy: str = "hash",
        shards: Optional[int] = None,
    ):
        if isinstance(profile, str):
            profile = PROFILES[profile]
        if shards is not None and not getattr(graph, "is_sharded", False):
            # The intra-endpoint parallelism knob: host this endpoint's
            # dataset on a subject-hash-sharded store so spanning scans
            # run partition-parallel (and the latency model below charges
            # the per-shard makespan instead of the sequential scan).
            from ..rdf.sharding import ShardedTripleStore

            graph = ShardedTripleStore.from_graph(graph, shards)
        self.url = url
        self.graph = graph
        self.clock = clock
        self.profile = profile
        self.availability = availability or AlwaysAvailable()
        self.title = title or url
        #: BGP pipeline of the backing engine: "hash" (dictionary-encoded
        #: hash joins, the default), "stream" (lazy volcano pipeline) or
        #: "scan" (legacy nested-loop joins).
        self.strategy = strategy
        self._engine = QueryEngine(graph, strategy=strategy)
        digest = hashlib.sha256(f"{seed}:{url}:latency".encode("utf-8")).digest()
        self._rng = random.Random(int.from_bytes(digest[:8], "big"))
        self.stats = EndpointStats()
        #: span recorder (``repro.obs``); attach a real tracer with
        #: :meth:`attach_obs` to trace queries end-to-end.
        self.obs = NULL_TRACER

    def attach_obs(self, tracer) -> None:
        """Attach a span recorder to this endpoint *and* its engine, so
        ``endpoint.query`` spans nest the engine's operator spans."""
        self.obs = tracer
        self._engine.obs = tracer

    def explain(self, text: str):
        """EXPLAIN ANALYZE *text* against the backing engine.

        Runs under a private tracer, charges no simulated latency and
        records nothing in ``stats`` -- a diagnostic read, not a query.
        Returns a :class:`~repro.obs.explain.ExplainReport`.
        """
        return self._engine.explain(text)

    def __repr__(self) -> str:
        return f"<SparqlEndpoint {self.url!r} profile={self.profile.name} triples={len(self.graph)}>"

    # -- querying -------------------------------------------------------------

    def query(
        self,
        text: str,
        *,
        latency_scale: float = 1.0,
        timeout_scale: float = 1.0,
    ) -> Union[SelectResult, AskResult]:
        """Execute *text*, charging simulated latency to the clock.

        Raises :class:`EndpointUnavailable` when the availability model says
        the endpoint is down today, :class:`QueryRejected` for unsupported
        features, :class:`EndpointTimeout` when execution cost exceeds the
        profile's timeout.  SELECT results may come back *truncated* (with
        ``result.truncated`` set) when the profile caps result rows.

        *latency_scale* multiplies the execution-cost term of the latency
        model (>= 1 models a degraded backend: an overloaded shard, a cold
        cache, a noisy neighbour) and *timeout_scale* scales the profile's
        server-side deadline (< 1 models a timeout-rate spike).  Both are
        fault-injection hooks -- the serving tier's
        :class:`~repro.serving.faults.FaultInjector` drives them from its
        seeded timeline; direct callers leave them at 1.0.  A slowdown can
        push a query over the (possibly shrunk) deadline, so injected
        latency naturally turns into real timeouts.

        Every path through here -- success or failure -- charges its clock
        advance through :meth:`_charge`, so ``stats.total_latency_ms``
        always equals the simulated time this endpoint consumed.  The
        serving tier's percentiles are derived from exactly that invariant.
        """
        obs = self.obs
        if not obs.enabled:
            return self._query(text, latency_scale, timeout_scale)
        with obs.span("endpoint.query", url=self.url, profile=self.profile.name):
            return self._query(text, latency_scale, timeout_scale)

    def _query(
        self,
        text: str,
        latency_scale: float,
        timeout_scale: float,
    ) -> Union[SelectResult, AskResult]:
        self.stats.queries += 1
        if not self.availability.is_available(self.clock.today):
            # A dead endpoint still costs a connect attempt before failing.
            self._charge(self._jitter(self.profile.connect_ms * 2.0))
            self.stats.failures += 1
            raise EndpointUnavailable(f"endpoint {self.url} is unavailable", url=self.url)

        parsed = parse_query(text)

        if not self.profile.supports_property_paths and _contains_path(parsed):
            self._charge(self._jitter(self.profile.connect_ms))
            self.stats.rejected += 1
            raise QueryRejected(
                f"endpoint {self.url} ({self.profile.name}) rejects property paths",
                url=self.url,
            )

        if isinstance(parsed, SelectQuery):
            if parsed.has_aggregates() and not self.profile.supports_aggregates:
                self._charge(self._jitter(self.profile.connect_ms))
                self.stats.rejected += 1
                raise QueryRejected(
                    f"endpoint {self.url} ({self.profile.name}) rejects aggregates",
                    url=self.url,
                )
            if parsed.order_by and not self.profile.supports_order_by:
                self._charge(self._jitter(self.profile.connect_ms))
                self.stats.rejected += 1
                raise QueryRejected(
                    f"endpoint {self.url} ({self.profile.name}) rejects ORDER BY",
                    url=self.url,
                )

        result = self._engine.run(parsed)
        # Snapshot the engine's per-query stats right here: exec_stats is
        # reset by run(), but _estimate_latency must never read it off the
        # shared engine later (a caller that skips execution -- e.g. the
        # serving tier's result cache -- would see the previous query's
        # shard timing ratio).
        exec_stats = self._engine.exec_stats_snapshot()

        latency = self._estimate_latency(parsed, result, exec_stats, latency_scale)
        deadline_ms = self.profile.timeout_ms * timeout_scale
        if latency > deadline_ms:
            # The server kills the query at its timeout; the wire still
            # sees the same dispersion as any other response, so the
            # deadline is jittered like every other charge.
            self._charge(self._jitter(deadline_ms))
            self.stats.timeouts += 1
            if self.obs.enabled:
                self.obs.note(outcome="timeout", deadline_ms=round(deadline_ms, 6))
            raise EndpointTimeout(
                f"endpoint {self.url} timed out after {deadline_ms:.0f} ms",
                url=self.url,
            )
        self._charge(latency)
        if self.obs.enabled:
            self.obs.note(outcome="ok", latency_ms=round(latency, 6))

        if isinstance(result, SelectResult):
            cap = self.profile.max_result_rows
            if cap is not None and len(result.rows) > cap:
                result = SelectResult(result.variables, result.rows[:cap], truncated=True)
                self.stats.truncated += 1
        return result

    def _charge(self, latency_ms: float) -> None:
        """Advance the clock *and* account the time -- never one without
        the other.  ``stats.total_latency_ms == clock delta`` is the
        invariant the serving tier's latency percentiles rest on; failure
        paths (unavailable, rejected, timed out) consume simulated time
        like any other response and must show up in the mean."""
        self.clock.advance(latency_ms)
        self.stats.total_latency_ms += latency_ms

    def _estimate_latency(self, parsed, result, exec_stats, latency_scale: float = 1.0) -> float:
        profile = self.profile
        latency = profile.connect_ms + profile.parse_ms
        pattern_count = _count_patterns(parsed)
        latency += pattern_count * profile.per_pattern_ms
        # Execution cost grows with dataset size (index lookups aren't free)
        # and with the result cardinality.  latency_scale is the injected
        # backend-slowdown multiplier; it applies to execution only (the
        # connect handshake and response marshalling are unaffected by a
        # struggling shard).
        execution = len(self.graph) * 0.0004 * latency_scale
        if getattr(self.graph, "is_sharded", False):
            # Partition-parallel execution: scale the dataset-size term by
            # what this query actually measured on the shard pool (makespan
            # over sequential sum); a query that ran no spanning scan pays
            # the static max-shard-share bound instead.  *exec_stats* is
            # the snapshot taken immediately after this query's run() --
            # passed explicitly so a stale engine read can never leak one
            # query's shard ratio into another's estimate.
            sequential = exec_stats.get("shard_sequential_ms", 0.0)
            if sequential > 0.0:
                execution *= exec_stats.get("shard_parallel_ms", sequential) / sequential
            else:
                execution *= self.graph.parallel_factor()
        latency += execution
        if isinstance(result, SelectResult):
            latency += len(result.rows) * profile.per_solution_ms
        if isinstance(parsed, SelectQuery) and parsed.has_aggregates():
            latency += profile.aggregate_overhead_ms
        return self._jitter(latency)

    def _jitter(self, value: float) -> float:
        spread = self.profile.jitter
        return value * (1.0 + self._rng.uniform(-spread, spread))

    # -- test/bench helpers ------------------------------------------------------

    def is_up(self) -> bool:
        return self.availability.is_available(self.clock.today)

    def triple_count(self) -> int:
        return len(self.graph)


def _exists_groups(expression):
    """Yield the group of every ``EXISTS``/``NOT EXISTS`` inside *expression*.

    ``FILTER EXISTS { ... }`` embeds a full graph pattern in expression
    position; anything that walks a query's patterns (feature detection,
    pattern counting) must descend through here or a profile check can be
    smuggled past inside a filter.  Walks every Expression slot, including
    lists (function arguments, IN choices) and nested EXISTS.
    """
    from ..sparql.nodes import Expression, ExistsExpression

    if isinstance(expression, ExistsExpression):
        yield expression.group
        return
    for slot in expression.__slots__:
        value = getattr(expression, slot)
        if isinstance(value, Expression):
            yield from _exists_groups(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, Expression):
                    yield from _exists_groups(item)


def _contains_path(parsed) -> bool:
    """Does the query use a SPARQL 1.1 property path in any pattern?

    Descends into FILTER ``EXISTS``/``NOT EXISTS`` groups too: a path
    hidden inside an EXISTS still executes on the endpoint, so a profile
    that rejects paths must reject it.
    """
    from ..sparql.nodes import (
        FilterPattern,
        GroupPattern,
        OptionalPattern,
        TriplePattern,
        UnionPattern,
    )
    from ..sparql.paths import is_path

    def walk(group: GroupPattern) -> bool:
        for element in group.elements:
            if isinstance(element, TriplePattern) and is_path(element.predicate):
                return True
            if isinstance(element, OptionalPattern) and walk(element.group):
                return True
            if isinstance(element, UnionPattern) and any(
                walk(alt) for alt in element.alternatives
            ):
                return True
            if isinstance(element, GroupPattern) and walk(element):
                return True
            if isinstance(element, FilterPattern) and any(
                walk(group) for group in _exists_groups(element.expression)
            ):
                return True
        return False

    if isinstance(parsed, (SelectQuery, AskQuery)):
        return walk(parsed.where)
    return False


def _count_patterns(parsed) -> int:
    """Rough BGP size: triple patterns in the WHERE clause (any nesting,
    including the groups of FILTER ``EXISTS``/``NOT EXISTS`` -- those
    patterns execute per candidate solution, so the latency model must
    see them)."""
    from ..sparql.nodes import (
        FilterPattern,
        GroupPattern,
        OptionalPattern,
        TriplePattern,
        UnionPattern,
        ValuesPattern,
    )

    def count_group(group: GroupPattern) -> int:
        total = 0
        for element in group.elements:
            if isinstance(element, TriplePattern):
                total += 1
            elif isinstance(element, OptionalPattern):
                total += count_group(element.group)
            elif isinstance(element, UnionPattern):
                total += sum(count_group(alt) for alt in element.alternatives)
            elif isinstance(element, GroupPattern):
                total += count_group(element)
            elif isinstance(element, FilterPattern):
                total += sum(
                    count_group(exists_group)
                    for exists_group in _exists_groups(element.expression)
                )
            elif isinstance(element, ValuesPattern):
                total += 0
        return total

    if isinstance(parsed, (SelectQuery, AskQuery)):
        return count_group(parsed.where)
    return 1
