"""Endpoint implementation profiles.

"The Index Extraction is able to deal with the performance issues of the
different implementations of SPARQL endpoints by using pattern strategies"
(§2.1, citing Benedetti et al. 2014).  Real endpoints differ wildly:
Virtuoso instances cap result sets at 10k rows, some Fuseki and older
Sesame deployments reject aggregate queries, timeouts vary by an order of
magnitude.  A profile captures those differences so the extraction layer
has something real to adapt to.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["EndpointProfile", "PROFILES", "profile_by_name"]


class EndpointProfile:
    """Capabilities and performance characteristics of one implementation."""

    __slots__ = (
        "name",
        "supports_aggregates",
        "supports_order_by",
        "supports_property_paths",
        "max_result_rows",
        "timeout_ms",
        "connect_ms",
        "parse_ms",
        "per_solution_ms",
        "per_pattern_ms",
        "aggregate_overhead_ms",
        "jitter",
    )

    def __init__(
        self,
        name: str,
        supports_aggregates: bool = True,
        supports_order_by: bool = True,
        supports_property_paths: bool = True,
        max_result_rows: Optional[int] = 10_000,
        timeout_ms: float = 60_000.0,
        connect_ms: float = 120.0,
        parse_ms: float = 5.0,
        per_solution_ms: float = 0.08,
        per_pattern_ms: float = 15.0,
        aggregate_overhead_ms: float = 250.0,
        jitter: float = 0.25,
    ):
        self.name = name
        #: False models endpoints that reject COUNT/GROUP BY outright
        self.supports_aggregates = supports_aggregates
        self.supports_order_by = supports_order_by
        #: False models pre-SPARQL-1.1 stores (no a/rdfs:subClassOf* etc.)
        self.supports_property_paths = supports_property_paths
        #: None means unlimited; an int silently truncates (Virtuoso-style)
        self.max_result_rows = max_result_rows
        #: server-side execution cap; queries over it raise a timeout
        self.timeout_ms = timeout_ms
        self.connect_ms = connect_ms
        self.parse_ms = parse_ms
        self.per_solution_ms = per_solution_ms
        self.per_pattern_ms = per_pattern_ms
        self.aggregate_overhead_ms = aggregate_overhead_ms
        #: relative latency jitter (0.25 -> +-25%), drawn from a seeded RNG
        self.jitter = jitter

    def __repr__(self) -> str:
        return f"<EndpointProfile {self.name!r}>"


#: The implementation mix used across the simulated endpoint population.
#: Shares below roughly follow the SPARQLES census: Virtuoso dominates,
#: Fuseki and "other/unknown" split most of the rest.
PROFILES: Dict[str, EndpointProfile] = {
    "virtuoso": EndpointProfile(
        "virtuoso",
        supports_aggregates=True,
        max_result_rows=10_000,
        connect_ms=100.0,
        per_solution_ms=0.05,
        per_pattern_ms=10.0,
        aggregate_overhead_ms=180.0,
    ),
    "fuseki": EndpointProfile(
        "fuseki",
        supports_aggregates=True,
        max_result_rows=None,
        connect_ms=140.0,
        per_solution_ms=0.09,
        per_pattern_ms=18.0,
        aggregate_overhead_ms=260.0,
    ),
    "legacy-sesame": EndpointProfile(
        "legacy-sesame",
        supports_aggregates=False,  # pre-SPARQL-1.1 deployments
        supports_order_by=True,
        supports_property_paths=False,
        max_result_rows=5_000,
        connect_ms=220.0,
        per_solution_ms=0.16,
        per_pattern_ms=30.0,
    ),
    "4store": EndpointProfile(
        "4store",
        supports_aggregates=False,
        supports_order_by=False,
        supports_property_paths=False,
        max_result_rows=1_000,
        connect_ms=180.0,
        per_solution_ms=0.12,
        per_pattern_ms=22.0,
    ),
    "slow-shared-host": EndpointProfile(
        "slow-shared-host",
        supports_aggregates=True,
        max_result_rows=2_000,
        timeout_ms=20_000.0,
        connect_ms=600.0,
        parse_ms=20.0,
        per_solution_ms=0.5,
        per_pattern_ms=80.0,
        aggregate_overhead_ms=900.0,
        jitter=0.5,
    ),
}


def profile_by_name(name: str) -> EndpointProfile:
    """Look up a profile; raises KeyError with the known names listed."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown endpoint profile {name!r}; known: {sorted(PROFILES)}"
        ) from None
