"""DCAT catalogs for the three open-data portals of §3.3.

The paper crawls the European Data Portal, the EU Open Data Portal and the
IO Data Science portal of Paris-Saclay with the Listing 1 DCAT query and
finds 65, 9 and 15 SPARQL endpoints respectively; 19 of those 89 were
already in H-BOLD's registry, so the crawl nets +70 listed endpoints
(610 -> 680), of which 20 turn out to be indexable (110 -> 130).

This module generates DCAT catalog graphs reproducing that census exactly:
each portal holds ``dcat:Dataset`` records with ``dcat:distribution`` ->
``dcat:accessURL`` links, a controlled number of which match the
``regex(?url, 'sparql')`` filter, plus plain download distributions (CSV,
JSON) that must NOT match.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Sequence, Tuple

from ..rdf.graph import Graph
from ..rdf.namespaces import DCAT, DCTERMS, RDF
from ..rdf.terms import IRI, Literal

__all__ = [
    "PortalCensus",
    "PORTAL_CENSUS",
    "build_portal_catalog",
    "build_all_portals",
]


class PortalCensus:
    """How many endpoints one portal contributes (paper numbers)."""

    __slots__ = ("key", "title", "sparql_endpoints", "overlapping", "plain_datasets")

    def __init__(
        self,
        key: str,
        title: str,
        sparql_endpoints: int,
        overlapping: int,
        plain_datasets: int,
    ):
        if overlapping > sparql_endpoints:
            raise ValueError("overlap cannot exceed endpoint count")
        self.key = key
        self.title = title
        #: datasets whose distribution accessURL contains 'sparql'
        self.sparql_endpoints = sparql_endpoints
        #: how many of those URLs are already in the H-BOLD registry
        self.overlapping = overlapping
        #: decoy datasets with only file-download distributions
        self.plain_datasets = plain_datasets


#: The paper's census: 65 + 9 + 15 = 89 discovered, 19 overlapping -> +70 new.
PORTAL_CENSUS: Tuple[PortalCensus, ...] = (
    PortalCensus("edp", "European Data Portal", 65, 15, 140),
    PortalCensus("euodp", "EU Open Data Portal", 9, 2, 40),
    PortalCensus("iodata", "IO Data Science of Paris", 15, 2, 25),
)

_FORMATS = ("csv", "json", "xml", "xlsx", "zip")


def build_portal_catalog(
    census: PortalCensus,
    known_urls: Sequence[str],
    seed: int = 0,
) -> Tuple[Graph, List[str]]:
    """Build one portal's DCAT catalog.

    ``known_urls`` supplies the registry URLs reused for the overlapping
    entries (the first ``census.overlapping`` of them, deterministically).
    Returns ``(catalog graph, list of sparql endpoint URLs in the catalog)``.
    """
    if len(known_urls) < census.overlapping:
        raise ValueError(
            f"portal {census.key}: need {census.overlapping} known urls, "
            f"got {len(known_urls)}"
        )
    digest = hashlib.sha256(f"{seed}:{census.key}".encode("utf-8")).digest()
    rng = random.Random(int.from_bytes(digest[:8], "big"))

    base = f"http://{census.key}.example.org"
    graph = Graph(identifier=f"portal-{census.key}")
    endpoint_urls: List[str] = []

    overlap_urls = list(known_urls[: census.overlapping])
    new_count = census.sparql_endpoints - census.overlapping
    new_urls = [
        f"http://lod-{census.key}-{index}.example.org/sparql" for index in range(new_count)
    ]
    sparql_urls = overlap_urls + new_urls
    rng.shuffle(sparql_urls)

    for index, url in enumerate(sparql_urls):
        dataset = IRI(f"{base}/dataset/sparql-{index}")
        distribution = IRI(f"{base}/distribution/sparql-{index}")
        graph.add_triple(dataset, RDF.type, DCAT.Dataset)
        graph.add_triple(
            dataset, DCTERMS.title, Literal(f"{census.title} linked dataset {index}")
        )
        graph.add_triple(dataset, DCAT.distribution, distribution)
        graph.add_triple(distribution, RDF.type, DCAT.Distribution)
        graph.add_triple(distribution, DCAT.accessURL, IRI(url))
        endpoint_urls.append(url)

    for index in range(census.plain_datasets):
        dataset = IRI(f"{base}/dataset/file-{index}")
        graph.add_triple(dataset, RDF.type, DCAT.Dataset)
        graph.add_triple(
            dataset, DCTERMS.title, Literal(f"{census.title} tabular dataset {index}")
        )
        # one or two plain file distributions
        for copy in range(rng.randint(1, 2)):
            fmt = rng.choice(_FORMATS)
            distribution = IRI(f"{base}/distribution/file-{index}-{copy}")
            graph.add_triple(dataset, DCAT.distribution, distribution)
            graph.add_triple(distribution, RDF.type, DCAT.Distribution)
            graph.add_triple(
                distribution,
                DCAT.accessURL,
                IRI(f"{base}/download/file-{index}-{copy}.{fmt}"),
            )

    return graph, endpoint_urls


def build_all_portals(
    known_urls: Sequence[str], seed: int = 0, scale: float = 1.0
) -> Dict[str, Tuple[Graph, List[str]]]:
    """Build the three portals, spreading distinct overlap URLs across them.

    Returns ``{portal key: (catalog graph, sparql urls)}``.  The overlap
    sets of the three portals are disjoint so the total overlap is exactly
    the sum of the per-portal census values (19 at scale=1).  ``scale`` < 1
    shrinks every census count proportionally (minimum 1 endpoint per
    portal) so tests can run tiny worlds.
    """
    censuses = PORTAL_CENSUS
    if scale != 1.0:
        censuses = tuple(
            PortalCensus(
                census.key,
                census.title,
                max(1, int(census.sparql_endpoints * scale)),
                min(
                    max(0, int(census.overlapping * scale)),
                    max(0, int(census.sparql_endpoints * scale)) - 0,
                ),
                max(1, int(census.plain_datasets * scale)),
            )
            for census in PORTAL_CENSUS
        )
    total_overlap = sum(census.overlapping for census in censuses)
    if len(known_urls) < total_overlap:
        raise ValueError(
            f"need at least {total_overlap} known urls for overlaps, got {len(known_urls)}"
        )
    out: Dict[str, Tuple[Graph, List[str]]] = {}
    cursor = 0
    for census in censuses:
        chunk = known_urls[cursor : cursor + census.overlapping]
        cursor += census.overlapping
        out[census.key] = build_portal_catalog(census, chunk, seed=seed)
    return out
