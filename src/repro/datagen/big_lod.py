"""Parametric generator for "Big Linked Data" schema structure.

H-BOLD's motivation is datasets whose Schema Summary has too many classes
to read as a plain graph.  This generator produces DBpedia-like sources:
``class_count`` classes organized into ``group_count`` latent topical
groups, with dense object-property connectivity inside groups and sparse
connectivity across groups -- exactly the structure community detection is
supposed to recover -- plus a Zipfian instance-count skew.
"""

from __future__ import annotations

import hashlib
import random
from typing import List

from ..rdf.graph import Graph
from .spec import ClassSpec, DatasetSpec, ObjectPropertySpec, instantiate

__all__ = ["big_lod_spec", "big_lod_graph"]

_TOPICS = (
    "Place", "Person", "Work", "Organisation", "Species", "Event",
    "Device", "Disease", "Vehicle", "Building", "Food", "Sport",
    "Award", "Language", "River", "Mountain",
)


def big_lod_spec(
    class_count: int = 120,
    group_count: int = 8,
    instances_per_class: int = 40,
    intra_density: float = 0.35,
    inter_density: float = 0.03,
    seed: int = 0,
    name: str = "biglod",
) -> DatasetSpec:
    """Build a clustered big-LD spec.

    ``intra_density`` / ``inter_density`` control the probability that an
    object property connects a class pair inside / across latent groups.
    Instance counts follow a Zipf-like ``1/rank`` skew scaled so the mean
    is *instances_per_class*.
    """
    if class_count <= 0 or group_count <= 0:
        raise ValueError("class_count and group_count must be positive")
    if group_count > class_count:
        group_count = class_count
    digest = hashlib.sha256(f"{seed}:{name}:spec".encode("utf-8")).digest()
    rng = random.Random(int.from_bytes(digest[:8], "big"))

    # Zipf-like instance counts, shuffled so rank doesn't correlate with group.
    harmonic = sum(1.0 / rank for rank in range(1, class_count + 1))
    budget = instances_per_class * class_count
    counts = [
        max(1, int(budget * (1.0 / rank) / harmonic)) for rank in range(1, class_count + 1)
    ]
    rng.shuffle(counts)

    classes: List[ClassSpec] = []
    group_of: List[int] = []
    for index in range(class_count):
        group = index % group_count
        topic = _TOPICS[group % len(_TOPICS)]
        class_name = f"{topic}Type{index}"
        classes.append(
            ClassSpec(
                class_name,
                counts[index],
                datatype_properties=["label", "comment"] + (
                    ["measureValue"] if rng.random() < 0.3 else []
                ),
            )
        )
        group_of.append(group)

    properties: List[ObjectPropertySpec] = []
    for i in range(class_count):
        for j in range(class_count):
            if i == j:
                continue
            same_group = group_of[i] == group_of[j]
            probability = intra_density if same_group else inter_density
            if rng.random() < probability:
                properties.append(
                    ObjectPropertySpec(
                        f"linksTo{j}From{i}",
                        classes[i].name,
                        classes[j].name,
                        density=rng.choice((0.2, 0.5, 1.0)),
                    )
                )

    return DatasetSpec(name, f"http://biglod.example.org/{name}/", classes, properties)


def big_lod_graph(
    class_count: int = 120,
    group_count: int = 8,
    instances_per_class: int = 40,
    seed: int = 0,
    **spec_options,
) -> Graph:
    """Instantiate a big-LD source directly."""
    spec = big_lod_spec(
        class_count=class_count,
        group_count=group_count,
        instances_per_class=instances_per_class,
        seed=seed,
        **spec_options,
    )
    return instantiate(spec, seed=seed)
