"""Synthetic Linked Data generators.

The paper evaluates on live sources we cannot reach offline; these seeded
generators reproduce their *structure*: the Scholarly LD of Figures 2/7,
parametric "Big LOD" sources with latent topical groups, government and
TRAFAIR-style sensor datasets, the three DCAT portal catalogs of §3.3
(with the exact 65/9/15 endpoint census), and the full endpoint-population
world (610 listed / 110 indexable, growing to 680/130 after the crawl).
"""

from .big_lod import big_lod_graph, big_lod_spec
from .government import government_graph, government_spec, trafair_graph, trafair_spec
from .population import World, build_world
from .portals import (
    PORTAL_CENSUS,
    PortalCensus,
    build_all_portals,
    build_portal_catalog,
)
from .scholarly import SCHOLARLY_NAMESPACE, scholarly_graph, scholarly_spec
from .spec import ClassSpec, DatasetSpec, ObjectPropertySpec, instantiate

__all__ = [
    "ClassSpec",
    "DatasetSpec",
    "ObjectPropertySpec",
    "PORTAL_CENSUS",
    "PortalCensus",
    "SCHOLARLY_NAMESPACE",
    "World",
    "big_lod_graph",
    "big_lod_spec",
    "build_all_portals",
    "build_portal_catalog",
    "build_world",
    "government_graph",
    "government_spec",
    "instantiate",
    "scholarly_graph",
    "scholarly_spec",
    "trafair_graph",
    "trafair_spec",
]
