"""Declarative dataset specifications and their instantiation into graphs.

Every synthetic Linked Data source in the reproduction is described by a
:class:`DatasetSpec` -- classes with instance counts, datatype properties,
and object properties with densities -- and materialized into a
:class:`~repro.rdf.graph.Graph` by :func:`instantiate`.  Generation is
fully deterministic per seed.

The specs are designed so the *structural* statistics that drive H-BOLD's
visualizations (number of classes, degree distribution, instance skew)
match what the paper's datasets exhibit; the actual entities are synthetic.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..rdf.graph import Graph
from ..rdf.namespaces import RDF, RDFS, Namespace
from ..rdf.terms import IRI, Literal

__all__ = ["ClassSpec", "ObjectPropertySpec", "DatasetSpec", "instantiate"]


class ClassSpec:
    """One class: its local name, instance count and datatype properties."""

    __slots__ = ("name", "instances", "datatype_properties", "label")

    def __init__(
        self,
        name: str,
        instances: int,
        datatype_properties: Sequence[str] = (),
        label: Optional[str] = None,
    ):
        if instances < 0:
            raise ValueError(f"negative instance count for {name!r}")
        self.name = name
        self.instances = instances
        self.datatype_properties = list(datatype_properties)
        self.label = label or name

    def __repr__(self) -> str:
        return f"ClassSpec({self.name!r}, instances={self.instances})"


class ObjectPropertySpec:
    """One object property: domain class -> range class with a density.

    ``density`` is the expected number of outgoing links *per source
    instance* (fractional densities give sparse links).
    """

    __slots__ = ("name", "domain", "range", "density")

    def __init__(self, name: str, domain: str, range: str, density: float = 1.0):
        if density < 0:
            raise ValueError(f"negative density for {name!r}")
        self.name = name
        self.domain = domain
        self.range = range
        self.density = density

    def __repr__(self) -> str:
        return f"ObjectPropertySpec({self.name!r}, {self.domain}->{self.range})"


class DatasetSpec:
    """A complete dataset description ready to instantiate."""

    def __init__(
        self,
        name: str,
        namespace: str,
        classes: Sequence[ClassSpec],
        object_properties: Sequence[ObjectPropertySpec] = (),
        subclass_axioms: Sequence[Tuple[str, str]] = (),
    ):
        self.name = name
        self.namespace = Namespace(namespace)
        self.classes = list(classes)
        self.object_properties = list(object_properties)
        #: (sub, super) class-name pairs emitted as rdfs:subClassOf triples
        self.subclass_axioms = list(subclass_axioms)
        class_names = {cls.name for cls in self.classes}
        if len(class_names) != len(self.classes):
            raise ValueError(f"duplicate class names in spec {name!r}")
        for prop in self.object_properties:
            if prop.domain not in class_names:
                raise ValueError(f"property {prop.name!r} has unknown domain {prop.domain!r}")
            if prop.range not in class_names:
                raise ValueError(f"property {prop.name!r} has unknown range {prop.range!r}")
        for sub, super_ in self.subclass_axioms:
            if sub not in class_names or super_ not in class_names:
                raise ValueError(f"subclass axiom {sub!r} -> {super_!r} names unknown class")

    def class_spec(self, name: str) -> ClassSpec:
        for cls in self.classes:
            if cls.name == name:
                return cls
        raise KeyError(name)

    def total_instances(self) -> int:
        return sum(cls.instances for cls in self.classes)

    def __repr__(self) -> str:
        return (
            f"<DatasetSpec {self.name!r}: {len(self.classes)} classes, "
            f"{len(self.object_properties)} object properties, "
            f"{self.total_instances()} instances>"
        )


def instantiate(spec: DatasetSpec, seed: int = 0) -> Graph:
    """Materialize *spec* into a graph (deterministic for a given seed).

    Triples stream through :meth:`Graph.add_many`, the dictionary-encoded
    bulk-load path, instead of per-triple ``add_triple`` calls.
    """
    digest = hashlib.sha256(f"{seed}:{spec.name}".encode("utf-8")).digest()
    rng = random.Random(int.from_bytes(digest[:8], "big"))
    graph = Graph(identifier=spec.name)
    graph.add_many_terms(_spec_triples(spec, rng))
    return graph


def _spec_triples(spec: DatasetSpec, rng: random.Random):
    """Yield the spec's (s, p, o) tuples in deterministic generation order."""
    ns = spec.namespace

    for sub, super_ in spec.subclass_axioms:
        yield ns.term(sub), RDFS.subClassOf, ns.term(super_)

    instance_iris: Dict[str, List[IRI]] = {}
    for cls in spec.classes:
        class_iri = ns.term(cls.name)
        yield class_iri, RDFS.label, Literal(cls.label)
        members: List[IRI] = []
        rdf_type = RDF.type
        for index in range(cls.instances):
            instance = ns.term(f"{cls.name.lower()}/{index}")
            yield instance, rdf_type, class_iri
            for prop_name in cls.datatype_properties:
                yield (
                    instance,
                    ns.term(prop_name),
                    _literal_for(prop_name, cls.name, index, rng),
                )
            members.append(instance)
        instance_iris[cls.name] = members

    for prop in spec.object_properties:
        sources = instance_iris[prop.domain]
        targets = instance_iris[prop.range]
        if not sources or not targets:
            continue
        prop_iri = ns.term(prop.name)
        for source in sources:
            links = _poisson_like(prop.density, rng)
            for _ in range(links):
                yield source, prop_iri, rng.choice(targets)


def _poisson_like(density: float, rng: random.Random) -> int:
    """Integer link count with expectation *density* (floor + Bernoulli)."""
    base = int(density)
    remainder = density - base
    return base + (1 if rng.random() < remainder else 0)


_WORDS = (
    "alpha", "beta", "gamma", "delta", "omega", "nova", "terra", "luna",
    "aqua", "ignis", "ventus", "umbra", "lux", "flora", "fauna", "petra",
)


def _literal_for(prop_name: str, class_name: str, index: int, rng: random.Random) -> Literal:
    lowered = prop_name.lower()
    if "date" in lowered or "time" in lowered:
        year = rng.randint(2005, 2019)
        month = rng.randint(1, 12)
        day = rng.randint(1, 28)
        return Literal(
            f"{year:04d}-{month:02d}-{day:02d}",
            datatype="http://www.w3.org/2001/XMLSchema#date",
        )
    if "count" in lowered or "number" in lowered or "quantity" in lowered:
        return Literal(rng.randint(0, 10_000))
    if "value" in lowered or "measure" in lowered or "score" in lowered:
        return Literal(round(rng.uniform(0.0, 100.0), 3))
    if "label" in lowered or "name" in lowered or "title" in lowered:
        return Literal(f"{class_name} {rng.choice(_WORDS)} {index}")
    return Literal(f"{rng.choice(_WORDS)}-{index}")
