"""Government / mobility open-data Linked Data sources.

The paper's endpoint census is dominated by public-sector portals (EDP, EU
ODP) and the authors' own TRAFAIR air-quality project; this generator
produces that family of datasets: sensor networks, observations,
administrative geography and transport.
"""

from __future__ import annotations

from ..rdf.graph import Graph
from .spec import ClassSpec, DatasetSpec, ObjectPropertySpec, instantiate

__all__ = ["government_spec", "government_graph", "trafair_spec", "trafair_graph"]


def government_spec(scale: float = 1.0, name: str = "govdata") -> DatasetSpec:
    """A generic regional open-data portal dataset."""

    def n(count: int) -> int:
        return max(1, int(count * scale))

    classes = [
        ClassSpec("Municipality", n(160), ["name", "population"]),
        ClassSpec("Province", n(12), ["name"]),
        ClassSpec("Region", n(3), ["name"]),
        ClassSpec("PublicOffice", n(240), ["name", "openingHours"]),
        ClassSpec("School", n(420), ["name", "studentCount"]),
        ClassSpec("Hospital", n(35), ["name", "bedCount"]),
        ClassSpec("BusStop", n(900), ["name", "label"]),
        ClassSpec("BusLine", n(48), ["name"]),
        ClassSpec("Timetable", n(520), ["validFromDate"]),
        ClassSpec("Budget", n(140), ["amountValue", "fiscalYearDate"]),
        ClassSpec("Tender", n(310), ["title", "amountValue"]),
        ClassSpec("Event", n(190), ["title", "startDate"]),
    ]
    properties = [
        ObjectPropertySpec("inProvince", "Municipality", "Province", 1.0),
        ObjectPropertySpec("inRegion", "Province", "Region", 1.0),
        ObjectPropertySpec("officeInMunicipality", "PublicOffice", "Municipality", 1.0),
        ObjectPropertySpec("schoolInMunicipality", "School", "Municipality", 1.0),
        ObjectPropertySpec("hospitalInMunicipality", "Hospital", "Municipality", 1.0),
        ObjectPropertySpec("stopInMunicipality", "BusStop", "Municipality", 1.0),
        ObjectPropertySpec("stopOnLine", "BusStop", "BusLine", 1.3),
        ObjectPropertySpec("timetableOfLine", "Timetable", "BusLine", 1.0),
        ObjectPropertySpec("budgetOf", "Budget", "Municipality", 1.0),
        ObjectPropertySpec("tenderBy", "Tender", "PublicOffice", 1.0),
        ObjectPropertySpec("eventInMunicipality", "Event", "Municipality", 1.0),
    ]
    return DatasetSpec(name, f"http://gov.example.org/{name}/", classes, properties)


def government_graph(scale: float = 1.0, seed: int = 0, name: str = "govdata") -> Graph:
    return instantiate(government_spec(scale, name=name), seed=seed)


def trafair_spec(scale: float = 1.0) -> DatasetSpec:
    """A TRAFAIR-like air-quality sensor dataset (the paper's own project)."""

    def n(count: int) -> int:
        return max(1, int(count * scale))

    classes = [
        ClassSpec("Sensor", n(60), ["name", "serialNumber"]),
        ClassSpec("LowCostSensor", n(48), ["name"]),
        ClassSpec("Station", n(14), ["name", "label"]),
        ClassSpec("Observation", n(4200), ["observedValue", "observationDate"]),
        ClassSpec("AirQualityIndex", n(350), ["indexValue", "computedDate"]),
        ClassSpec("Pollutant", n(6), ["name"]),
        ClassSpec("TrafficFlow", n(1600), ["vehicleCount", "measureDate"]),
        ClassSpec("RoadSegment", n(220), ["name", "lengthValue"]),
        ClassSpec("City", n(6), ["name"]),
    ]
    properties = [
        ObjectPropertySpec("sensorAtStation", "Sensor", "Station", 1.0),
        ObjectPropertySpec("calibratedAgainst", "LowCostSensor", "Sensor", 1.0),
        ObjectPropertySpec("observationBy", "Observation", "Sensor", 1.0),
        ObjectPropertySpec("observes", "Observation", "Pollutant", 1.0),
        ObjectPropertySpec("indexForCity", "AirQualityIndex", "City", 1.0),
        ObjectPropertySpec("indexFrom", "AirQualityIndex", "Observation", 2.0),
        ObjectPropertySpec("flowOnSegment", "TrafficFlow", "RoadSegment", 1.0),
        ObjectPropertySpec("segmentInCity", "RoadSegment", "City", 1.0),
        ObjectPropertySpec("stationInCity", "Station", "City", 1.0),
    ]
    return DatasetSpec("trafair", "http://trafair.example.org/", classes, properties)


def trafair_graph(scale: float = 1.0, seed: int = 0) -> Graph:
    return instantiate(trafair_spec(scale), seed=seed)
