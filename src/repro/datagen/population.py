"""The full simulated world: the endpoint population H-BOLD indexes.

The paper's registry holds 610 listed endpoints of which 110 are indexed
(working and compatible with index extraction); the portal crawl raises
those to 680 / 130.  :func:`build_world` constructs that world -- or a
scaled-down version for tests -- as one :class:`World` object:

* an :class:`~repro.endpoint.network.EndpointNetwork` on a shared clock,
* ``indexable_urls``: endpoints with real generated datasets,
* ``broken_urls``: endpoints that exist but are dead or incompatible,
* three portal catalogs (queryable as endpoints themselves),
* ``portal_new_indexable``: the 20 crawl-discovered endpoints that extract.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Optional, Tuple

from ..endpoint.availability import AlwaysAvailable, MarkovAvailability
from ..endpoint.clock import SimulationClock
from ..endpoint.endpoint import SparqlEndpoint
from ..endpoint.network import EndpointNetwork
from ..rdf.graph import Graph
from ..rdf.sharding import ShardedTripleStore
from .big_lod import big_lod_graph
from .government import government_graph, trafair_graph
from .portals import PORTAL_CENSUS, build_all_portals
from .scholarly import scholarly_graph
from .spec import ClassSpec, DatasetSpec, ObjectPropertySpec, instantiate

__all__ = ["World", "build_world"]

_PROFILE_MIX = (
    ("virtuoso", 0.45),
    ("fuseki", 0.25),
    ("legacy-sesame", 0.12),
    ("4store", 0.08),
    ("slow-shared-host", 0.10),
)


def _pick_profile(rng: random.Random) -> str:
    roll = rng.random()
    cumulative = 0.0
    for name, share in _PROFILE_MIX:
        cumulative += share
        if roll < cumulative:
            return name
    return _PROFILE_MIX[-1][0]


def _small_dataset(index: int, seed: int) -> Graph:
    """A modest themed dataset for rank-and-file indexable endpoints."""
    kind = index % 4
    if kind == 0:
        return government_graph(scale=0.12 + (index % 7) * 0.05, seed=seed + index,
                                name=f"govdata{index}")
    if kind == 1:
        return big_lod_graph(
            class_count=12 + (index % 10) * 4,
            group_count=3 + index % 4,
            instances_per_class=8 + index % 20,
            seed=seed + index,
            name=f"biglod{index}",
        )
    if kind == 2:
        return trafair_graph(scale=0.05 + (index % 5) * 0.03, seed=seed + index)
    return scholarly_graph(scale=0.05 + (index % 6) * 0.04, seed=seed + index)


class World:
    """Everything the experiments need, in one place."""

    def __init__(
        self,
        network: EndpointNetwork,
        indexable_urls: List[str],
        broken_urls: List[str],
        portal_urls: Dict[str, str],
        portal_endpoint_urls: Dict[str, List[str]],
        portal_new_indexable: List[str],
        seed: int,
    ):
        self.network = network
        self.clock = network.clock
        #: registry endpoints that extract successfully (the "110")
        self.indexable_urls = indexable_urls
        #: registry endpoints that are dead or incompatible (the "500")
        self.broken_urls = broken_urls
        #: portal key -> the portal's own query URL
        self.portal_urls = portal_urls
        #: portal key -> sparql endpoint URLs listed in its catalog
        self.portal_endpoint_urls = portal_endpoint_urls
        #: crawl-discovered endpoints that are indexable (the "20")
        self.portal_new_indexable = portal_new_indexable
        self.seed = seed

    @property
    def listed_urls(self) -> List[str]:
        """The initial registry: indexable + broken (the "610")."""
        return self.indexable_urls + self.broken_urls

    def __repr__(self) -> str:
        return (
            f"<World listed={len(self.listed_urls)} indexable={len(self.indexable_urls)} "
            f"portals={sorted(self.portal_urls)}>"
        )


def build_world(
    indexable: int = 110,
    broken: int = 500,
    portal_new_indexable: int = 20,
    seed: int = 0,
    clock: Optional[SimulationClock] = None,
    flaky: bool = True,
    shards: Optional[int] = None,
) -> World:
    """Construct the simulated endpoint world.

    Defaults reproduce the paper's census (110 indexable + 500 broken =
    610 listed; the crawl then adds 70 of which 20 are indexable).  Tests
    pass small numbers -- the builder scales everything consistently.
    ``shards=N`` hosts every real dataset on a subject-hash
    :class:`~repro.rdf.sharding.ShardedTripleStore`, so each endpoint's
    spanning scans run partition-parallel (identical query results, lower
    simulated latency).
    """
    network = EndpointNetwork(clock=clock)
    digest = hashlib.sha256(f"{seed}:world".encode("utf-8")).digest()
    rng = random.Random(int.from_bytes(digest[:8], "big"))

    # -- the 110 indexable registry endpoints ------------------------------
    indexable_urls: List[str] = []
    for index in range(indexable):
        url = f"http://lod{index}.example.org/sparql"
        graph = _small_dataset(index, seed)
        if shards:
            # intra-endpoint parallelism: host real datasets on sharded
            # stores (broken endpoints stay plain -- they are empty)
            graph = ShardedTripleStore.from_graph(graph, shards)
        availability = (
            MarkovAvailability(url, p_fail=0.05, p_recover=0.6, seed=seed)
            if flaky
            else AlwaysAvailable()
        )
        network.register(
            SparqlEndpoint(
                url,
                graph,
                network.clock,
                profile=_pick_profile(rng),
                availability=availability,
                seed=seed + index,
                title=graph.identifier or url,
            )
        )
        indexable_urls.append(url)

    # -- the 500 broken/dead registry endpoints ------------------------------
    broken_urls: List[str] = []
    for index in range(broken):
        url = f"http://dead{index}.example.org/sparql"
        # Dead endpoints: empty graphs and availability so poor extraction
        # never completes (p_recover small keeps them down for long spells).
        availability = MarkovAvailability(
            url, p_fail=0.85, p_recover=0.08, seed=seed, start_up=False
        )
        network.register(
            SparqlEndpoint(
                url,
                Graph(identifier=f"dead{index}"),
                network.clock,
                profile="slow-shared-host",
                availability=availability,
                seed=seed + 10_000 + index,
            )
        )
        broken_urls.append(url)

    # -- the three portals and their catalogs --------------------------------
    # At full size the census needs 19 overlap URLs; shrink it for tiny
    # test worlds so overlaps never exceed the available registry.
    portal_scale = 1.0 if indexable >= 19 else max(0.05, indexable / 110.0)
    catalogs = build_all_portals(indexable_urls, seed=seed, scale=portal_scale)
    portal_urls: Dict[str, str] = {}
    portal_endpoint_urls: Dict[str, List[str]] = {}
    discovered_new: List[str] = []
    for key, (catalog, urls) in catalogs.items():
        portal_url = f"http://{key}.example.org/sparql"
        network.register(
            SparqlEndpoint(
                portal_url,
                catalog,
                network.clock,
                profile="virtuoso",
                availability=AlwaysAvailable(),
                seed=seed,
                title=f"portal {key}",
            )
        )
        portal_urls[key] = portal_url
        portal_endpoint_urls[key] = urls
        discovered_new.extend(u for u in urls if u not in indexable_urls)

    # -- register the crawl-discovered endpoints ------------------------------
    # The first `portal_new_indexable` of them get real datasets; the rest
    # are broken like the long tail of the registry.
    new_indexable: List[str] = []
    for index, url in enumerate(sorted(discovered_new)):
        if index < portal_new_indexable:
            graph = _small_dataset(1000 + index, seed)
            if shards:
                graph = ShardedTripleStore.from_graph(graph, shards)
            availability = (
                MarkovAvailability(url, p_fail=0.05, p_recover=0.6, seed=seed)
                if flaky
                else AlwaysAvailable()
            )
            profile = _pick_profile(rng)
            new_indexable.append(url)
        else:
            graph = Graph(identifier=f"discovered-dead-{index}")
            availability = MarkovAvailability(
                url, p_fail=0.85, p_recover=0.08, seed=seed, start_up=False
            )
            profile = "slow-shared-host"
        network.register(
            SparqlEndpoint(
                url,
                graph,
                network.clock,
                profile=profile,
                availability=availability,
                seed=seed + 20_000 + index,
            )
        )

    return World(
        network=network,
        indexable_urls=indexable_urls,
        broken_urls=broken_urls,
        portal_urls=portal_urls,
        portal_endpoint_urls=portal_endpoint_urls,
        portal_new_indexable=new_indexable,
        seed=seed,
    )
