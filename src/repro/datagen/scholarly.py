"""A ScholarlyData-like Linked Data source.

Figure 2 and Figure 7 of the paper explore the Scholarly LD
(scholarlydata.org, the Semantic Web conference dataset).  This generator
reproduces its *structure*: the conference-ontology class names the paper
shows (Event, SessionEvent, Vevent, ConferenceSeries, InformationObject,
Situation, ...), realistic class-size skew (many Persons/Documents, few
ConferenceSeries) and the domain/range pattern highlighted in Figure 7
(properties from Vevent/SessionEvent/ConferenceSeries/InformationObject
into Event, and from Event into Situation).
"""

from __future__ import annotations

from ..rdf.graph import Graph
from .spec import ClassSpec, DatasetSpec, ObjectPropertySpec, instantiate

__all__ = ["scholarly_spec", "scholarly_graph", "SCHOLARLY_NAMESPACE"]

SCHOLARLY_NAMESPACE = "https://w3id.org/scholarlydata/"


def scholarly_spec(scale: float = 1.0) -> DatasetSpec:
    """The Scholarly LD spec; *scale* multiplies every instance count."""

    def n(count: int) -> int:
        return max(1, int(count * scale))

    classes = [
        # The Figure 2 / Figure 7 cast:
        ClassSpec("Event", n(180), ["name", "startDate", "endDate", "description"]),
        ClassSpec("SessionEvent", n(95), ["name", "startDate"]),
        ClassSpec("Vevent", n(60), ["summary", "dtstart"]),
        ClassSpec("ConferenceSeries", n(12), ["name"]),
        ClassSpec("InformationObject", n(220), ["title"]),
        ClassSpec("Situation", n(140), ["description"]),
        # The rest of the conference ontology's instantiated classes:
        ClassSpec("Conference", n(45), ["name", "startDate", "endDate", "location"]),
        ClassSpec("Workshop", n(70), ["name", "startDate"]),
        ClassSpec("Tutorial", n(25), ["name"]),
        ClassSpec("Talk", n(310), ["title", "startDate"]),
        ClassSpec("Person", n(1450), ["name", "label"]),
        ClassSpec("Organisation", n(260), ["name"]),
        ClassSpec("AffiliationDuringEvent", n(900), ["description"]),
        ClassSpec("Document", n(820), ["title"]),
        ClassSpec("InProceedings", n(640), ["title", "pagesNumber"]),
        ClassSpec("Proceedings", n(55), ["title"]),
        ClassSpec("Role", n(35), ["name"]),
        ClassSpec("RoleDuringEvent", n(780), ["description"]),
        ClassSpec("ProgrammeCommitteeMember", n(420), ["name"]),
        ClassSpec("OrganisedEvent", n(90), ["name"]),
        ClassSpec("AcademicEvent", n(130), ["name", "startDate"]),
        ClassSpec("SocialEvent", n(40), ["name"]),
        ClassSpec("Break", n(50), ["name"]),
        ClassSpec("Session", n(170), ["name"]),
        ClassSpec("Track", n(30), ["name"]),
        ClassSpec("Site", n(20), ["name", "location"]),
        ClassSpec("Country", n(45), ["name"]),
        ClassSpec("City", n(60), ["name"]),
    ]

    properties = [
        # Figure 7's highlighted neighbourhood of Event:
        ObjectPropertySpec("hasSituation", "Event", "Situation", 0.8),     # range: Situation
        ObjectPropertySpec("relatesToEvent", "Vevent", "Event", 0.9),      # domains into Event
        ObjectPropertySpec("isSessionOf", "SessionEvent", "Event", 0.9),
        ObjectPropertySpec("seriesOfEvent", "ConferenceSeries", "Event", 2.5),
        ObjectPropertySpec("describesEvent", "InformationObject", "Event", 0.5),
        # Conference structure:
        ObjectPropertySpec("partOfSeries", "Conference", "ConferenceSeries", 1.0),
        ObjectPropertySpec("hasSubEvent", "Conference", "Workshop", 1.4),
        ObjectPropertySpec("hasTutorial", "Conference", "Tutorial", 0.5),
        ObjectPropertySpec("hasTalk", "Session", "Talk", 1.8),
        ObjectPropertySpec("sessionOf", "Session", "Conference", 0.9),
        ObjectPropertySpec("trackOf", "Track", "Conference", 0.9),
        ObjectPropertySpec("heldAtSite", "Conference", "Site", 1.0),
        ObjectPropertySpec("siteInCity", "Site", "City", 1.0),
        ObjectPropertySpec("cityInCountry", "City", "Country", 1.0),
        ObjectPropertySpec("eventOfConference", "Event", "Conference", 0.8),
        ObjectPropertySpec("academicSubEvent", "AcademicEvent", "Event", 0.7),
        ObjectPropertySpec("socialSubEvent", "SocialEvent", "Event", 0.7),
        ObjectPropertySpec("breakDuring", "Break", "Session", 0.8),
        # People and roles:
        ObjectPropertySpec("hasAffiliation", "Person", "AffiliationDuringEvent", 0.7),
        ObjectPropertySpec("withOrganisation", "AffiliationDuringEvent", "Organisation", 1.0),
        ObjectPropertySpec("duringEvent", "AffiliationDuringEvent", "Conference", 1.0),
        ObjectPropertySpec("holdsRole", "Person", "RoleDuringEvent", 0.55),
        ObjectPropertySpec("withRole", "RoleDuringEvent", "Role", 1.0),
        ObjectPropertySpec("roleAtEvent", "RoleDuringEvent", "Event", 0.9),
        ObjectPropertySpec("committeeOf", "ProgrammeCommitteeMember", "Conference", 1.0),
        ObjectPropertySpec("memberIsPerson", "ProgrammeCommitteeMember", "Person", 1.0),
        ObjectPropertySpec("organises", "Organisation", "OrganisedEvent", 0.3),
        # Publications:
        ObjectPropertySpec("hasAuthor", "Document", "Person", 2.6),
        ObjectPropertySpec("paperInProceedings", "InProceedings", "Proceedings", 1.0),
        ObjectPropertySpec("proceedingsOf", "Proceedings", "Conference", 1.0),
        ObjectPropertySpec("presentedAs", "InProceedings", "Talk", 0.9),
        ObjectPropertySpec("describedBy", "Document", "InformationObject", 0.25),
        ObjectPropertySpec("talkInSession", "Talk", "SessionEvent", 0.6),
    ]

    # The conference ontology's class hierarchy (enables the LODeX-style
    # "inferred schema" extraction via a/rdfs:subClassOf*).
    subclass_axioms = [
        ("Conference", "AcademicEvent"),
        ("Workshop", "AcademicEvent"),
        ("Tutorial", "AcademicEvent"),
        ("AcademicEvent", "Event"),
        ("SocialEvent", "Event"),
        ("Break", "Event"),
        ("SessionEvent", "Event"),
        ("Talk", "Event"),
        ("InProceedings", "Document"),
        ("Proceedings", "Document"),
    ]

    return DatasetSpec(
        "scholarlydata",
        SCHOLARLY_NAMESPACE,
        classes,
        properties,
        subclass_axioms=subclass_axioms,
    )


def scholarly_graph(scale: float = 1.0, seed: int = 0) -> Graph:
    """Instantiate the Scholarly LD at the given scale."""
    return instantiate(scholarly_spec(scale), seed=seed)
