"""Color utilities: hex parsing, HSL conversion, categorical palettes.

The presentation layer assigns one color per cluster (Figures 4-6) and
shades classes within a cluster by lightness, so we need a categorical
scheme plus lighten/darken in HSL space.
"""

from __future__ import annotations

import colorsys
from typing import List, Tuple

__all__ = [
    "Color",
    "CATEGORY10",
    "CATEGORY20",
    "categorical_color",
    "lighten",
    "darken",
]


class Color:
    """An sRGB color with hex round-tripping and HSL adjustment."""

    __slots__ = ("r", "g", "b")

    def __init__(self, r: int, g: int, b: int):
        for channel, name in ((r, "r"), (g, "g"), (b, "b")):
            if not 0 <= channel <= 255:
                raise ValueError(f"channel {name}={channel} out of range")
        object.__setattr__(self, "r", int(r))
        object.__setattr__(self, "g", int(g))
        object.__setattr__(self, "b", int(b))

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("Color is immutable")

    @classmethod
    def from_hex(cls, text: str) -> "Color":
        text = text.lstrip("#")
        if len(text) == 3:
            text = "".join(c * 2 for c in text)
        if len(text) != 6:
            raise ValueError(f"bad hex color {text!r}")
        return cls(int(text[0:2], 16), int(text[2:4], 16), int(text[4:6], 16))

    def to_hex(self) -> str:
        return f"#{self.r:02x}{self.g:02x}{self.b:02x}"

    def __str__(self) -> str:
        return self.to_hex()

    def __repr__(self) -> str:
        return f"Color({self.to_hex()!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Color) and (other.r, other.g, other.b) == (
            self.r,
            self.g,
            self.b,
        )

    def __hash__(self) -> int:
        return hash((Color, self.r, self.g, self.b))

    def to_hsl(self) -> Tuple[float, float, float]:
        h, l, s = colorsys.rgb_to_hls(self.r / 255, self.g / 255, self.b / 255)
        return h, s, l

    @classmethod
    def from_hsl(cls, h: float, s: float, l: float) -> "Color":
        r, g, b = colorsys.hls_to_rgb(h % 1.0, min(1.0, max(0.0, l)), min(1.0, max(0.0, s)))
        return cls(round(r * 255), round(g * 255), round(b * 255))

    def adjust_lightness(self, delta: float) -> "Color":
        h, s, l = self.to_hsl()
        return Color.from_hsl(h, s, l + delta)


#: d3.schemeCategory10 -- the default D3 categorical palette H-BOLD used.
CATEGORY10: List[Color] = [
    Color.from_hex(value)
    for value in (
        "#1f77b4",
        "#ff7f0e",
        "#2ca02c",
        "#d62728",
        "#9467bd",
        "#8c564b",
        "#e377c2",
        "#7f7f7f",
        "#bcbd22",
        "#17becf",
    )
]

#: d3.schemeCategory20 (classic) for datasets with many clusters.
CATEGORY20: List[Color] = [
    Color.from_hex(value)
    for value in (
        "#1f77b4",
        "#aec7e8",
        "#ff7f0e",
        "#ffbb78",
        "#2ca02c",
        "#98df8a",
        "#d62728",
        "#ff9896",
        "#9467bd",
        "#c5b0d5",
        "#8c564b",
        "#c49c94",
        "#e377c2",
        "#f7b6d2",
        "#7f7f7f",
        "#c7c7c7",
        "#bcbd22",
        "#dbdb8d",
        "#17becf",
        "#9edae5",
    )
]


def categorical_color(index: int, palette: List[Color] = None) -> Color:
    """The color for category *index*, cycling the palette with a lightness
    nudge on each full cycle so repeats stay distinguishable."""
    palette = palette or CATEGORY10
    base = palette[index % len(palette)]
    cycle = index // len(palette)
    if cycle == 0:
        return base
    return base.adjust_lightness(0.12 if cycle % 2 else -0.12)


def lighten(color: Color, amount: float = 0.15) -> Color:
    return color.adjust_lightness(abs(amount))


def darken(color: Color, amount: float = 0.15) -> Color:
    return color.adjust_lightness(-abs(amount))
