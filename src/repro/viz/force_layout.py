"""Force-directed graph layout for Schema Summary / exploration views.

H-BOLD renders the Schema Summary and the step-by-step exploration views
(Figure 2) with D3's force simulation; this module implements the same
physics: many-body repulsion, link springs, centering, and velocity decay,
integrated with the same cooling schedule (alpha decay) d3-force uses.

Deterministic: initial positions come from a seeded phyllotaxis spiral
(d3's default) and there is no randomness afterwards.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from .geometry import Point

__all__ = ["ForceLayout", "LayoutNode", "force_layout"]

NodeId = Hashable


class LayoutNode:
    """Mutable simulation state for one node."""

    __slots__ = ("id", "x", "y", "vx", "vy", "weight")

    def __init__(self, node_id: NodeId, x: float, y: float, weight: float = 1.0):
        self.id = node_id
        self.x = x
        self.y = y
        self.vx = 0.0
        self.vy = 0.0
        self.weight = weight

    def position(self) -> Point:
        return Point(self.x, self.y)


class ForceLayout:
    """A d3-force-style simulation over explicit node/edge lists."""

    def __init__(
        self,
        nodes: Sequence[NodeId],
        edges: Sequence[Tuple[NodeId, NodeId]],
        width: float = 800.0,
        height: float = 600.0,
        charge: float = -120.0,
        link_distance: float = 60.0,
        link_strength: float = 0.7,
        velocity_decay: float = 0.6,
        weights: Optional[Dict[NodeId, float]] = None,
    ):
        if not nodes:
            raise ValueError("force layout needs at least one node")
        self.width = width
        self.height = height
        self.charge = charge
        self.link_distance = link_distance
        self.link_strength = link_strength
        self.velocity_decay = velocity_decay

        weights = weights or {}
        self.nodes: List[LayoutNode] = []
        self._index: Dict[NodeId, int] = {}
        for i, node_id in enumerate(nodes):
            # d3's phyllotaxis initial placement: deterministic, no overlap.
            radius = 10.0 * math.sqrt(0.5 + i)
            angle = i * 2.3999632297286533  # golden angle
            self.nodes.append(
                LayoutNode(
                    node_id,
                    width / 2.0 + radius * math.cos(angle),
                    height / 2.0 + radius * math.sin(angle),
                    weight=weights.get(node_id, 1.0),
                )
            )
            self._index[node_id] = i

        self.edges: List[Tuple[int, int]] = []
        self.degree = [0] * len(self.nodes)
        for source, target in edges:
            si = self._index.get(source)
            ti = self._index.get(target)
            if si is None or ti is None:
                raise KeyError(f"edge endpoint missing from node list: {source}->{target}")
            self.edges.append((si, ti))
            self.degree[si] += 1
            self.degree[ti] += 1

        self.alpha = 1.0
        self.alpha_min = 0.001
        self.alpha_decay = 1.0 - self.alpha_min ** (1.0 / 300.0)

    # -- simulation ------------------------------------------------------------

    def step(self) -> None:
        """One tick: apply forces, integrate, decay velocities."""
        self.alpha += (0.0 - self.alpha) * self.alpha_decay

        self._apply_links()
        self._apply_charge()
        self._apply_center()

        for node in self.nodes:
            node.vx *= self.velocity_decay
            node.vy *= self.velocity_decay
            node.x += node.vx
            node.y += node.vy

    def run(self, iterations: int = 300) -> "ForceLayout":
        for _ in range(iterations):
            if self.alpha < self.alpha_min:
                break
            self.step()
        return self

    def _apply_links(self) -> None:
        for si, ti in self.edges:
            source = self.nodes[si]
            target = self.nodes[ti]
            dx = target.x + target.vx - source.x - source.vx
            dy = target.y + target.vy - source.y - source.vy
            distance = math.hypot(dx, dy) or 1e-6
            delta = (distance - self.link_distance) / distance
            delta *= self.alpha * self.link_strength
            # Heavier-degree endpoints move less (d3's bias).
            total = self.degree[si] + self.degree[ti]
            bias = self.degree[si] / total if total else 0.5
            target.vx -= dx * delta * bias
            target.vy -= dy * delta * bias
            source.vx += dx * delta * (1.0 - bias)
            source.vy += dy * delta * (1.0 - bias)

    def _apply_charge(self) -> None:
        # O(n^2) exact repulsion; schema graphs are small (<= ~300 nodes)
        # so the Barnes-Hut tree d3 uses would only add code.
        count = len(self.nodes)
        for i in range(count):
            a = self.nodes[i]
            for j in range(i + 1, count):
                b = self.nodes[j]
                dx = b.x - a.x
                dy = b.y - a.y
                d2 = dx * dx + dy * dy
                if d2 < 1e-9:
                    dx, dy, d2 = 0.1, 0.1, 0.02
                force = self.charge * self.alpha / d2
                fx = dx * force
                fy = dy * force
                a.vx += fx * b.weight
                a.vy += fy * b.weight
                b.vx -= fx * a.weight
                b.vy -= fy * a.weight

    def _apply_center(self) -> None:
        cx = sum(node.x for node in self.nodes) / len(self.nodes)
        cy = sum(node.y for node in self.nodes) / len(self.nodes)
        dx = self.width / 2.0 - cx
        dy = self.height / 2.0 - cy
        for node in self.nodes:
            node.x += dx
            node.y += dy

    # -- results ---------------------------------------------------------------

    def positions(self) -> Dict[NodeId, Point]:
        return {node.id: node.position() for node in self.nodes}

    def bounding_box(self) -> Tuple[float, float, float, float]:
        xs = [node.x for node in self.nodes]
        ys = [node.y for node in self.nodes]
        return min(xs), min(ys), max(xs), max(ys)


def force_layout(
    nodes: Sequence[NodeId],
    edges: Sequence[Tuple[NodeId, NodeId]],
    width: float = 800.0,
    height: float = 600.0,
    iterations: int = 300,
    **options,
) -> Dict[NodeId, Point]:
    """One-shot convenience: build, run, return node positions."""
    layout = ForceLayout(nodes, edges, width=width, height=height, **options)
    layout.run(iterations)
    return layout.positions()
