"""Standalone HTML export for the rendered figures.

Wraps one or more SVG documents into a single self-contained HTML page
(no JavaScript, no external assets) so the artifacts can be opened in a
browser exactly like the original H-BOLD views -- tooltips come from the
embedded ``<title>`` elements.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .svg import SvgDocument

__all__ = ["html_page", "save_html_page"]

_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
  body {{ font-family: sans-serif; margin: 2rem; background: #fafafa; color: #222; }}
  h1 {{ font-size: 1.4rem; }}
  h2 {{ font-size: 1.1rem; margin-top: 2rem; }}
  figure {{ margin: 0 0 2rem 0; border: 1px solid #ddd; background: #fff;
            padding: 1rem; display: inline-block; }}
  figcaption {{ font-size: 0.85rem; color: #666; margin-top: 0.5rem; }}
</style>
</head>
<body>
<h1>{title}</h1>
{body}
</body>
</html>
"""


def html_page(
    title: str, figures: Sequence[Tuple[str, SvgDocument]], intro: Optional[str] = None
) -> str:
    """Build an HTML page embedding ``(caption, svg)`` figures in order."""
    sections: List[str] = []
    if intro:
        sections.append(f"<p>{intro}</p>")
    for caption, document in figures:
        svg_markup = document.render()
        # strip the XML prolog; inline SVG doesn't want it
        if svg_markup.startswith("<?xml"):
            svg_markup = svg_markup.split("?>", 1)[1].lstrip()
        sections.append(
            f"<figure>\n{svg_markup}<figcaption>{caption}</figcaption>\n</figure>"
        )
    return _TEMPLATE.format(title=title, body="\n".join(sections))


def save_html_page(
    path: str,
    title: str,
    figures: Sequence[Tuple[str, SvgDocument]],
    intro: Optional[str] = None,
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(html_page(title, figures, intro=intro))
