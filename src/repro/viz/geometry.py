"""Plane geometry primitives shared by the layout algorithms.

Everything the treemap/sunburst/circle-pack/edge-bundling layouts need:
points, rectangles, circles, polar conversion, smallest enclosing circles
(Welzl) and uniform B-spline evaluation for bundled edges.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Point",
    "Rect",
    "Circle",
    "polar_to_cartesian",
    "enclosing_circle",
    "bspline_points",
]


class Point:
    """An immutable 2-D point with vector arithmetic."""

    __slots__ = ("x", "y")

    def __init__(self, x: float, y: float):
        object.__setattr__(self, "x", float(x))
        object.__setattr__(self, "y", float(y))

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("Point is immutable")

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __eq__(self, other) -> bool:
        return isinstance(other, Point) and other.x == self.x and other.y == self.y

    def __hash__(self) -> int:
        return hash((Point, self.x, self.y))

    def __repr__(self) -> str:
        return f"Point({self.x:g}, {self.y:g})"

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def norm(self) -> float:
        return math.hypot(self.x, self.y)


class Rect:
    """An axis-aligned rectangle as (x, y, width, height)."""

    __slots__ = ("x", "y", "width", "height")

    def __init__(self, x: float, y: float, width: float, height: float):
        if width < 0 or height < 0:
            raise ValueError(f"negative rect size {width}x{height}")
        object.__setattr__(self, "x", float(x))
        object.__setattr__(self, "y", float(y))
        object.__setattr__(self, "width", float(width))
        object.__setattr__(self, "height", float(height))

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("Rect is immutable")

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Rect)
            and (other.x, other.y, other.width, other.height)
            == (self.x, self.y, self.width, self.height)
        )

    def __hash__(self) -> int:
        return hash((Rect, self.x, self.y, self.width, self.height))

    def __repr__(self) -> str:
        return f"Rect({self.x:g}, {self.y:g}, {self.width:g}, {self.height:g})"

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def right(self) -> float:
        return self.x + self.width

    @property
    def bottom(self) -> float:
        return self.y + self.height

    def center(self) -> Point:
        return Point(self.x + self.width / 2.0, self.y + self.height / 2.0)

    def contains(self, point: Point, epsilon: float = 1e-9) -> bool:
        return (
            self.x - epsilon <= point.x <= self.right + epsilon
            and self.y - epsilon <= point.y <= self.bottom + epsilon
        )

    def contains_rect(self, other: "Rect", epsilon: float = 1e-9) -> bool:
        return (
            other.x >= self.x - epsilon
            and other.y >= self.y - epsilon
            and other.right <= self.right + epsilon
            and other.bottom <= self.bottom + epsilon
        )

    def intersects(self, other: "Rect", epsilon: float = 1e-9) -> bool:
        """True if the *interiors* overlap (shared borders don't count)."""
        return (
            self.x + epsilon < other.right
            and other.x + epsilon < self.right
            and self.y + epsilon < other.bottom
            and other.y + epsilon < self.bottom
        )

    def inset(self, padding: float) -> "Rect":
        """Shrink by *padding* on every side (clamps at zero size)."""
        width = max(0.0, self.width - 2 * padding)
        height = max(0.0, self.height - 2 * padding)
        return Rect(self.x + padding, self.y + padding, width, height)


class Circle:
    """A circle as (cx, cy, r)."""

    __slots__ = ("cx", "cy", "r")

    def __init__(self, cx: float, cy: float, r: float):
        if r < 0:
            raise ValueError(f"negative radius {r}")
        object.__setattr__(self, "cx", float(cx))
        object.__setattr__(self, "cy", float(cy))
        object.__setattr__(self, "r", float(r))

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("Circle is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, Circle) and (other.cx, other.cy, other.r) == (
            self.cx,
            self.cy,
            self.r,
        )

    def __hash__(self) -> int:
        return hash((Circle, self.cx, self.cy, self.r))

    def __repr__(self) -> str:
        return f"Circle({self.cx:g}, {self.cy:g}, {self.r:g})"

    def center(self) -> Point:
        return Point(self.cx, self.cy)

    def contains_point(self, point: Point, epsilon: float = 1e-7) -> bool:
        return point.distance_to(self.center()) <= self.r + epsilon

    def contains_circle(self, other: "Circle", epsilon: float = 1e-7) -> bool:
        distance = self.center().distance_to(other.center())
        return distance + other.r <= self.r + epsilon

    def overlaps(self, other: "Circle", epsilon: float = 1e-7) -> bool:
        """True if interiors overlap (tangency does not count)."""
        distance = self.center().distance_to(other.center())
        return distance + epsilon < self.r + other.r


def polar_to_cartesian(cx: float, cy: float, radius: float, angle: float) -> Point:
    """Angle in radians, measured clockwise from 12 o'clock (SVG habit)."""
    return Point(cx + radius * math.sin(angle), cy - radius * math.cos(angle))


# -- smallest enclosing circle (Welzl, move-to-front, expected O(n)) ---------


def enclosing_circle(circles: Sequence[Circle], seed: int = 0) -> Circle:
    """Smallest circle enclosing all *circles* (not just their centers).

    This is d3's ``packEnclose`` problem, solved with the randomized
    incremental algorithm over circles (Welzl's method extended from
    points to disks); the basis-extension logic is a faithful port of
    d3-hierarchy's ``extendBasis``.
    """
    items = list(circles)
    if not items:
        return Circle(0.0, 0.0, 0.0)
    rng = random.Random(seed)
    rng.shuffle(items)

    basis: List[Circle] = []
    enclosed: Optional[Circle] = None
    i = 0
    while i < len(items):
        circle = items[i]
        if enclosed is not None and _encloses_weak(enclosed, circle):
            i += 1
        else:
            basis = _extend_basis(basis, circle)
            enclosed = _circle_from_boundary(basis)
            i = 0
    assert enclosed is not None
    return enclosed


def _encloses_weak(a: Circle, b: Circle) -> bool:
    dr = a.r - b.r + max(a.r, b.r, 1.0) * 1e-9
    return dr >= 0 and dr * dr >= (a.cx - b.cx) ** 2 + (a.cy - b.cy) ** 2


def _encloses_not(a: Circle, b: Circle) -> bool:
    dr = a.r - b.r
    return dr < 0 or dr * dr < (a.cx - b.cx) ** 2 + (a.cy - b.cy) ** 2


def _encloses_weak_all(a: Circle, basis: List[Circle]) -> bool:
    return all(_encloses_weak(a, b) for b in basis)


def _extend_basis(basis: List[Circle], p: Circle) -> List[Circle]:
    if _encloses_weak_all(p, basis):
        return [p]
    for b in basis:
        if _encloses_not(p, b) and _encloses_weak_all(_enclose_two(b, p), basis):
            return [b, p]
    for i in range(len(basis) - 1):
        for j in range(i + 1, len(basis)):
            bi, bj = basis[i], basis[j]
            if (
                _encloses_not(_enclose_two(bi, bj), p)
                and _encloses_not(_enclose_two(bi, p), bj)
                and _encloses_not(_enclose_two(bj, p), bi)
                and _encloses_weak_all(_enclose_three(bi, bj, p), basis)
            ):
                return [bi, bj, p]
    raise RuntimeError("enclosing_circle: basis extension failed (degenerate input)")


def _circle_from_boundary(boundary: List[Circle]) -> Circle:
    if not boundary:
        return Circle(0.0, 0.0, 0.0)
    if len(boundary) == 1:
        return boundary[0]
    if len(boundary) == 2:
        return _enclose_two(boundary[0], boundary[1])
    return _enclose_three(boundary[0], boundary[1], boundary[2])


def _enclose_two(a: Circle, b: Circle) -> Circle:
    dx, dy = b.cx - a.cx, b.cy - a.cy
    distance = math.hypot(dx, dy)
    radius = (distance + a.r + b.r) / 2.0
    if radius <= a.r:
        return a
    if radius <= b.r:
        return b
    # Center sits along the line a->b.
    t = (radius - a.r) / distance if distance > 0 else 0.0
    return Circle(a.cx + dx * t, a.cy + dy * t, radius)


def _enclose_three(a: Circle, b: Circle, c: Circle) -> Circle:
    # Solve the Apollonius-like system for the circle tangent externally
    # containing all three (d3's encloseBasis3).
    x1, y1, r1 = a.cx, a.cy, a.r
    x2, y2, r2 = b.cx, b.cy, b.r
    x3, y3, r3 = c.cx, c.cy, c.r
    a2 = 2 * (x1 - x2)
    b2 = 2 * (y1 - y2)
    c2 = 2 * (r2 - r1)
    d2 = x1 * x1 + y1 * y1 - r1 * r1 - x2 * x2 - y2 * y2 + r2 * r2
    a3 = 2 * (x1 - x3)
    b3 = 2 * (y1 - y3)
    c3 = 2 * (r3 - r1)
    d3 = x1 * x1 + y1 * y1 - r1 * r1 - x3 * x3 - y3 * y3 + r3 * r3
    ab = a3 * b2 - a2 * b3
    if abs(ab) < 1e-12:
        # Degenerate (collinear centers) -- fall back to pairwise merge.
        best = _enclose_two(a, b)
        for candidate in (_enclose_two(a, c), _enclose_two(b, c)):
            if candidate.r > best.r:
                best = candidate
        if best.contains_circle(a) and best.contains_circle(b) and best.contains_circle(c):
            return best
        return Circle(
            (x1 + x2 + x3) / 3.0,
            (y1 + y2 + y3) / 3.0,
            max(
                math.hypot(x1 - (x1 + x2 + x3) / 3.0, y1 - (y1 + y2 + y3) / 3.0) + r1,
                math.hypot(x2 - (x1 + x2 + x3) / 3.0, y2 - (y1 + y2 + y3) / 3.0) + r2,
                math.hypot(x3 - (x1 + x2 + x3) / 3.0, y3 - (y1 + y2 + y3) / 3.0) + r3,
            ),
        )
    xa = (d2 * b3 - d3 * b2) / ab * -1
    xb = (b3 * c2 - b2 * c3) / ab
    ya = (a3 * d2 - a2 * d3) / ab
    yb = (a2 * c3 - a3 * c2) / ab
    # r satisfies: (xa + xb*r - x1)^2 + (ya + yb*r - y1)^2 = (r + r1)^2
    A = xb * xb + yb * yb - 1
    B = 2 * (r1 + (xa - x1) * xb + (ya - y1) * yb)
    C = (xa - x1) ** 2 + (ya - y1) ** 2 - r1 * r1
    if abs(A) > 1e-12:
        discriminant = B * B - 4 * A * C
        r = -(B + math.sqrt(max(0.0, discriminant))) / (2 * A)
    else:
        r = -C / B if abs(B) > 1e-12 else 0.0
    return Circle(xa + xb * r, ya + yb * r, r)


# -- B-splines for hierarchical edge bundling -----------------------------------


def bspline_points(
    control: Sequence[Point], samples_per_segment: int = 8
) -> List[Point]:
    """Sample a uniform cubic B-spline through *control* points.

    Endpoints are clamped (tripled control points) so the curve starts and
    ends exactly at the first/last control point, matching how D3 renders
    bundled edges.
    """
    if len(control) == 0:
        return []
    if len(control) == 1:
        return [control[0]]
    if len(control) == 2:
        return [control[0], control[1]]

    padded = [control[0], control[0]] + list(control) + [control[-1], control[-1]]
    out: List[Point] = []
    for i in range(len(padded) - 3):
        p0, p1, p2, p3 = padded[i : i + 4]
        for step in range(samples_per_segment):
            t = step / samples_per_segment
            out.append(_cubic_bspline(p0, p1, p2, p3, t))
    out.append(control[-1])
    return out


def _cubic_bspline(p0: Point, p1: Point, p2: Point, p3: Point, t: float) -> Point:
    t2 = t * t
    t3 = t2 * t
    b0 = (1 - 3 * t + 3 * t2 - t3) / 6.0
    b1 = (4 - 6 * t2 + 3 * t3) / 6.0
    b2 = (1 + 3 * t + 3 * t2 - 3 * t3) / 6.0
    b3 = t3 / 6.0
    return Point(
        b0 * p0.x + b1 * p1.x + b2 * p2.x + b3 * p3.x,
        b0 * p0.y + b1 * p1.y + b2 * p2.y + b3 * p3.y,
    )
