"""Circle packing layout reproducing Figure 6.

Inner circles are classes, intermediate circles clusters, the outer circle
the whole dataset.  The sibling-packing routine is the front-chain
algorithm d3-hierarchy uses (Wang et al., "Visualization of large
hierarchical data by circle packing", with d3's refinements), followed by
Welzl smallest-enclosing-circle to size the parent.
"""

from __future__ import annotations

import math
from typing import List

from .geometry import Circle, enclosing_circle
from .hierarchy import HierarchyNode

__all__ = ["circlepack_layout", "pack_siblings"]


class _PackNode:
    __slots__ = ("circle", "next", "previous", "x", "y", "r")

    def __init__(self, radius: float):
        self.x = 0.0
        self.y = 0.0
        self.r = radius
        self.next: "_PackNode" = self
        self.previous: "_PackNode" = self


def _place(b: "_PackNode", a: "_PackNode", c: "_PackNode") -> None:
    """Place circle c tangent to circles a and b (d3's place())."""
    dx = b.x - a.x
    dy = b.y - a.y
    d2 = dx * dx + dy * dy
    if d2 > 0:
        a2 = (a.r + c.r) ** 2
        b2 = (b.r + c.r) ** 2
        if a2 > b2:
            x = (d2 + b2 - a2) / (2 * d2)
            y = math.sqrt(max(0.0, b2 / d2 - x * x))
            c.x = b.x - x * dx - y * dy
            c.y = b.y - x * dy + y * dx
        else:
            x = (d2 + a2 - b2) / (2 * d2)
            y = math.sqrt(max(0.0, a2 / d2 - x * x))
            c.x = a.x + x * dx - y * dy
            c.y = a.y + x * dy + y * dx
    else:
        c.x = a.x + a.r + c.r
        c.y = a.y


def _intersects(a: "_PackNode", b: "_PackNode") -> bool:
    dr = a.r + b.r - 1e-6
    dx = b.x - a.x
    dy = b.y - a.y
    return dr > 0 and dr * dr > dx * dx + dy * dy


def pack_siblings(radii: List[float]) -> List[Circle]:
    """Pack circles of the given radii around the origin without overlap.

    Returns circles in input order.  This is the d3 ``packSiblings``
    front-chain construction: the first three circles are placed mutually
    tangent, later circles attach to the front chain at the position
    closest to the origin.
    """
    nodes = [_PackNode(r) for r in radii]
    count = len(nodes)
    if count == 0:
        return []
    # place first circle
    a = nodes[0]
    a.x, a.y = 0.0, 0.0
    if count == 1:
        return [Circle(n.x, n.y, n.r) for n in nodes]
    # second circle to the right
    b = nodes[1]
    a.x = -b.r
    b.x = a.r
    b.y = 0.0
    if count == 2:
        return [Circle(n.x, n.y, n.r) for n in nodes]
    # third circle tangent to both
    c = nodes[2]
    _place(b, a, c)

    # initialize the front chain a <-> b <-> c
    a.next = c.previous = b
    b.next = a.previous = c
    c.next = b.previous = a

    index = 3
    while index < count:
        c = nodes[index]
        _place(a, b, c)

        # test for intersections with the front chain
        j = b.next
        k = a.previous
        sj = b.r
        sk = a.r
        collided = False
        while True:
            if sj <= sk:
                if _intersects(j, c):
                    b = j
                    a.next = b
                    b.previous = a
                    collided = True
                    break
                sj += j.r
                j = j.next
            else:
                if _intersects(k, c):
                    a = k
                    a.next = b
                    b.previous = a
                    collided = True
                    break
                sk += k.r
                k = k.previous
            if j is k.next:  # chain exhausted without collision
                break
        if collided:
            continue

        # success: insert c between a and b
        c.previous = a
        c.next = b
        a.next = b.previous = c
        b = c

        # d3 advances the insertion anchor toward the weighted centroid; we
        # choose the chain node closest to the origin, which yields equally
        # compact packs at our scale and is simpler to reason about.
        best = b
        candidate = b.next
        anchor = b
        while candidate is not anchor:
            if math.hypot(candidate.x, candidate.y) < math.hypot(best.x, best.y):
                best = candidate
            candidate = candidate.next
        a = best
        b = a.next
        index += 1

    return [Circle(n.x, n.y, n.r) for n in nodes]


def circlepack_layout(
    root: HierarchyNode,
    radius: float,
    padding: float = 2.0,
) -> HierarchyNode:
    """Assign a :class:`Circle` to every node of *root* (modified in place).

    Leaf radii are sqrt-proportional to their value (area-proportional),
    parents wrap their packed children, and the whole arrangement is scaled
    to fit a circle of the given *radius* centered at the origin.
    ``root.sum_values()`` must have run.
    """
    if radius <= 0:
        raise ValueError(f"bad pack radius {radius}")
    if root.value is None:
        raise ValueError("run sum_values() before the circle-pack layout")

    _pack_recursive(root, padding)
    # root now has a local circle at origin with some radius; rescale.
    source = root.circle
    scale = radius / source.r if source.r > 0 else 1.0
    for node in root.each():
        local = node.circle
        node.circle = Circle(local.cx * scale, local.cy * scale, local.r * scale)
    return root


def _pack_recursive(node: HierarchyNode, padding: float) -> None:
    if node.is_leaf():
        value = max(0.0, node.value or 0.0)
        node.circle = Circle(0.0, 0.0, math.sqrt(value))
        return

    for child in node.children:
        _pack_recursive(child, padding)

    radii = [child.circle.r + padding for child in node.children]
    placed = pack_siblings(radii)
    # Shift each child subtree to its packed position (minus the padding
    # that was only there to keep siblings apart).
    for child, position in zip(node.children, placed):
        _shift_subtree(child, position.cx, position.cy)
    enclosure = enclosing_circle([child.circle for child in node.children])
    # Re-center children on the parent's own origin.
    for child in node.children:
        _shift_subtree(child, -enclosure.cx, -enclosure.cy)
    node.circle = Circle(0.0, 0.0, enclosure.r + padding)


def _shift_subtree(node: HierarchyNode, dx: float, dy: float) -> None:
    for descendant in node.each():
        circle = descendant.circle
        descendant.circle = Circle(circle.cx + dx, circle.cy + dy, circle.r)
