"""A d3-hierarchy-style tree model feeding the hierarchical layouts.

The Cluster Schema maps naturally onto a two-level hierarchy (dataset ->
clusters -> classes); the treemap, sunburst and circle-pack layouts all
consume :class:`HierarchyNode` trees, mirroring how H-BOLD feeds D3.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["HierarchyNode", "hierarchy_from_dict"]


class HierarchyNode:
    """A tree node with a name, an optional value, payload and children."""

    def __init__(
        self,
        name: str,
        value: Optional[float] = None,
        data: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.value = value  # leaf quantity, or aggregate after sum()
        self.data: Dict[str, Any] = data or {}
        self.children: List["HierarchyNode"] = []
        self.parent: Optional["HierarchyNode"] = None
        self.depth = 0
        # Layout outputs, populated by the layout algorithms:
        self.rect = None        # treemap
        self.arc = None         # sunburst: (a0, a1, r0, r1)
        self.circle = None      # circle packing

    # -- construction ----------------------------------------------------------

    def add_child(self, child: "HierarchyNode") -> "HierarchyNode":
        child.parent = self
        child.depth = self.depth + 1
        child._renumber()
        self.children.append(child)
        return child

    def _renumber(self) -> None:
        for child in self.children:
            child.depth = self.depth + 1
            child._renumber()

    # -- traversal --------------------------------------------------------------

    def is_leaf(self) -> bool:
        return not self.children

    def each(self) -> Iterator["HierarchyNode"]:
        """Pre-order traversal, self first."""
        yield self
        for child in self.children:
            yield from child.each()

    def each_after(self) -> Iterator["HierarchyNode"]:
        """Post-order traversal, self last."""
        for child in self.children:
            yield from child.each_after()
        yield self

    def leaves(self) -> List["HierarchyNode"]:
        return [node for node in self.each() if node.is_leaf()]

    def ancestors(self) -> List["HierarchyNode"]:
        """Self up to the root, inclusive."""
        chain = [self]
        node = self
        while node.parent is not None:
            node = node.parent
            chain.append(node)
        return chain

    def path_to(self, other: "HierarchyNode") -> List["HierarchyNode"]:
        """The tree path self -> ... -> LCA -> ... -> other."""
        own = self.ancestors()
        theirs = other.ancestors()
        own_set = {id(node) for node in own}
        lca = None
        for node in theirs:
            if id(node) in own_set:
                lca = node
                break
        if lca is None:
            raise ValueError("nodes are not in the same tree")
        up = []
        for node in own:
            up.append(node)
            if node is lca:
                break
        down = []
        for node in theirs:
            if node is lca:
                break
            down.append(node)
        return up + list(reversed(down))

    def height(self) -> int:
        if self.is_leaf():
            return 0
        return 1 + max(child.height() for child in self.children)

    def find(self, name: str) -> Optional["HierarchyNode"]:
        for node in self.each():
            if node.name == name:
                return node
        return None

    # -- aggregation -------------------------------------------------------------

    def sum_values(self, default_leaf: float = 1.0) -> "HierarchyNode":
        """Bottom-up value aggregation (d3's ``node.sum``).

        Leaves keep their own value (or *default_leaf* when unset,
        implementing the paper's "if no quantity is assigned... divided
        equally" rule); internal nodes become the total of their children.
        """
        for node in self.each_after():
            if node.is_leaf():
                if node.value is None:
                    node.value = default_leaf
            else:
                node.value = sum(child.value for child in node.children)
        return self

    def sort_by_value(self, descending: bool = True) -> "HierarchyNode":
        """Sort children recursively by value (d3 sorts before layouts)."""
        for node in self.each():
            node.children.sort(
                key=lambda child: (child.value or 0.0, child.name),
                reverse=descending,
            )
        return self

    def count_leaves(self) -> int:
        return len(self.leaves())

    def __repr__(self) -> str:
        return (
            f"<HierarchyNode {self.name!r} value={self.value} "
            f"children={len(self.children)}>"
        )


def hierarchy_from_dict(payload: Dict[str, Any]) -> HierarchyNode:
    """Build a tree from the nested-dict format (``name``/``value``/``children``).

    This is the same JSON shape D3 examples use, so fixtures written for
    the original H-BOLD front end translate directly.
    """
    node = HierarchyNode(
        str(payload.get("name", "")),
        value=payload.get("value"),
        data={k: v for k, v in payload.items() if k not in ("name", "value", "children")},
    )
    for child in payload.get("children", []):
        node.add_child(hierarchy_from_dict(child))
    return node
