"""Visualization substrate: the D3 replacement.

Implements the layout algorithms behind the paper's figures --
squarified treemap (Fig. 4), sunburst partition (Fig. 5), circle packing
(Fig. 6), Holten hierarchical edge bundling (Fig. 7) and a d3-force-style
graph layout (Fig. 2) -- plus SVG/HTML writers so every figure can be
regenerated as a standalone artifact.
"""

from .circlepack import circlepack_layout, pack_siblings
from .color import CATEGORY10, CATEGORY20, Color, categorical_color, darken, lighten
from .edge_bundling import (
    BundledEdge,
    EdgeBundlingDiagram,
    RadialLeaf,
    edge_bundling_layout,
)
from .force_layout import ForceLayout, force_layout
from .geometry import Circle, Point, Rect, bspline_points, enclosing_circle
from .hierarchy import HierarchyNode, hierarchy_from_dict
from .html_export import html_page, save_html_page
from .renderers import (
    render_circlepack,
    render_cluster_graph,
    render_edge_bundling,
    render_graph,
    render_sunburst,
    render_treemap,
)
from .sunburst import Arc, sunburst_layout
from .svg import SvgDocument, SvgElement, arc_path, polyline_path
from .treemap import treemap_layout

__all__ = [
    "Arc",
    "BundledEdge",
    "CATEGORY10",
    "CATEGORY20",
    "Circle",
    "Color",
    "EdgeBundlingDiagram",
    "ForceLayout",
    "HierarchyNode",
    "Point",
    "RadialLeaf",
    "Rect",
    "SvgDocument",
    "SvgElement",
    "arc_path",
    "bspline_points",
    "categorical_color",
    "circlepack_layout",
    "darken",
    "edge_bundling_layout",
    "enclosing_circle",
    "force_layout",
    "hierarchy_from_dict",
    "html_page",
    "lighten",
    "pack_siblings",
    "polyline_path",
    "render_circlepack",
    "render_cluster_graph",
    "render_edge_bundling",
    "render_graph",
    "render_sunburst",
    "render_treemap",
    "save_html_page",
    "sunburst_layout",
    "treemap_layout",
]
