"""A minimal SVG document builder.

The original H-BOLD presentation layer lets D3 emit SVG in the browser;
here the layouts are computed in Python and serialized to standalone SVG
through this module.  Only the elements the four layouts need are
modelled: rect, circle, path, text, line, group, title (tooltips).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Union

from .geometry import Point, polar_to_cartesian

__all__ = ["SvgElement", "SvgDocument", "arc_path", "polyline_path"]


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _format_number(value: float) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.3f}"
    return str(value)


class SvgElement:
    """One SVG element with attributes, children and optional text."""

    def __init__(self, tag: str, **attributes):
        self.tag = tag
        self.attributes: Dict[str, Union[str, float, int]] = dict(attributes)
        self.children: List["SvgElement"] = []
        self.text: Optional[str] = None

    def add(self, child: "SvgElement") -> "SvgElement":
        self.children.append(child)
        return child

    def set(self, name: str, value: Union[str, float, int]) -> "SvgElement":
        self.attributes[name] = value
        return self

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        parts = [pad, "<", self.tag]
        for name, value in self.attributes.items():
            if value is None:
                continue
            rendered = _format_number(value) if isinstance(value, (int, float)) else str(value)
            parts.append(f' {name.replace("_", "-")}="{_escape(rendered)}"')
        if not self.children and self.text is None:
            parts.append("/>")
            return "".join(parts)
        parts.append(">")
        if self.text is not None:
            parts.append(_escape(self.text))
        if self.children:
            parts.append("\n")
            for child in self.children:
                parts.append(child.render(indent + 1))
                parts.append("\n")
            parts.append(pad)
        parts.append(f"</{self.tag}>")
        return "".join(parts)


class SvgDocument:
    """A top-level ``<svg>`` with convenience constructors per shape."""

    def __init__(self, width: float, height: float, background: Optional[str] = None):
        self.width = width
        self.height = height
        self.root = SvgElement(
            "svg",
            xmlns="http://www.w3.org/2000/svg",
            width=width,
            height=height,
            viewBox=f"0 0 {_format_number(width)} {_format_number(height)}",
        )
        if background:
            self.rect(0, 0, width, height, fill=background, stroke="none")

    # -- shape helpers -----------------------------------------------------------

    def group(self, transform: Optional[str] = None, **attributes) -> SvgElement:
        group = SvgElement("g", **attributes)
        if transform:
            group.set("transform", transform)
        self.root.add(group)
        return group

    def rect(
        self, x: float, y: float, width: float, height: float, parent=None, **attributes
    ) -> SvgElement:
        element = SvgElement(
            "rect", x=x, y=y, width=max(0.0, width), height=max(0.0, height), **attributes
        )
        (parent or self.root).add(element)
        return element

    def circle(self, cx: float, cy: float, r: float, parent=None, **attributes) -> SvgElement:
        element = SvgElement("circle", cx=cx, cy=cy, r=max(0.0, r), **attributes)
        (parent or self.root).add(element)
        return element

    def line(
        self, x1: float, y1: float, x2: float, y2: float, parent=None, **attributes
    ) -> SvgElement:
        element = SvgElement("line", x1=x1, y1=y1, x2=x2, y2=y2, **attributes)
        (parent or self.root).add(element)
        return element

    def path(self, d: str, parent=None, **attributes) -> SvgElement:
        element = SvgElement("path", d=d, **attributes)
        (parent or self.root).add(element)
        return element

    def text(
        self, x: float, y: float, content: str, parent=None, **attributes
    ) -> SvgElement:
        element = SvgElement("text", x=x, y=y, **attributes)
        element.text = content
        (parent or self.root).add(element)
        return element

    def title(self, element: SvgElement, content: str) -> SvgElement:
        """Attach a ``<title>`` tooltip to *element*."""
        tooltip = SvgElement("title")
        tooltip.text = content
        element.children.insert(0, tooltip)
        return tooltip

    def render(self) -> str:
        return '<?xml version="1.0" encoding="UTF-8"?>\n' + self.root.render() + "\n"

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())


def arc_path(
    cx: float, cy: float, a0: float, a1: float, r0: float, r1: float
) -> str:
    """An annular-sector path (the sunburst cell shape).

    Angles in radians, clockwise from 12 o'clock.  Full rings (span ~2*pi)
    are emitted as two half-arcs because a single SVG arc cannot span 360
    degrees.
    """
    span = a1 - a0
    if span <= 0:
        # Degenerate: a zero-width wedge renders as nothing.
        start = polar_to_cartesian(cx, cy, r1, a0)
        return f"M {start.x:.3f} {start.y:.3f}"
    if span >= 2.0 * math.pi - 1e-9:
        mid = a0 + span / 2.0
        return arc_path(cx, cy, a0, mid, r0, r1) + " " + arc_path(cx, cy, mid, a1, r0, r1)

    large = 1 if span > math.pi else 0
    outer_start = polar_to_cartesian(cx, cy, r1, a0)
    outer_end = polar_to_cartesian(cx, cy, r1, a1)
    parts = [
        f"M {outer_start.x:.3f} {outer_start.y:.3f}",
        f"A {r1:.3f} {r1:.3f} 0 {large} 1 {outer_end.x:.3f} {outer_end.y:.3f}",
    ]
    if r0 > 1e-9:
        inner_end = polar_to_cartesian(cx, cy, r0, a1)
        inner_start = polar_to_cartesian(cx, cy, r0, a0)
        parts.append(f"L {inner_end.x:.3f} {inner_end.y:.3f}")
        parts.append(f"A {r0:.3f} {r0:.3f} 0 {large} 0 {inner_start.x:.3f} {inner_start.y:.3f}")
    else:
        parts.append(f"L {cx:.3f} {cy:.3f}")
    parts.append("Z")
    return " ".join(parts)


def polyline_path(points: Sequence[Point]) -> str:
    """An open path through *points* (bundled edges, graph links)."""
    if not points:
        return ""
    parts = [f"M {points[0].x:.3f} {points[0].y:.3f}"]
    for point in points[1:]:
        parts.append(f"L {point.x:.3f} {point.y:.3f}")
    return " ".join(parts)
