"""Squarified treemap layout (Bruls, Huizing, van Wijk 2000).

Reproduces Figure 4: each cluster is a rectangle whose area is the total
instance count of its classes, with class rectangles nested inside in a
part-to-whole relationship; classes without a quantity split their
cluster's remainder equally (handled upstream by ``sum_values``).
"""

from __future__ import annotations

from typing import List

from .geometry import Rect
from .hierarchy import HierarchyNode

__all__ = ["treemap_layout"]


def treemap_layout(
    root: HierarchyNode,
    width: float,
    height: float,
    padding: float = 2.0,
    inner_padding: float = 1.0,
) -> HierarchyNode:
    """Assign a :class:`Rect` to every node of *root* (modified in place).

    ``root.sum_values()`` must have run (any node with value None raises).
    ``padding`` insets children inside internal nodes; ``inner_padding``
    separates sibling rectangles.
    """
    if width <= 0 or height <= 0:
        raise ValueError(f"bad treemap extent {width}x{height}")
    if root.value is None:
        raise ValueError("run sum_values() before the treemap layout")

    root.rect = Rect(0.0, 0.0, width, height)
    for node in root.each():
        if node.is_leaf():
            continue
        assert node.rect is not None
        inner = node.rect.inset(padding)
        _squarify(node.children, inner, inner_padding)
    return root


def _squarify(children: List[HierarchyNode], rect: Rect, gap: float) -> None:
    """Lay the children into *rect* with the squarified heuristic."""
    items = [child for child in children if (child.value or 0.0) >= 0.0]
    for child in children:
        if child.value is None:
            raise ValueError(f"node {child.name!r} has no value; run sum_values()")
    total = sum(child.value for child in items)
    if total <= 0 or rect.area <= 0:
        # Give every child a zero-size rect at the origin corner.
        for child in children:
            child.rect = Rect(rect.x, rect.y, 0.0, 0.0)
        return

    scale = rect.area / total
    # Work on a mutable copy of the free area.
    x, y, w, h = rect.x, rect.y, rect.width, rect.height
    queue = sorted(items, key=lambda c: (-(c.value or 0.0), c.name))

    row: List[HierarchyNode] = []
    row_area = 0.0

    def worst(extra: float = 0.0, extra_count: int = 0) -> float:
        """Worst aspect ratio of the current row laid along the short side."""
        side = min(w, h)
        area = row_area + extra
        count = len(row) + extra_count
        if area <= 0 or side <= 0 or count == 0:
            return float("inf")
        thickness = area / side
        worst_ratio = 1.0
        values = [child.value * scale for child in row]
        if extra_count:
            values.append(extra)
        for value in values:
            length = value / thickness if thickness > 0 else 0.0
            if length <= 0:
                return float("inf")
            ratio = max(thickness / length, length / thickness)
            worst_ratio = max(worst_ratio, ratio)
        return worst_ratio

    def flush_row() -> None:
        nonlocal x, y, w, h, row, row_area
        if not row:
            return
        side = min(w, h)
        thickness = row_area / side if side > 0 else 0.0
        offset = 0.0
        horizontal = w <= h  # row spans the full width when the rect is tall
        for child in row:
            value = child.value * scale
            length = value / thickness if thickness > 0 else 0.0
            if horizontal:
                child.rect = _padded_rect(x + offset, y, length, thickness, gap)
            else:
                child.rect = _padded_rect(x, y + offset, thickness, length, gap)
            offset += length
        if horizontal:
            y += thickness
            h -= thickness
        else:
            x += thickness
            w -= thickness
        row = []
        row_area = 0.0

    for child in queue:
        value = child.value * scale
        if row and worst() < worst(extra=value, extra_count=1):
            flush_row()
        row.append(child)
        row_area += value
    flush_row()


def _padded_rect(x: float, y: float, width: float, height: float, gap: float) -> Rect:
    """Shrink a cell by the sibling gap, clamping at zero."""
    half = gap / 2.0
    return Rect(
        x + half,
        y + half,
        max(0.0, width - gap),
        max(0.0, height - gap),
    )
