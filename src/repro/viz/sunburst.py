"""Sunburst (radial partition) layout reproducing Figure 5.

The inner ring holds the clusters, the outer ring the classes grouped by
cluster; each node's angular extent is proportional to its value within
its parent's extent, which is exactly d3's partition layout in polar
coordinates.
"""

from __future__ import annotations

import math
from typing import Tuple

from .hierarchy import HierarchyNode

__all__ = ["sunburst_layout", "Arc"]


class Arc:
    """An annular sector: start/end angle (radians) and inner/outer radius.

    Angles are measured clockwise from 12 o'clock, matching the SVG arc
    helper in :mod:`repro.viz.svg`.
    """

    __slots__ = ("a0", "a1", "r0", "r1")

    def __init__(self, a0: float, a1: float, r0: float, r1: float):
        if a1 < a0:
            raise ValueError(f"arc angles out of order: {a0} > {a1}")
        if r1 < r0 or r0 < 0:
            raise ValueError(f"arc radii out of order: {r0} > {r1}")
        object.__setattr__(self, "a0", float(a0))
        object.__setattr__(self, "a1", float(a1))
        object.__setattr__(self, "r0", float(r0))
        object.__setattr__(self, "r1", float(r1))

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("Arc is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, Arc) and (
            (other.a0, other.a1, other.r0, other.r1)
            == (self.a0, self.a1, self.r0, self.r1)
        )

    def __hash__(self) -> int:
        return hash((Arc, self.a0, self.a1, self.r0, self.r1))

    def __repr__(self) -> str:
        return f"Arc(a0={self.a0:.4f}, a1={self.a1:.4f}, r0={self.r0:g}, r1={self.r1:g})"

    @property
    def span(self) -> float:
        return self.a1 - self.a0

    def midangle(self) -> float:
        return (self.a0 + self.a1) / 2.0

    def area(self) -> float:
        """Exact annular-sector area (for proportionality checks)."""
        return 0.5 * self.span * (self.r1 ** 2 - self.r0 ** 2)


def sunburst_layout(
    root: HierarchyNode,
    radius: float,
    start_angle: float = 0.0,
    end_angle: float = 2.0 * math.pi,
    ring_padding: float = 0.0,
) -> HierarchyNode:
    """Assign an :class:`Arc` to every node of *root* (modified in place).

    Ring thickness divides *radius* evenly across tree height + 1; the root
    occupies the center disc.  ``root.sum_values()`` must have run.
    """
    if radius <= 0:
        raise ValueError(f"bad sunburst radius {radius}")
    if root.value is None:
        raise ValueError("run sum_values() before the sunburst layout")
    depth_count = root.height() + 1
    thickness = radius / depth_count

    root.arc = Arc(start_angle, end_angle, 0.0, max(0.0, thickness - ring_padding))
    _partition(root, start_angle, end_angle, thickness, ring_padding)
    return root


def _partition(
    node: HierarchyNode,
    a0: float,
    a1: float,
    thickness: float,
    ring_padding: float,
) -> None:
    if node.is_leaf() or not node.value:
        return
    total = sum(child.value or 0.0 for child in node.children)
    if total <= 0:
        # Children with zero total get zero-span arcs at the start angle.
        for child in node.children:
            r0 = thickness * child.depth
            child.arc = Arc(a0, a0, r0, r0 + thickness - ring_padding)
            _partition(child, a0, a0, thickness, ring_padding)
        return
    cursor = a0
    span = a1 - a0
    for child in node.children:
        fraction = (child.value or 0.0) / total
        child_span = span * fraction
        r0 = thickness * child.depth
        child.arc = Arc(
            cursor, cursor + child_span, r0, r0 + max(0.0, thickness - ring_padding)
        )
        _partition(child, cursor, cursor + child_span, thickness, ring_padding)
        cursor += child_span
