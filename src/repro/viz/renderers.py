"""Figure renderers: layout + SVG -> the paper's visual artifacts.

Each function takes an already-built hierarchy/graph, runs the matching
layout and returns a complete :class:`SvgDocument` -- the Python analog of
the D3 views in Figures 2 and 4-7.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Optional, Sequence, Tuple

from .color import CATEGORY20, Color, categorical_color, darken, lighten
from .edge_bundling import EdgeBundlingDiagram, edge_bundling_layout
from .force_layout import force_layout
from .geometry import Point
from .hierarchy import HierarchyNode
from .circlepack import circlepack_layout
from .sunburst import sunburst_layout
from .svg import SvgDocument, arc_path, polyline_path
from .treemap import treemap_layout

__all__ = [
    "render_treemap",
    "render_sunburst",
    "render_circlepack",
    "render_edge_bundling",
    "render_graph",
    "render_cluster_graph",
]

_ROLE_COLORS = {
    "focus": "#000000",
    "domain": "#d62728",  # red: domain classes of properties into the focus
    "range": "#2ca02c",   # green: range classes of properties out of the focus
    "both": "#9467bd",
}


def _cluster_color(root: HierarchyNode) -> Dict[int, Color]:
    """One palette color per depth-1 child (cluster)."""
    return {
        id(child): categorical_color(index, CATEGORY20)
        for index, child in enumerate(root.children)
    }


def render_treemap(
    root: HierarchyNode,
    width: float = 960.0,
    height: float = 600.0,
    label_threshold: float = 28.0,
) -> SvgDocument:
    """Figure 4: treemap of the Cluster Schema, area proportional to value."""
    root.sum_values()
    treemap_layout(root, width, height)
    doc = SvgDocument(width, height, background="#ffffff")
    colors = _cluster_color(root)

    for cluster in root.children:
        color = colors[id(cluster)]
        group = doc.group()
        rect = cluster.rect
        outline = doc.rect(
            rect.x,
            rect.y,
            rect.width,
            rect.height,
            parent=group,
            fill=str(lighten(color, 0.25)),
            stroke=str(darken(color)),
            stroke_width=1.5,
        )
        doc.title(outline, f"{cluster.name}: {int(cluster.value or 0)} instances")
        for leaf in cluster.each():
            if leaf is cluster or not leaf.is_leaf():
                continue
            cell = leaf.rect
            if cell is None or cell.area <= 0:
                continue
            element = doc.rect(
                cell.x,
                cell.y,
                cell.width,
                cell.height,
                parent=group,
                fill=str(color),
                stroke="#ffffff",
                stroke_width=0.8,
                fill_opacity=0.85,
            )
            doc.title(element, f"{leaf.name}: {int(leaf.value or 0)} instances")
            if cell.width >= label_threshold and cell.height >= 14.0:
                doc.text(
                    cell.x + 3,
                    cell.y + 12,
                    _short(leaf.name),
                    parent=group,
                    font_size=10,
                    font_family="sans-serif",
                    fill="#ffffff",
                )
    return doc


def render_sunburst(
    root: HierarchyNode, radius: float = 300.0, label_min_span: float = 0.08
) -> SvgDocument:
    """Figure 5: sunburst with clusters on the inner ring, classes outside."""
    root.sum_values()
    sunburst_layout(root, radius)
    size = radius * 2.0 + 20.0
    doc = SvgDocument(size, size, background="#ffffff")
    center = doc.group(transform=f"translate({size / 2:.1f},{size / 2:.1f})")
    colors = _cluster_color(root)

    for node in root.each():
        if node is root:
            continue
        arc = node.arc
        if arc is None or arc.span <= 1e-12:
            continue
        cluster = node.ancestors()[-2] if len(node.ancestors()) >= 2 else node
        color = colors.get(id(cluster), categorical_color(0))
        fill = color if node.depth == 1 else lighten(color, 0.18)
        element = doc.path(
            arc_path(0.0, 0.0, arc.a0, arc.a1, arc.r0, arc.r1),
            parent=center,
            fill=str(fill),
            stroke="#ffffff",
            stroke_width=1,
        )
        doc.title(element, f"{node.name}: {int(node.value or 0)} instances")
        if arc.span >= label_min_span:
            mid = arc.midangle()
            r = (arc.r0 + arc.r1) / 2.0
            doc.text(
                r * math.sin(mid),
                -r * math.cos(mid),
                _short(node.name),
                parent=center,
                font_size=9,
                font_family="sans-serif",
                text_anchor="middle",
                fill="#222222",
            )
    return doc


def render_circlepack(root: HierarchyNode, radius: float = 300.0) -> SvgDocument:
    """Figure 6: circle packing, dataset > clusters > classes."""
    root.sum_values()
    circlepack_layout(root, radius)
    size = radius * 2.0 + 20.0
    doc = SvgDocument(size, size, background="#ffffff")
    center = doc.group(transform=f"translate({size / 2:.1f},{size / 2:.1f})")
    colors = _cluster_color(root)

    # outermost circle: the entire dataset
    outer = doc.circle(
        root.circle.cx,
        root.circle.cy,
        root.circle.r,
        parent=center,
        fill="#f0f0f5",
        stroke="#999999",
        stroke_width=1,
    )
    doc.title(outer, f"{root.name}: {int(root.value or 0)} instances")

    for cluster in root.children:
        color = colors[id(cluster)]
        circle = cluster.circle
        element = doc.circle(
            circle.cx,
            circle.cy,
            circle.r,
            parent=center,
            fill=str(lighten(color, 0.28)),
            stroke=str(darken(color)),
            stroke_width=1,
        )
        doc.title(element, f"{cluster.name}: {int(cluster.value or 0)} instances")
        for leaf in cluster.leaves():
            if leaf is cluster:
                continue
            inner = leaf.circle
            leaf_el = doc.circle(
                inner.cx,
                inner.cy,
                inner.r,
                parent=center,
                fill=str(color),
                fill_opacity=0.85,
                stroke="#ffffff",
                stroke_width=0.6,
            )
            doc.title(leaf_el, f"{leaf.name}: {int(leaf.value or 0)} instances")
    return doc


def render_edge_bundling(
    diagram: EdgeBundlingDiagram, label: bool = True
) -> SvgDocument:
    """Figure 7: hierarchical edge bundling with domain/range highlighting."""
    margin = 110.0
    size = diagram.radius * 2.0 + margin * 2.0
    doc = SvgDocument(size, size, background="#ffffff")
    center = doc.group(transform=f"translate({size / 2:.1f},{size / 2:.1f})")

    for edge in diagram.edges:
        involved = diagram.focus in (edge.source, edge.target) if diagram.focus else False
        doc.path(
            polyline_path(edge.path),
            parent=center,
            fill="none",
            stroke="#d62728" if involved else "#8888bb",
            stroke_width=1.6 if involved else 0.7,
            stroke_opacity=0.9 if involved else 0.45,
        )

    for leaf in diagram.leaves:
        role = diagram.roles.get(leaf.node.name)
        color = _ROLE_COLORS.get(role, "#555555")
        dot = doc.circle(
            leaf.point.x, leaf.point.y, 3.5 if role else 2.5, parent=center, fill=color
        )
        doc.title(dot, leaf.node.name)
        if label:
            offset = diagram.radius + 8.0
            angle = leaf.angle
            x = offset * math.sin(angle)
            y = -offset * math.cos(angle)
            doc.text(
                x,
                y,
                _short(leaf.node.name),
                parent=center,
                font_size=9,
                font_family="sans-serif",
                text_anchor=leaf.label_anchor,
                font_weight="bold" if role == "focus" else "normal",
                fill=color,
            )
    return doc


def render_graph(
    nodes: Sequence[Hashable],
    edges: Sequence[Tuple[Hashable, Hashable]],
    labels: Optional[Dict[Hashable, str]] = None,
    node_sizes: Optional[Dict[Hashable, float]] = None,
    highlight: Optional[Hashable] = None,
    width: float = 900.0,
    height: float = 650.0,
    iterations: int = 200,
) -> SvgDocument:
    """Figure 2-style node-link view via the force layout."""
    positions = force_layout(nodes, edges, width=width, height=height, iterations=iterations)
    doc = SvgDocument(width, height, background="#ffffff")
    labels = labels or {}
    node_sizes = node_sizes or {}

    for source, target in edges:
        a, b = positions[source], positions[target]
        doc.line(a.x, a.y, b.x, b.y, stroke="#bbbbbb", stroke_width=1)

    for node in nodes:
        point = positions[node]
        is_focus = node == highlight
        radius = node_sizes.get(node, 8.0)
        element = doc.circle(
            point.x,
            point.y,
            radius * (1.3 if is_focus else 1.0),
            fill="#d62728" if is_focus else "#1f77b4",
            stroke="#ffffff",
            stroke_width=1.5,
        )
        doc.title(element, labels.get(node, str(node)))
        doc.text(
            point.x + radius + 2,
            point.y + 3,
            _short(labels.get(node, str(node))),
            font_size=10,
            font_family="sans-serif",
            fill="#333333",
        )
    return doc


def render_cluster_graph(
    clusters: Sequence[Tuple[Hashable, str, int, int]],
    edges: Sequence[Tuple[Hashable, Hashable, int]],
    width: float = 800.0,
    height: float = 600.0,
    iterations: int = 200,
) -> SvgDocument:
    """Figure 2 step 1: the Cluster Schema as a node-link diagram.

    *clusters* are ``(id, label, class_count, instance_count)`` tuples;
    *edges* are ``(source_id, target_id, weight)``.  Node radius scales
    with the number of classes in the cluster, edge thickness with the
    aggregated connection weight.
    """
    ids = [cluster_id for cluster_id, _, _, _ in clusters]
    if not ids:
        raise ValueError("cluster schema has no clusters to draw")
    positions = force_layout(
        ids,
        [(s, t) for s, t, _ in edges],
        width=width,
        height=height,
        iterations=iterations,
        link_distance=140.0,
        charge=-400.0,
    )
    doc = SvgDocument(width, height, background="#ffffff")

    max_weight = max((w for _, _, w in edges), default=1) or 1
    for source, target, weight in edges:
        a, b = positions[source], positions[target]
        doc.line(
            a.x, a.y, b.x, b.y,
            stroke="#aaaacc",
            stroke_width=1.0 + 4.0 * (weight / max_weight),
            stroke_opacity=0.7,
        )

    max_classes = max((count for _, _, count, _ in clusters), default=1) or 1
    for index, (cluster_id, label, class_count, instance_count) in enumerate(clusters):
        point = positions[cluster_id]
        color = categorical_color(index, CATEGORY20)
        radius = 14.0 + 26.0 * math.sqrt(class_count / max_classes)
        circle = doc.circle(
            point.x, point.y, radius,
            fill=str(lighten(color, 0.1)),
            stroke=str(darken(color)),
            stroke_width=2,
        )
        doc.title(
            circle,
            f"{label}: {class_count} classes, {instance_count} instances",
        )
        doc.text(
            point.x, point.y + 4,
            _short(str(label), 16),
            font_size=11,
            font_family="sans-serif",
            font_weight="bold",
            text_anchor="middle",
            fill="#222222",
        )
        doc.text(
            point.x, point.y + radius + 12,
            f"{class_count} classes",
            font_size=9,
            font_family="sans-serif",
            text_anchor="middle",
            fill="#555555",
        )
    return doc


def _short(name: str, limit: int = 22) -> str:
    return name if len(name) <= limit else name[: limit - 1] + "…"
