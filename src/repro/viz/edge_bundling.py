"""Hierarchical edge bundling (Holten 2006) reproducing Figure 7.

Classes sit on an invisible circle grouped by cluster; each property
(edge) is routed along the cluster-hierarchy path between its endpoints
and smoothed with a clamped B-spline; the bundling strength ``beta``
interpolates between the spline through the hierarchy path (beta=1) and a
straight line (beta=0), exactly as in Holten's paper.

The layout also computes the domain/range highlighting of Figure 7: given
a focus class, incoming properties mark their subject class as a
``domain`` neighbour (red in the paper) and outgoing properties mark their
object class as ``range`` (green).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from .geometry import Point, bspline_points, polar_to_cartesian
from .hierarchy import HierarchyNode

__all__ = ["BundledEdge", "RadialLeaf", "edge_bundling_layout", "EdgeBundlingDiagram"]

NodeId = Hashable


class RadialLeaf:
    """A leaf (class) positioned on the layout circle."""

    __slots__ = ("node", "angle", "point", "label_anchor")

    def __init__(self, node: HierarchyNode, angle: float, point: Point):
        self.node = node
        self.angle = angle
        self.point = point
        #: 'start' on the right half of the circle, 'end' on the left
        self.label_anchor = "start" if math.sin(angle) >= 0 else "end"


class BundledEdge:
    """One bundled property edge with its sampled curve."""

    __slots__ = ("source", "target", "path", "data")

    def __init__(
        self,
        source: str,
        target: str,
        path: List[Point],
        data: Optional[Dict] = None,
    ):
        self.source = source
        self.target = target
        self.path = path
        self.data = data or {}

    def length(self) -> float:
        return sum(
            self.path[i].distance_to(self.path[i + 1]) for i in range(len(self.path) - 1)
        )

    def straight_length(self) -> float:
        if len(self.path) < 2:
            return 0.0
        return self.path[0].distance_to(self.path[-1])


class EdgeBundlingDiagram:
    """The complete Figure-7 artifact: leaf ring + bundled edges + roles."""

    def __init__(
        self,
        leaves: List[RadialLeaf],
        edges: List[BundledEdge],
        radius: float,
        focus: Optional[str] = None,
        roles: Optional[Dict[str, str]] = None,
    ):
        self.leaves = leaves
        self.edges = edges
        self.radius = radius
        self.focus = focus
        #: class name -> 'focus' | 'domain' | 'range' | 'both'
        self.roles = roles or {}

    def leaf(self, name: str) -> Optional[RadialLeaf]:
        for leaf in self.leaves:
            if leaf.node.name == name:
                return leaf
        return None


def edge_bundling_layout(
    root: HierarchyNode,
    edges: Sequence[Tuple[str, str]],
    radius: float = 300.0,
    beta: float = 0.85,
    focus: Optional[str] = None,
    edge_data: Optional[Sequence[Dict]] = None,
    samples_per_segment: int = 8,
) -> EdgeBundlingDiagram:
    """Compute the hierarchical edge bundling diagram.

    *root* is the cluster hierarchy whose leaves are classes; *edges* are
    (source-leaf-name, target-leaf-name) property edges.  ``beta`` in
    [0, 1] is Holten's bundling strength.
    """
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"beta must be in [0, 1], got {beta}")
    leaves = root.leaves()
    if not leaves:
        raise ValueError("hierarchy has no leaves to place on the circle")

    # 1. Place leaves evenly on the circle, clusters contiguous (leaf order
    #    of the pre-order traversal keeps siblings together).
    angle_step = 2.0 * math.pi / len(leaves)
    placed: List[RadialLeaf] = []
    position: Dict[str, Point] = {}
    by_name: Dict[str, HierarchyNode] = {}
    for index, node in enumerate(leaves):
        angle = index * angle_step
        point = polar_to_cartesian(0.0, 0.0, radius, angle)
        placed.append(RadialLeaf(node, angle, point))
        if node.name in by_name:
            raise ValueError(f"duplicate leaf name {node.name!r}")
        by_name[node.name] = node
        position[node.name] = point

    # Interior nodes sit at the centroid of their leaves, shrunk toward the
    # center by depth (the deeper the node, the closer to the rim).
    height = root.height()
    interior_position: Dict[int, Point] = {}
    for node in root.each():
        if node.is_leaf():
            interior_position[id(node)] = position[node.name]
            continue
        members = node.leaves()
        cx = sum(position[leaf.name].x for leaf in members) / len(members)
        cy = sum(position[leaf.name].y for leaf in members) / len(members)
        if height > 0:
            shrink = node.depth / (height + 1)
        else:
            shrink = 0.0
        interior_position[id(node)] = Point(cx * shrink, cy * shrink)

    # 2. Route each edge along the hierarchy path and sample the B-spline.
    bundled: List[BundledEdge] = []
    for index, (source, target) in enumerate(edges):
        if source not in by_name:
            raise KeyError(f"edge source {source!r} is not a leaf")
        if target not in by_name:
            raise KeyError(f"edge target {target!r} is not a leaf")
        data = dict(edge_data[index]) if edge_data is not None else {}
        control_nodes = by_name[source].path_to(by_name[target])
        control = [interior_position[id(node)] for node in control_nodes]
        curve = bspline_points(control, samples_per_segment=samples_per_segment)
        path = _apply_beta(curve, beta)
        bundled.append(BundledEdge(source, target, path, data))

    # 3. Focus-class domain/range roles (Figure 7's highlighting).
    roles: Dict[str, str] = {}
    if focus is not None:
        if focus not in by_name:
            raise KeyError(f"focus class {focus!r} is not a leaf")
        roles[focus] = "focus"
        for source, target in edges:
            if target == focus and source != focus:
                # property points INTO the focus: the source is a domain class
                _merge_role(roles, source, "domain")
            if source == focus and target != focus:
                # property leaves the focus: the target is a range class
                _merge_role(roles, target, "range")

    return EdgeBundlingDiagram(placed, bundled, radius, focus=focus, roles=roles)


def _apply_beta(curve: List[Point], beta: float) -> List[Point]:
    """Holten's straightening: P'(t) = beta*P(t) + (1-beta)*lerp(start, end)."""
    if len(curve) < 2 or beta >= 1.0:
        return list(curve)
    start, end = curve[0], curve[-1]
    n = len(curve) - 1
    out: List[Point] = []
    for index, point in enumerate(curve):
        t = index / n
        straight = Point(
            start.x + (end.x - start.x) * t,
            start.y + (end.y - start.y) * t,
        )
        out.append(
            Point(
                beta * point.x + (1.0 - beta) * straight.x,
                beta * point.y + (1.0 - beta) * straight.y,
            )
        )
    return out


def _merge_role(roles: Dict[str, str], name: str, role: str) -> None:
    existing = roles.get(name)
    if existing is None:
        roles[name] = role
    elif existing != role and existing != "focus":
        roles[name] = "both"
