"""Query evaluation over a :class:`~repro.rdf.graph.Graph`.

The evaluator walks the AST directly (no separate algebra IR -- the subset
is small enough that the classic textbook pipeline would only add plumbing):

1. group graph patterns produce streams of solutions (dicts Variable->Term),
2. BGPs are answered by index nested-loop joins, most selective pattern
   first,
3. OPTIONAL is a left join, UNION a concatenation, FILTER a predicate with
   SPARQL error semantics, VALUES an inline join,
4. aggregation groups solutions and folds aggregates,
5. solution modifiers (ORDER/DISTINCT/OFFSET/LIMIT) apply last, in the order
   the SPARQL spec defines.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..rdf.graph import Graph
from ..rdf.terms import BNode, IRI, Literal, Term, Variable
from .errors import SparqlEvaluationError
from .functions import (
    ExpressionError,
    Solution,
    compare_terms,
    effective_boolean_value,
    evaluate_expression,
)
from .nodes import (
    Aggregate,
    AskQuery,
    ExistsExpression,
    Expression,
    FilterPattern,
    GroupPattern,
    OptionalPattern,
    Projection,
    Query,
    SelectQuery,
    TriplePattern,
    UnionPattern,
    ValuesPattern,
    VariableExpression,
    contains_aggregate,
)
from .parser import parse_query
from .results import AskResult, Row, SelectResult

__all__ = ["evaluate", "QueryEngine"]


def _substitute(pattern: TriplePattern, solution: Solution) -> Tuple:
    """Resolve pattern positions against *solution*; variables stay None."""

    def resolve(term):
        if isinstance(term, Variable):
            return solution.get(term)
        if isinstance(term, BNode):
            # Blank nodes in query patterns act as non-selectable variables.
            return None
        return term

    return resolve(pattern.subject), resolve(pattern.predicate), resolve(pattern.object)


class QueryEngine:
    """Evaluates parsed queries against one graph.

    Instances are cheap; hold one per graph or just use :func:`evaluate`.
    """

    def __init__(self, graph: Graph):
        self.graph = graph

    # -- public API -----------------------------------------------------------

    def run(self, query: Union[str, Query]) -> Union[SelectResult, AskResult]:
        if isinstance(query, str):
            query = parse_query(query)
        if isinstance(query, SelectQuery):
            return self._run_select(query)
        if isinstance(query, AskQuery):
            return AskResult(self._any_solution(query.where))
        raise SparqlEvaluationError(f"cannot evaluate {type(query).__name__}")

    # -- pattern evaluation -----------------------------------------------------

    def _evaluate_group(
        self, group: GroupPattern, bindings: Iterable[Solution]
    ) -> Iterator[Solution]:
        """Evaluate a group pattern given an input solution stream."""
        solutions = list(bindings)
        filters: List[FilterPattern] = []
        pending_bgp: List[TriplePattern] = []

        def flush_bgp(current: List[Solution]) -> List[Solution]:
            if not pending_bgp:
                return current
            out = self._evaluate_bgp(list(pending_bgp), current)
            pending_bgp.clear()
            return out

        for element in group.elements:
            if isinstance(element, TriplePattern):
                pending_bgp.append(element)
            elif isinstance(element, FilterPattern):
                filters.append(element)
            elif isinstance(element, OptionalPattern):
                solutions = flush_bgp(solutions)
                solutions = self._evaluate_optional(element, solutions)
            elif isinstance(element, UnionPattern):
                solutions = flush_bgp(solutions)
                merged: List[Solution] = []
                for alternative in element.alternatives:
                    merged.extend(self._evaluate_group(alternative, solutions))
                solutions = merged
            elif isinstance(element, GroupPattern):
                solutions = flush_bgp(solutions)
                solutions = list(self._evaluate_group(element, solutions))
            elif isinstance(element, ValuesPattern):
                solutions = flush_bgp(solutions)
                solutions = self._evaluate_values(element, solutions)
            else:  # pragma: no cover - parser prevents this
                raise SparqlEvaluationError(f"unknown pattern element {element!r}")

        solutions = flush_bgp(solutions)

        for filter_pattern in filters:
            solutions = [
                s for s in solutions if self._filter_passes(filter_pattern.expression, s)
            ]
        return iter(solutions)

    def _evaluate_bgp(
        self, patterns: List[TriplePattern], solutions: List[Solution]
    ) -> List[Solution]:
        """Index nested-loop join, re-picking the most selective pattern."""
        if not patterns:
            return solutions

        current = solutions
        remaining = list(patterns)
        bound_vars = set()
        for solution in solutions:
            bound_vars.update(solution.keys())
            break  # the header is identical across input solutions

        while remaining:
            remaining.sort(
                key=lambda p: -self._selectivity_score(p, bound_vars)
            )
            pattern = remaining.pop(0)
            next_solutions: List[Solution] = []
            for solution in current:
                next_solutions.extend(self._match_pattern(pattern, solution))
            current = next_solutions
            for variable in pattern.variables():
                bound_vars.add(variable)
            if not current:
                return []
        return current

    @staticmethod
    def _selectivity_score(pattern: TriplePattern, bound_vars: set) -> int:
        """Higher = evaluate earlier. Ground/bound positions add selectivity."""
        score = 0
        for position, weight in (
            (pattern.subject, 4),
            (pattern.object, 3),
            (pattern.predicate, 2),
        ):
            if not isinstance(position, Variable):
                score += weight
            elif position in bound_vars:
                score += weight - 1
        return score

    def _match_pattern(
        self, pattern: TriplePattern, solution: Solution
    ) -> Iterator[Solution]:
        s, p, o = _substitute(pattern, solution)

        from .paths import evaluate_path, is_path

        if is_path(pattern.predicate):
            for subject, obj in evaluate_path(self.graph, pattern.predicate, s, o):
                out = dict(solution)
                compatible = True
                for variable, value in (
                    (pattern.subject, subject),
                    (pattern.object, obj),
                ):
                    if isinstance(variable, Variable):
                        existing = out.get(variable)
                        if existing is None:
                            out[variable] = value
                        elif existing != value:
                            compatible = False
                            break
                if compatible:
                    yield out
            return

        for triple in self.graph.triples(s, p, o):
            out = dict(solution)
            compatible = True
            for variable, value in (
                (pattern.subject, triple.subject),
                (pattern.predicate, triple.predicate),
                (pattern.object, triple.object),
            ):
                if isinstance(variable, Variable):
                    existing = out.get(variable)
                    if existing is None:
                        out[variable] = value
                    elif existing != value:
                        compatible = False
                        break
            if compatible:
                yield out

    def _evaluate_optional(
        self, element: OptionalPattern, solutions: List[Solution]
    ) -> List[Solution]:
        out: List[Solution] = []
        for solution in solutions:
            extended = list(self._evaluate_group(element.group, [solution]))
            if extended:
                out.extend(extended)
            else:
                out.append(solution)
        return out

    def _evaluate_values(
        self, element: ValuesPattern, solutions: List[Solution]
    ) -> List[Solution]:
        out: List[Solution] = []
        for solution in solutions:
            for row in element.rows:
                candidate = dict(solution)
                compatible = True
                for variable, value in zip(element.variables, row):
                    if value is None:
                        continue  # UNDEF leaves the variable unconstrained
                    existing = candidate.get(variable)
                    if existing is None:
                        candidate[variable] = value
                    elif existing != value:
                        compatible = False
                        break
                if compatible:
                    out.append(candidate)
        return out

    def _filter_passes(self, expression: Expression, solution: Solution) -> bool:
        try:
            value = evaluate_expression(expression, solution, self._evaluate_exists)
            return effective_boolean_value(value)
        except ExpressionError:
            return False

    def _evaluate_exists(self, expression: ExistsExpression, solution: Solution) -> bool:
        for _ in self._evaluate_group(expression.group, [dict(solution)]):
            return True
        return False

    def _any_solution(self, group: GroupPattern) -> bool:
        for _ in self._evaluate_group(group, [{}]):
            return True
        return False

    # -- SELECT pipeline -----------------------------------------------------

    def _run_select(self, query: SelectQuery) -> SelectResult:
        solutions = list(self._evaluate_group(query.where, [{}]))

        if query.has_aggregates():
            rows, variables = self._aggregate(query, solutions)
            scopes: List[Solution] = [
                {Variable(name): term for name, term in row.items() if term is not None}
                for row in rows
            ]
        else:
            rows, variables = self._project(query, solutions)
            # ORDER BY may reference WHERE variables that were not projected
            # (ordering happens before projection in the spec), and also the
            # projection aliases -- merge both into the sort scope.
            scopes = []
            for row, solution in zip(rows, solutions):
                scope = dict(solution)
                for name, term in row.items():
                    if term is not None:
                        scope[Variable(name)] = term
                scopes.append(scope)

        if query.order_by:
            rows = self._order(query, rows, scopes)
        if query.distinct:
            rows = self._distinct(rows, variables)
        if query.offset:
            rows = rows[query.offset:]
        if query.limit is not None:
            rows = rows[: query.limit]
        return SelectResult(variables, rows)

    def _project(
        self, query: SelectQuery, solutions: List[Solution]
    ) -> Tuple[List[Row], List[str]]:
        if query.select_all:
            names: List[str] = []
            seen = set()
            for solution in solutions:
                for variable in solution:
                    if variable.name not in seen:
                        seen.add(variable.name)
                        names.append(variable.name)
            names.sort()
            rows = [
                {name: solution.get(Variable(name)) for name in names}
                for solution in solutions
            ]
            return rows, names

        names = []
        for projection in query.projections:
            variable = projection.variable
            if variable is None:
                raise SparqlEvaluationError("projection without output variable")
            names.append(variable.name)

        rows = []
        for solution in solutions:
            row: Row = {}
            for projection, name in zip(query.projections, names):
                if isinstance(projection.expression, VariableExpression) and (
                    projection.alias is None
                ):
                    row[name] = solution.get(projection.expression.variable)
                else:
                    try:
                        row[name] = evaluate_expression(
                            projection.expression, solution, self._evaluate_exists
                        )
                    except ExpressionError:
                        row[name] = None
            rows.append(row)
        return rows, names

    # -- aggregation -----------------------------------------------------------

    def _aggregate(
        self, query: SelectQuery, solutions: List[Solution]
    ) -> Tuple[List[Row], List[str]]:
        groups: Dict[Tuple, List[Solution]] = {}
        if query.group_by:
            for solution in solutions:
                key = []
                for expression in query.group_by:
                    try:
                        key.append(
                            evaluate_expression(expression, solution, self._evaluate_exists)
                        )
                    except ExpressionError:
                        key.append(None)
                groups.setdefault(tuple(key), []).append(solution)
        else:
            # Implicit single group; aggregates over an empty pattern still
            # produce one row (COUNT(*) = 0) per the spec.
            groups[()] = solutions

        names: List[str] = []
        for projection in query.projections:
            variable = projection.variable
            if variable is None:
                raise SparqlEvaluationError(
                    "aggregate projections need an AS alias or bare variable"
                )
            names.append(variable.name)

        rows: List[Row] = []
        for key, members in groups.items():
            representative = members[0] if members else {}
            key_bindings: Solution = {}
            for expression, value in zip(query.group_by, key):
                if isinstance(expression, VariableExpression) and value is not None:
                    key_bindings[expression.variable] = value

            if query.having is not None:
                if not self._having_passes(query.having, members, key_bindings):
                    continue

            row: Row = {}
            for projection, name in zip(query.projections, names):
                row[name] = self._evaluate_projection_in_group(
                    projection.expression, members, representative, key_bindings
                )
            rows.append(row)
        return rows, names

    def _having_passes(
        self, expression: Expression, members: List[Solution], key_bindings: Solution
    ) -> bool:
        try:
            value = self._evaluate_projection_in_group(
                expression, members, members[0] if members else {}, key_bindings
            )
            return value is not None and effective_boolean_value(value)
        except ExpressionError:
            return False

    def _evaluate_projection_in_group(
        self,
        expression: Expression,
        members: List[Solution],
        representative: Solution,
        key_bindings: Solution,
    ) -> Optional[Term]:
        if isinstance(expression, Aggregate):
            return self._fold_aggregate(expression, members)
        if contains_aggregate(expression):
            # Rebuild the expression with aggregates replaced by their folds.
            substituted = self._substitute_aggregates(expression, members)
            try:
                return evaluate_expression(substituted, key_bindings, self._evaluate_exists)
            except ExpressionError:
                return None
        scope = dict(representative)
        scope.update(key_bindings)
        try:
            return evaluate_expression(expression, scope, self._evaluate_exists)
        except ExpressionError:
            return None

    def _substitute_aggregates(self, expression: Expression, members: List[Solution]):
        import copy

        from .nodes import TermExpression  # local to avoid confusion at top level

        if isinstance(expression, Aggregate):
            value = self._fold_aggregate(expression, members)
            if value is None:
                raise ExpressionError("aggregate over empty group")
            return TermExpression(value)
        clone = copy.copy(expression)  # never mutate the parsed AST
        for slot in expression.__slots__:
            value = getattr(expression, slot)
            if isinstance(value, Expression):
                setattr(clone, slot, self._substitute_aggregates(value, members))
            elif isinstance(value, list):
                setattr(
                    clone,
                    slot,
                    [
                        self._substitute_aggregates(v, members)
                        if isinstance(v, Expression)
                        else v
                        for v in value
                    ],
                )
        return clone

    def _fold_aggregate(self, aggregate: Aggregate, members: List[Solution]) -> Optional[Term]:
        values: List[Term] = []
        if aggregate.expression is None:  # COUNT(*)
            if aggregate.distinct:
                unique = {tuple(sorted((v.name, t) for v, t in m.items())) for m in members}
                return Literal(len(unique))
            return Literal(len(members))

        for member in members:
            try:
                values.append(
                    evaluate_expression(aggregate.expression, member, self._evaluate_exists)
                )
            except ExpressionError:
                continue

        if aggregate.distinct:
            seen = []
            for value in values:
                if value not in seen:
                    seen.append(value)
            values = seen

        function = aggregate.function
        if function == "COUNT":
            return Literal(len(values))
        if function == "SAMPLE":
            return values[0] if values else None
        if function == "GROUP_CONCAT":
            parts = []
            for value in values:
                if isinstance(value, Literal):
                    parts.append(value.lexical)
                elif isinstance(value, IRI):
                    parts.append(value.value)
                else:
                    parts.append(str(value))
            return Literal(aggregate.separator.join(parts))
        if function in ("MIN", "MAX"):
            if not values:
                return None
            ordered = sorted(values, key=lambda t: t.sort_key())
            return ordered[0] if function == "MIN" else ordered[-1]

        numbers: List[float] = []
        for value in values:
            if isinstance(value, Literal):
                number = value.numeric_value()
                if number is None:
                    try:
                        number = float(value.lexical)
                    except ValueError:
                        continue
                numbers.append(number)
        if function == "SUM":
            total = sum(numbers)
            return Literal(int(total)) if total == int(total) else Literal(float(total))
        if function == "AVG":
            if not numbers:
                return None
            mean = sum(numbers) / len(numbers)
            return Literal(int(mean)) if mean == int(mean) else Literal(float(mean))
        raise SparqlEvaluationError(f"unhandled aggregate {function}")

    # -- ordering / distinct -----------------------------------------------------

    def _order(
        self, query: SelectQuery, rows: List[Row], scopes: List[Solution]
    ) -> List[Row]:
        def sort_key(scope: Solution):
            keys = []
            for condition in query.order_by:
                try:
                    value = evaluate_expression(
                        condition.expression, scope, self._evaluate_exists
                    )
                    key = (1, value.sort_key())
                except ExpressionError:
                    key = (0, ())  # unbound sorts lowest
                keys.append(key)
            return keys

        # Stable multi-key sort: sort by the last condition first; Python's
        # sort keeps equal elements in place even with reverse=True.
        decorated = [(sort_key(scope), row) for scope, row in zip(scopes, rows)]
        for position in range(len(query.order_by) - 1, -1, -1):
            reverse = query.order_by[position].descending
            decorated.sort(key=lambda item: item[0][position], reverse=reverse)
        return [row for _, row in decorated]

    @staticmethod
    def _distinct(rows: List[Row], variables: List[str]) -> List[Row]:
        seen = set()
        out: List[Row] = []
        for row in rows:
            key = tuple(row.get(name) for name in variables)
            if key not in seen:
                seen.add(key)
                out.append(row)
        return out


def evaluate(graph: Graph, query: Union[str, Query]) -> Union[SelectResult, AskResult]:
    """Evaluate *query* (text or AST) against *graph*."""
    return QueryEngine(graph).run(query)
