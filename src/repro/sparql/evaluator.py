"""Query evaluation over a :class:`~repro.rdf.graph.Graph`.

The evaluator walks the AST directly (no separate algebra IR -- the subset
is small enough that the classic textbook pipeline would only add plumbing):

1. group graph patterns produce streams of solutions (dicts Variable->Term),
2. BGPs run through a dictionary-encoded join pipeline: every pattern is
   compiled to integer IDs, patterns are ordered greedily by estimated
   cardinality (exact index counts over the ID indexes), and each join step
   picks between a hash join on the shared variables (scan once, build a
   table, probe every intermediate row) and an index nested-loop join
   (per-row index lookups) based on which side is smaller.  Intermediate
   solutions are flat ID tuples; terms are decoded only when the BGP hands
   its solutions back to the group pipeline,
3. OPTIONAL is a left join, UNION a concatenation, FILTER a predicate with
   SPARQL error semantics, VALUES an inline join,
4. aggregation groups solutions and folds aggregates,
5. solution modifiers (ORDER/DISTINCT/OFFSET/LIMIT) apply last, in the order
   the SPARQL spec defines.

Four BGP pipelines coexist behind ``QueryEngine(graph, strategy=...)``:

* ``"hash"`` (default) -- the eager dictionary-encoded hash-join pipeline
  above, plus an ID-space SELECT fast path.  LIMIT-bounded general queries
  delegate to the streaming operators so pagination stops early, and
  ``ORDER BY ... LIMIT k`` delegates to the bounded top-k operator.
* ``"stream"`` -- a volcano-style pipeline: every operator (pattern scan,
  hash/index join, FILTER, OPTIONAL, UNION, VALUES, projection, DISTINCT,
  OFFSET/LIMIT) is a generator over ID-tuple rows, so ``LIMIT k`` pulls
  exactly as much of the join as k rows require.  The two former pipeline
  breakers stream too: ``ORDER BY ... LIMIT k`` runs through a bounded
  ``heapq`` top-k (at most ``offset + k`` rows kept, stable tie-break on
  input order so the result equals sort-then-slice; DISTINCT rides along
  through a per-key champion table, so the result equals sort, stable
  dedup, slice), and column-shaped GROUP BY/aggregation folds
  incrementally into per-group :class:`_AggFold` accumulators (O(groups)
  state; COUNT DISTINCT via per-group seen-sets of encoded values).
* ``"batch"`` -- vectorized columnar execution: the hash engine plus a
  batch fast path for the simple shape (plain BGP + term-test filters).
  Operators pass batches of ID *columns* (``batch_size`` rows at a time,
  volcano control flow between batches) instead of per-row tuples:
  batched index scans off the sorted shard runs, a vectorized
  hash-probe (build once, probe a column at a time), columnar FILTER
  via selection vectors, batched projection/DISTINCT, batched top-k
  and per-batch aggregate folds (:meth:`_AggFold.fold_batch`).  Shapes
  the batch path cannot take fall through to the hash delegation
  ladder, exactly like hash delegates to the streaming operators.
* ``"scan"`` -- the legacy substitute-and-scan nested-loop join kept as
  the conformance oracle; the suite runs every query through all four
  pipelines and asserts identical solutions.

Compiled plans (encoded patterns + cardinality estimates) live in a
:class:`_SharedPlanCache` attached to the *graph* (one per graph, shared
by every engine over it, however short-lived), keyed by AST node identity
and validated against the graph's mutation ``generation``; together with
the parser's AST LRU this means a repeated query string skips tokenizing,
parsing, pattern encoding and estimation entirely -- on any engine.
"""

from __future__ import annotations

import heapq
from collections import Counter, OrderedDict
from itertools import chain as _chain
from itertools import islice as _islice
from itertools import repeat as _repeat
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..obs.trace import NULL_TRACER
from ..rdf.graph import Graph
from ..rdf.terms import BNode, IRI, Literal, Term, Variable
from .errors import SparqlEvaluationError
from .functions import (
    ExpressionError,
    Solution,
    compare_terms,
    effective_boolean_value,
    evaluate_expression,
)
from .nodes import (
    Aggregate,
    AskQuery,
    CompareExpression,
    ExistsExpression,
    Expression,
    FilterPattern,
    FunctionCall,
    GroupPattern,
    OptionalPattern,
    Projection,
    Query,
    SelectQuery,
    TermExpression,
    TriplePattern,
    UnionPattern,
    ValuesPattern,
    VariableExpression,
    contains_aggregate,
)
from .parser import parse_query
from .results import AskResult, Row, SelectResult

__all__ = ["evaluate", "QueryEngine"]


def _substitute(pattern: TriplePattern, solution: Solution) -> Tuple:
    """Resolve pattern positions against *solution*; variables stay None."""

    def resolve(term):
        if isinstance(term, Variable):
            return solution.get(term)
        if isinstance(term, BNode):
            # Blank nodes in query patterns act as non-selectable variables.
            return None
        return term

    return resolve(pattern.subject), resolve(pattern.predicate), resolve(pattern.object)


#: Placeholder for a column a solution row does not bind (heterogeneous
#: solution streams after OPTIONAL / UNION).  Distinct from None, which is a
#: legal wildcard elsewhere.
_UNBOUND = object()

#: Term-kind tests the fast SELECT path can run without the expression
#: interpreter.  Keys are upper-cased builtin names; each maps a ground term
#: to the boolean the builtin (plus EBV) would produce.
_TERM_TESTS = {
    "ISLITERAL": lambda term: isinstance(term, Literal),
    "ISIRI": lambda term: isinstance(term, IRI),
    "ISURI": lambda term: isinstance(term, IRI),
    "ISBLANK": lambda term: isinstance(term, BNode),
    "BOUND": lambda term: True,
}


def _triples_to_scan_rows(triples, positions):
    """ID triples -> scan rows, one value per pattern variable.

    ``positions`` holds each variable's triple positions; variables that
    occur at several positions must match the same ID or the triple is
    dropped.  Shared by the full-scan and per-row lookup paths so repeated
    -variable semantics cannot diverge between them.
    """
    for triple in triples:
        srow = []
        for var_positions in positions:
            value = triple[var_positions[0]]
            if len(var_positions) > 1 and any(
                triple[extra] != value for extra in var_positions[1:]
            ):
                srow = None
                break
            srow.append(value)
        if srow is not None:
            yield tuple(srow)


def _project_triple_columns(tcols, positions, simple):
    """(s, p, o) ID columns -> per-variable columns, or None when empty.

    The columnar counterpart of :func:`_triples_to_scan_rows`: ``simple``
    (no variable occurs at two positions) just selects columns; repeated
    variables keep only the rows where all their positions agree.
    """
    if simple:
        return [tcols[position[0]] for position in positions]
    n = len(tcols[0])
    selection = range(n)
    for position in positions:
        if len(position) > 1:
            first = position[0]
            selection = [
                i
                for i in selection
                if all(tcols[extra][i] == tcols[first][i] for extra in position[1:])
            ]
    if not selection:
        return None
    if len(selection) == n:
        return [tcols[position[0]] for position in positions]
    return [[tcols[position[0]][i] for i in selection] for position in positions]


#: Extractors for the INLJ fast path: new-variable positions (ascending) ->
#: a function picking those positions out of a matched (s, p, o) ID triple.
_ROW_EXTRACTORS = {
    (): lambda s, p, o: (),
    (0,): lambda s, p, o: (s,),
    (1,): lambda s, p, o: (p,),
    (2,): lambda s, p, o: (o,),
    (0, 1): lambda s, p, o: (s, p),
    (0, 2): lambda s, p, o: (s, o),
    (1, 2): lambda s, p, o: (p, o),
    (0, 1, 2): lambda s, p, o: (s, p, o),
}


def _simple_filter(expression: Expression):
    """``(test, variable)`` for one-variable term-test filters, else None."""
    if (
        isinstance(expression, FunctionCall)
        and len(expression.args) == 1
        and isinstance(expression.args[0], VariableExpression)
    ):
        test = _TERM_TESTS.get(expression.name)
        if test is not None:
            return test, expression.args[0].variable
    return None


def _concat_part(value: Term) -> str:
    """One GROUP_CONCAT fragment, per the fold the spec describes."""
    if isinstance(value, Literal):
        return value.lexical
    if isinstance(value, IRI):
        return value.value
    return str(value)


class _AggFold:
    """Incremental fold of ONE aggregate inside ONE group.

    This is the single aggregation implementation behind every pipeline:
    the eager ID-space fast path, the streaming GROUP BY operator and the
    general ``_aggregate`` fold all feed values into instances of this
    class, so COUNT/SUM/MIN/MAX/AVG/SAMPLE/GROUP_CONCAT (and their
    DISTINCT variants) cannot diverge between strategies.

    Values arrive one at a time in solution order, either as dictionary
    IDs (with a ``decode`` callable; the fast path) or as ground terms
    (the term-level pipelines).  DISTINCT deduplicates on the *encoded*
    value -- IDs biject terms, so an ID seen-set equals a term seen-set
    without decoding, which is what keeps COUNT(DISTINCT ?v) from ever
    materializing member lists.  State is O(1) per group for the plain
    folds, O(distinct values) for DISTINCT and O(output) for
    GROUP_CONCAT.
    """

    __slots__ = (
        "function",
        "distinct",
        "separator",
        "seen",
        "count",
        "total",
        "numbers",
        "best",
        "best_key",
        "sample",
        "parts",
    )

    def __init__(self, aggregate: Aggregate, distinct: Optional[bool] = None):
        self.function = aggregate.function
        self.distinct = aggregate.distinct if distinct is None else distinct
        self.separator = aggregate.separator
        self.seen = set() if self.distinct else None
        self.count = 0  # COUNT result / COUNT(*) rows
        self.total = 0  # SUM/AVG running total (left fold, like sum())
        self.numbers = 0  # how many values were numeric (AVG divisor)
        self.best: Optional[Term] = None  # MIN/MAX champion
        self.best_key: Tuple = ()
        self.sample: Optional[Term] = None
        self.parts: Optional[List[str]] = (
            [] if aggregate.function == "GROUP_CONCAT" else None
        )

    def add_star(self, row_key=None) -> None:
        """Fold one group member into COUNT(*); *row_key* is the row's
        dedup identity, only consulted for COUNT(DISTINCT *)."""
        if self.seen is not None:
            if row_key in self.seen:
                return
            self.seen.add(row_key)
        self.count += 1

    def add_star_batch(self, n: int, rows=None) -> None:
        """Fold *n* group members into COUNT(*) at once.

        The vectorized counterpart of :meth:`add_star`: the plain fold
        is a single integer add.  ``rows`` supplies the member rows'
        dedup identities and is only consumed for COUNT(DISTINCT *).
        """
        if self.seen is None:
            self.count += n
            return
        seen = self.seen
        before = len(seen)
        seen.update(rows)
        self.count += len(seen) - before

    def fold_batch(self, values, decode=None) -> None:
        """Fold a column of bound values in one call.

        COUNT (plain and DISTINCT) vectorizes outright -- a length add,
        or a set-union delta, with no per-value Python dispatch.  The
        order-sensitive folds (MIN/MAX last-wins-among-equals, first
        SAMPLE, GROUP_CONCAT order, SUM's left fold) loop :meth:`add`
        over the column so batch results stay bit-identical to the
        row-at-a-time fold at any batch size.
        """
        if self.function == "COUNT":
            if self.seen is None:
                self.count += len(values)
                return
            seen = self.seen
            before = len(seen)
            seen.update(values)
            self.count += len(seen) - before
            return
        add = self.add
        for value in values:
            add(value, decode)

    def add(self, value, decode=None) -> None:
        """Fold one bound value (an ID when *decode* is given, else a term)."""
        if self.seen is not None:
            if value in self.seen:
                return
            self.seen.add(value)
        function = self.function
        if function == "COUNT":
            self.count += 1
            return
        term = decode(value) if decode is not None and type(value) is int else value
        if function in ("SUM", "AVG"):
            if isinstance(term, Literal):
                number = term.numeric_value()
                if number is None:
                    try:
                        number = float(term.lexical)
                    except ValueError:
                        return
                self.total = self.total + number
                self.numbers += 1
            return
        if function in ("MIN", "MAX"):
            key = term.sort_key()
            if self.best is None:
                self.best, self.best_key = term, key
            elif function == "MIN":
                if key < self.best_key:
                    self.best, self.best_key = term, key
            elif key >= self.best_key:
                # >= : among equal keys the *last* wins, matching the
                # stable sort-then-take-last the materialized fold used.
                self.best, self.best_key = term, key
            return
        if function == "SAMPLE":
            if self.sample is None:
                self.sample = term
            return
        self.parts.append(_concat_part(term))

    def result(self) -> Optional[Term]:
        function = self.function
        if function == "COUNT":
            return Literal(self.count)
        if function == "SUM":
            total = self.total
            return Literal(int(total)) if total == int(total) else Literal(float(total))
        if function == "AVG":
            if not self.numbers:
                return None
            mean = self.total / self.numbers
            return Literal(int(mean)) if mean == int(mean) else Literal(float(mean))
        if function in ("MIN", "MAX"):
            return self.best
        if function == "SAMPLE":
            return self.sample
        if function == "GROUP_CONCAT":
            return Literal(self.separator.join(self.parts))
        raise SparqlEvaluationError(f"unhandled aggregate {function}")


class _TopKEntry:
    """One kept row of the bounded ORDER BY heap.

    ``__lt__`` means "sorts *later* in the final output than *other*", so
    under :mod:`heapq`'s min-heap discipline the root is always the worst
    row currently kept -- exactly the eviction candidate a bounded top-k
    needs.  ``keys`` holds one sort key per ORDER BY condition (built by
    the same key function the materialized sort uses), ``flags`` the
    per-condition descending markers, and ``seq`` the input sequence
    number: carrying it makes the order total, which is what pins the
    heap's output to sort-then-slice of the same input stream (stable
    tie-break on input order).
    """

    __slots__ = ("keys", "flags", "seq", "payload")

    def __init__(self, keys: Tuple, flags: Tuple[bool, ...], seq: int, payload):
        self.keys = keys
        self.flags = flags
        self.seq = seq
        self.payload = payload

    def __lt__(self, other: "_TopKEntry") -> bool:
        for mine, theirs, descending in zip(self.keys, other.keys, self.flags):
            if mine != theirs:
                return (mine > theirs) != descending
        return self.seq > other.seq


def _champion_fold(entries: Iterator[_TopKEntry], key_of) -> Dict:
    """DISTINCT's per-key champion table, shared by every top-k variant.

    For each distinct dedup key (*key_of* over the entry payload) keep
    only the entry that sorts *earliest* in the final output order --
    under :class:`_TopKEntry`'s inverted ``__lt__`` ("sorts later"),
    that means replacing the champion exactly when ``champion < entry``.
    Feeding the champions to :func:`_topk_fold` then equals sort ->
    stable dedup -> slice, the modifier order the spec defines.  State
    is O(distinct keys), the cost DISTINCT itself implies.
    """
    champions: Dict = {}
    for entry in entries:
        key = key_of(entry.payload)
        champion = champions.get(key)
        if champion is None or champion < entry:
            champions[key] = entry
    return champions


def _topk_fold(entries: Iterator[_TopKEntry], keep: int) -> List[_TopKEntry]:
    """The k first-in-sort-order entries of a stream, in output order.

    Holds at most *keep* entries at any point.  Equivalent to sorting the
    whole stream and slicing ``[:keep]`` because the entry order is total
    (``seq`` breaks every tie).
    """
    if keep <= 0:
        for _ in entries:
            pass  # callers may collect headers/stats while streaming
        return []
    heap: List[_TopKEntry] = []
    push, replace = heapq.heappush, heapq.heapreplace
    for entry in entries:
        if len(heap) < keep:
            push(heap, entry)
        elif heap[0] < entry:
            # the root sorts later than the candidate -> candidate is
            # among the best `keep` seen so far; evict the root.
            replace(heap, entry)
    return sorted(heap, reverse=True)


class _EncodedPattern:
    """One triple pattern compiled to dictionary-ID space.

    ``spec`` holds one entry per position (subject, predicate, object):

    * ``int``          -- a ground term's dictionary ID,
    * :class:`Variable`-- a query variable,
    * ``None``         -- a wildcard (blank node in the pattern, or the
      predicate slot of a property-path pattern),
    * :class:`Term`    -- a ground term that is *not* interned; impossible
      for plain patterns, but a path endpoint can still satisfy zero-length
      closure semantics, so path patterns keep the raw term for the
      term-level fallback.
    """

    __slots__ = ("index", "path", "spec", "variables", "var_positions", "impossible", "est")

    def __init__(self, index: int, pattern: TriplePattern, graph: Graph):
        from .paths import is_path

        self.index = index
        self.path = pattern.predicate if is_path(pattern.predicate) else None
        self.impossible = False
        self.variables: List[Variable] = []
        self.var_positions: Dict[Variable, List[int]] = {}
        spec: List = []
        positions = (pattern.subject, pattern.predicate, pattern.object)
        for position, term in enumerate(positions):
            if position == 1 and self.path is not None:
                spec.append(None)
                continue
            if isinstance(term, Variable):
                spec.append(term)
                if term not in self.var_positions:
                    self.var_positions[term] = []
                    self.variables.append(term)
                self.var_positions[term].append(position)
            elif isinstance(term, BNode):
                spec.append(None)
            else:
                term_id = graph.lookup_id(term)
                if term_id is None:
                    if self.path is None:
                        self.impossible = True
                    spec.append(term)
                else:
                    spec.append(term_id)
        self.spec = tuple(spec)
        self.est = self._estimate(graph)

    def _estimate(self, graph: Graph) -> float:
        """Scan cardinality with only the ground positions bound."""
        if self.path is not None:
            s_bound = not isinstance(self.spec[0], Variable) and self.spec[0] is not None
            o_bound = not isinstance(self.spec[2], Variable) and self.spec[2] is not None
            if s_bound and o_bound:
                return 1.0
            if s_bound or o_bound:
                return 64.0
            return 4.0 * len(graph) + 64.0
        if self.impossible:
            return 0.0
        s, p, o = (v if type(v) is int else None for v in self.spec)
        return float(graph.count_ids(s, p, o))


class _SharedPlanCache:
    """The compiled-plan cache shared by every engine of one graph.

    Lives on the graph (``Graph.derived_cache("sparql/plans", ...)``), so
    transient engines -- :func:`evaluate` one-shots, fresh endpoints
    wrapping an existing graph, exploration helpers -- reuse the plans a
    long-lived engine already paid for.  A repeated query *text* lands on
    the same entry regardless of which engine runs it: the parser AST LRU
    maps the text to one AST object and the cache keys on the identity of
    that AST's pattern nodes.  Pattern encoding is strategy-independent
    (every pipeline consumes the same :class:`_EncodedPattern`), so the
    ``hash``/``stream``/``scan`` engines of one graph share entries too.

    Keys are object identities, safe because the value holds a strong
    reference to the very pattern objects the ids name -- a live id can
    never be reused by a different object.  Entries embed the graph
    ``generation`` they were compiled against; any mutation bumps the
    generation and the next lookup drops every plan at once.
    """

    #: entries kept per graph
    PLAN_CACHE_SIZE = 256

    __slots__ = ("_plans", "_generation", "hits", "misses")

    def __init__(self):
        self._plans: "OrderedDict[Tuple[int, ...], Tuple[Tuple[TriplePattern, ...], List[_EncodedPattern]]]" = OrderedDict()
        self._generation: Optional[int] = None
        self.hits = 0
        self.misses = 0

    def info(self) -> Dict[str, int]:
        """Hit/miss/size counters of the compiled-plan cache."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._plans),
            "generation": self._generation if self._generation is not None else -1,
        }

    def compile(
        self, graph: Graph, patterns: Sequence[TriplePattern]
    ) -> List[_EncodedPattern]:
        """Encode *patterns* to ID space, memoized until the graph mutates.

        Pattern encoding walks the dictionary for every ground term and
        estimates scan cardinality from the indexes; both depend only on
        (pattern, graph content), so the result is reusable until
        ``graph.generation`` changes -- the cheap invalidation rule that
        makes it safe to hold plans across the fleet's repeated templated
        queries.
        """
        generation = graph.generation
        if generation != self._generation:
            self._plans.clear()
            self._generation = generation
        key = tuple(map(id, patterns))
        hit = self._plans.get(key)
        if hit is not None:
            self._plans.move_to_end(key)
            self.hits += 1
            return hit[1]
        self.misses += 1
        encoded = [
            _EncodedPattern(index, pattern, graph)
            for index, pattern in enumerate(patterns)
        ]
        self._plans[key] = (tuple(patterns), encoded)
        if len(self._plans) > self.PLAN_CACHE_SIZE:
            self._plans.popitem(last=False)
        return encoded


#: The documented ``exec_stats`` vocabulary.  Every engine/parallel-exec
#: write site uses exactly these snake_case keys (pinned by
#: ``tests/sparql/test_evaluator.py``); the serving metrics bridge and
#: ``SparqlEndpoint._estimate_latency`` read them through
#: :meth:`QueryEngine.exec_stats_snapshot`.
EXEC_STAT_KEYS = frozenset(
    {
        # bounded-operator counters (top-k heap, _AggFold, ID-space sort)
        "operator",         # which bounded operator ran last
        "input_rows",       # rows consumed by that operator
        "tracked_rows",     # max rows/groups it ever held (memory contract)
        "distinct_keys",    # champion-table size for DISTINCT top-k
        "having_pruned",    # groups dropped by HAVING pushdown
        "decoded_rows",     # ID rows decoded at the result boundary
        "batches",          # column batches the batch-pipeline sink consumed
        # shard fan-out counters (sparql/parallel_exec.py)
        "shard_batches",        # partition-parallel batches dispatched
        "shard_parallel_ms",    # simulated cost booked for the batches
        "shard_sequential_ms",  # what the same scans would cost serially
        "shard_rows",           # rows merged out of the sorted runs
        "shard_warm_batches",   # batches that reused the warm worker set
    }
)


class QueryEngine:
    """Evaluates parsed queries against one graph.

    Instances are cheap; hold one per graph or just use :func:`evaluate`.
    ``strategy`` selects the BGP pipeline: ``"hash"`` (default) is the
    eager dictionary-encoded hash-join pipeline, ``"stream"`` the lazy
    volcano-style generator pipeline with OFFSET/LIMIT pushdown,
    ``"batch"`` the vectorized columnar pipeline (hash plus the
    batch fast path, ``batch_size`` ID rows per column batch), and
    ``"scan"`` the legacy substitute-and-scan nested-loop join kept for
    conformance A/B runs.

    Planning is amortized across *all* engines of a graph: compiled
    patterns live in a :class:`_SharedPlanCache` attached to the graph,
    keyed on AST identity and invalidated when ``graph.generation``
    moves, so even transient engines start warm.
    """

    #: default rows per column batch on the ``"batch"`` strategy --
    #: large enough to amortize per-batch dispatch, small enough that a
    #: batch's columns stay cache-resident
    BATCH_SIZE = 1024

    def __init__(self, graph: Graph, strategy: str = "hash", batch_size: int = None):
        if strategy not in ("hash", "stream", "scan", "batch"):
            raise ValueError(f"unknown BGP strategy {strategy!r}")
        self.graph = graph
        self.strategy = strategy
        self.batch_size = int(batch_size) if batch_size else self.BATCH_SIZE
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        #: the partition-parallel scan target when the graph is a
        #: ShardedTripleStore (duck-typed: rdf must not import sparql)
        self._sharded = graph if getattr(graph, "is_sharded", False) else None
        self._plans: _SharedPlanCache = graph.derived_cache(
            "sparql/plans", _SharedPlanCache
        )
        #: the engine's ShardScanPool (created lazily in run(), keyed on
        #: the store's shard layout and threaded through every shard
        #: batch the engine dispatches) -- back-to-back queries on one
        #: engine reuse the warm workers; only the first batch after a
        #: layout change pays the cold spin-up
        self._scan_pool = None
        #: observability for the bounded operators: the last top-k /
        #: streaming-aggregation run records how many rows it consumed and
        #: how many it ever held (benchmarks assert the O(k) / O(groups)
        #: memory contract through this).  Keys come from the documented
        #: ``EXEC_STAT_KEYS`` vocabulary; read via ``exec_stats_snapshot``.
        self.exec_stats: Dict[str, int] = {}
        #: span recorder (``repro.obs``).  Defaults to the shared no-op
        #: tracer; hot paths guard on ``self.obs.enabled`` so the
        #: disabled cost is one attribute read.
        self.obs = NULL_TRACER

    # -- compiled-plan cache ---------------------------------------------------

    def plan_cache_info(self) -> Dict[str, int]:
        """Hit/miss/size counters of the graph's shared plan cache."""
        return self._plans.info()

    def _compile_patterns(
        self, patterns: Sequence[TriplePattern]
    ) -> List[_EncodedPattern]:
        return self._plans.compile(self.graph, patterns)

    # -- public API -----------------------------------------------------------

    def run(self, query: Union[str, Query]) -> Union[SelectResult, AskResult]:
        # Reset per query: paths that don't track counters must not leave
        # a previous query's stats behind for a caller to misread.
        self.exec_stats = {}
        if self._sharded is not None:
            # One warm worker set per engine, keyed on the shard layout:
            # every shard batch any query on this engine dispatches
            # shares it, so back-to-back queries skip the cold spin-up.
            # ``clear()`` / re-partitioning replace the shards tuple,
            # which retires the pool (identity key holds the tuple, so
            # a recycled id can never alias a dead layout).
            layout = self._sharded.shards
            pool = self._scan_pool
            if pool is None or pool.layout_key is not layout:
                from .parallel_exec import ShardScanPool

                self._scan_pool = ShardScanPool(self._sharded, layout_key=layout)
        if isinstance(query, str):
            query = parse_query(query)
        obs = self.obs
        if not obs.enabled:
            return self._dispatch(query)
        obs.begin("sparql.run", strategy=self.strategy)
        try:
            return self._dispatch(query)
        finally:
            # exec_stats is fully populated by now; the run span carries
            # the snapshot so a trace is self-contained.
            obs.end(exec_stats=dict(self.exec_stats))

    def _dispatch(self, query: Query) -> Union[SelectResult, AskResult]:
        if isinstance(query, SelectQuery):
            return self._run_select(query)
        if isinstance(query, AskQuery):
            return AskResult(self._any_solution(query.where))
        raise SparqlEvaluationError(f"cannot evaluate {type(query).__name__}")

    def exec_stats_snapshot(self) -> Dict[str, int]:
        """A copy of the last run's ``exec_stats``.

        The engine reuses/replaces the live dict between runs, so
        callers that read counters *after* the query returns (endpoint
        latency model, serving metrics bridge) must snapshot here
        rather than alias ``self.exec_stats``.
        """
        return dict(self.exec_stats)

    def explain(self, query: Union[str, Query]) -> "ExplainReport":
        """EXPLAIN ANALYZE: execute *query* under a private tracer and
        return the annotated operator span tree (rows in/out, tracked
        state, shard fan-out).  The engine's attached ``obs`` recorder
        is restored afterwards, so explaining never pollutes a serving
        trace."""
        from ..obs.explain import ExplainReport
        from ..obs.trace import Tracer

        text = query if isinstance(query, str) else "<parsed query>"
        # No clock (the engine charges no latency — rows matter, not
        # time); detail on (operator spans are the whole point here).
        tracer = Tracer(seed=0, detail=True)
        previous = self.obs
        self.obs = tracer
        try:
            result = self.run(query)
        finally:
            self.obs = previous
        rows = len(result.rows) if hasattr(result, "rows") else None
        return ExplainReport(
            query=text,
            strategy=self.strategy,
            rows=rows,
            exec_stats=self.exec_stats_snapshot(),
            tracer=tracer,
            trace_id=tracer.trace_ids()[0],
        )

    def _operator_event(self) -> None:
        """Record the bounded operator that just finished as a closed
        span (call sites guard on ``self.obs.detail`` — operator events
        are the EXPLAIN-tier of the trace vocabulary)."""
        stats = {
            key: value
            for key, value in self.exec_stats.items()
            if not key.startswith("shard_")
        }
        name = stats.pop("operator", "operator")
        self.obs.event(f"sparql.{name}", **stats)

    # -- pattern evaluation -----------------------------------------------------

    def _evaluate_group(
        self, group: GroupPattern, bindings: Iterable[Solution]
    ) -> Iterator[Solution]:
        """Evaluate a group pattern given an input solution stream."""
        if self.strategy == "stream":
            return self._evaluate_group_stream(group, iter(bindings))
        return self._evaluate_group_eager(group, bindings)

    def _evaluate_group_eager(
        self, group: GroupPattern, bindings: Iterable[Solution]
    ) -> Iterator[Solution]:
        """The materializing group pipeline (hash and scan strategies)."""
        solutions = list(bindings)
        filters: List[FilterPattern] = []
        pending_bgp: List[TriplePattern] = []

        def flush_bgp(current: List[Solution]) -> List[Solution]:
            if not pending_bgp:
                return current
            out = self._evaluate_bgp(list(pending_bgp), current)
            pending_bgp.clear()
            return out

        for element in group.elements:
            if isinstance(element, TriplePattern):
                pending_bgp.append(element)
            elif isinstance(element, FilterPattern):
                filters.append(element)
            elif isinstance(element, OptionalPattern):
                solutions = flush_bgp(solutions)
                solutions = self._evaluate_optional(element, solutions)
            elif isinstance(element, UnionPattern):
                solutions = flush_bgp(solutions)
                merged: List[Solution] = []
                for alternative in element.alternatives:
                    merged.extend(self._evaluate_group(alternative, solutions))
                solutions = merged
            elif isinstance(element, GroupPattern):
                solutions = flush_bgp(solutions)
                solutions = list(self._evaluate_group(element, solutions))
            elif isinstance(element, ValuesPattern):
                solutions = flush_bgp(solutions)
                solutions = self._evaluate_values(element, solutions)
            else:  # pragma: no cover - parser prevents this
                raise SparqlEvaluationError(f"unknown pattern element {element!r}")

        solutions = flush_bgp(solutions)

        for filter_pattern in filters:
            solutions = [
                s for s in solutions if self._filter_passes(filter_pattern.expression, s)
            ]
        return iter(solutions)

    def _evaluate_bgp(
        self, patterns: List[TriplePattern], solutions: List[Solution]
    ) -> List[Solution]:
        if self.strategy in ("hash", "batch"):
            return self._evaluate_bgp_hash(patterns, solutions)
        return self._evaluate_bgp_scan(patterns, solutions)

    # -- the dictionary-encoded hash-join pipeline -----------------------------

    def _evaluate_bgp_hash(
        self, patterns: List[TriplePattern], solutions: List[Solution]
    ) -> List[Solution]:
        """Greedy selectivity-ordered joins over ID-tuple solution rows."""
        if not patterns or not solutions:
            return solutions
        joined = self._bgp_id_rows(patterns, solutions)
        if joined is None:
            return []
        rows, col_of = joined
        if not rows:
            return []

        decode = self.graph.decode_id
        out: List[Solution] = []
        layout = list(col_of.items())
        for row in rows:
            solution = {}
            for variable, column in layout:
                value = row[column]
                if value is _UNBOUND:
                    continue
                solution[variable] = decode(value) if type(value) is int else value
            out.append(solution)
        return out

    def _bgp_id_rows(
        self, patterns: List[TriplePattern], solutions: List[Solution]
    ) -> Optional[Tuple[List[Tuple], Dict[Variable, int]]]:
        """The BGP join pipeline in ID space.

        Returns ``(rows, column_of)`` where each row is a tuple of
        dictionary IDs (or raw non-interned terms carried through from the
        input solutions), or ``None`` when a pattern can match nothing.
        """
        graph = self.graph
        encoded = self._compile_patterns(patterns)
        for compiled in encoded:
            if compiled.impossible:
                return None

        # Column layout: one slot per variable ever bound; rows are tuples.
        columns: List[Variable] = []
        col_of: Dict[Variable, int] = {}
        for solution in solutions:
            for variable in solution:
                if variable not in col_of:
                    col_of[variable] = len(columns)
                    columns.append(variable)
        lookup = graph.lookup_id
        width = len(columns)
        rows: List[Tuple] = []
        for solution in solutions:
            row = [_UNBOUND] * width
            for variable, term in solution.items():
                term_id = lookup(term)
                # Terms outside the dictionary stay as raw terms: they hash
                # fine and can never equal a scanned ID, which is exactly
                # the join semantics they need.
                row[col_of[variable]] = term_id if term_id is not None else term
            rows.append(tuple(row))

        remaining = list(encoded)
        while remaining and rows:
            chosen = min(
                remaining,
                key=lambda ep: (ep.est / (16.0 ** sum(1 for v in ep.variables if v in col_of)), ep.index),
            )
            remaining.remove(chosen)
            rows, columns, col_of = self._join_pattern(chosen, rows, columns, col_of)
        return rows, col_of

    def _join_pattern(
        self,
        ep: _EncodedPattern,
        rows: List[Tuple],
        columns: List[Variable],
        col_of: Dict[Variable, int],
    ) -> Tuple[List[Tuple], List[Variable], Dict[Variable, int]]:
        """Join one pattern into the current solution rows."""
        shared = [v for v in ep.variables if v in col_of]
        new_vars = [v for v in ep.variables if v not in col_of]
        new_columns = columns + new_vars
        new_col_of = dict(col_of)
        for variable in new_vars:
            new_col_of[variable] = len(col_of) + new_vars.index(variable)

        if not shared:
            # Cartesian extension; scan once.  new_vars == ep.variables here.
            scan = list(self._scan_pattern(ep))
            if not scan:
                return [], new_columns, new_col_of
            return [row + srow for row in rows for srow in scan], new_columns, new_col_of

        if ep.path is not None or ep.est > 4.0 * len(rows):
            out = self._index_join(ep, rows, col_of, new_col_of, len(new_vars))
            return out, new_columns, new_col_of

        # Hash join: scan once, key the scan rows on the shared variables,
        # probe with every intermediate row.
        table = self._build_probe_table(ep, shared, new_vars)
        out: List[Tuple] = []
        fallback: List[Tuple] = []
        get = table.get
        if len(shared) == 1:
            shared_col = col_of[shared[0]]
            for row in rows:
                key = row[shared_col]
                if key is _UNBOUND:
                    fallback.append(row)
                    continue
                bucket = get(key)
                if bucket:
                    for extra in bucket:
                        out.append(row + extra)
        else:
            shared_cols = [col_of[v] for v in shared]
            for row in rows:
                key = tuple(row[c] for c in shared_cols)
                if _UNBOUND in key:
                    fallback.append(row)  # heterogeneous row; handle per-row below
                    continue
                bucket = get(key)
                if bucket:
                    for extra in bucket:
                        out.append(row + extra)
        if fallback:
            out.extend(self._index_join(ep, fallback, col_of, new_col_of, len(new_vars)))
        return out, new_columns, new_col_of

    def _build_probe_table(
        self,
        ep: _EncodedPattern,
        shared: Sequence[Variable],
        new_vars: Sequence[Variable],
    ) -> Dict:
        """Scan *ep* once into ``{shared key: [new-variable tuples]}``.

        The build side of both hash joins (eager and streaming).  A single
        shared variable (the overwhelmingly common join shape) keys on the
        bare value instead of a 1-tuple.

        On a sharded graph a shard-spanning build (subject unbound) runs
        partition-parallel: per-shard tables merge rank-ordered into the
        same table this sequential fold would produce.
        """
        table = self._probe_table(ep, shared, new_vars)
        if self.obs.detail:
            self.obs.event(
                "sparql.probe_build",
                pattern=ep.index,
                estimate=ep.est,
                buckets=len(table),
                rows_out=sum(len(bucket) for bucket in table.values()),
            )
        return table

    def _probe_table(
        self,
        ep: _EncodedPattern,
        shared: Sequence[Variable],
        new_vars: Sequence[Variable],
    ) -> Dict:
        var_index = {v: i for i, v in enumerate(ep.variables)}
        key_positions = [var_index[v] for v in shared]
        new_positions = [var_index[v] for v in new_vars]
        if self._sharded is not None and ep.path is None:
            s, p, o = (v if type(v) is int else None for v in ep.spec)
            if s is None:
                from .parallel_exec import parallel_probe_table

                return parallel_probe_table(
                    self._sharded,
                    s,
                    p,
                    o,
                    [ep.var_positions[v] for v in ep.variables],
                    key_positions,
                    new_positions,
                    stats=self.exec_stats,
                    pool=self._scan_pool,
                    obs=self.obs,
                )
        table: Dict = {}
        setdefault = table.setdefault
        if len(key_positions) == 1:
            key_position = key_positions[0]
            if len(new_positions) == 1:
                new_position = new_positions[0]
                for srow in self._scan_pattern(ep):
                    setdefault(srow[key_position], []).append((srow[new_position],))
            else:
                for srow in self._scan_pattern(ep):
                    setdefault(srow[key_position], []).append(
                        tuple(srow[i] for i in new_positions)
                    )
        else:
            for srow in self._scan_pattern(ep):
                setdefault(tuple(srow[i] for i in key_positions), []).append(
                    tuple(srow[i] for i in new_positions)
                )
        return table

    def _scan_pattern(self, ep: _EncodedPattern) -> Iterator[Tuple]:
        """Scan *ep* with only its ground positions bound.

        Yields one ID tuple per match, ordered like ``ep.variables``.
        """
        if self.obs.detail:
            return self._traced_scan(ep)
        return self._scan_rows(ep)

    def _traced_scan(self, ep: _EncodedPattern) -> Iterator[Tuple]:
        """Counting wrapper around :meth:`_scan_rows`.

        Emits a closed ``sparql.scan`` span when the scan finishes —
        recorded as an *event* (never an open/close pair) because lazy
        volcano scans interleave and close out of order, which would
        corrupt a bracketed span stack.  An abandoned scan (LIMIT
        satisfied upstream) reports ``exhausted=False`` from its
        ``finally`` when the generator is closed.
        """
        rows = 0
        exhausted = False
        try:
            for row in self._scan_rows(ep):
                rows += 1
                yield row
            exhausted = True
        finally:
            self.obs.event(
                "sparql.scan",
                pattern=ep.index,
                estimate=ep.est,
                rows_out=rows,
                exhausted=exhausted,
            )

    def _scan_rows(self, ep: _EncodedPattern) -> Iterator[Tuple]:
        if ep.path is not None:
            yield from self._scan_path(ep, ep.spec[0], ep.spec[2])
            return
        spec = ep.spec
        s, p, o = (v if type(v) is int else None for v in spec)
        positions = [ep.var_positions[v] for v in ep.variables]
        if self._sharded is not None and s is None:
            # Subject unbound -> the scan spans shards: run it partition-
            # parallel and consume the canonical (shard-count-invariant)
            # merged stream.  Subject-bound scans route straight to the
            # owning shard -- the whole forward star lives there anyway.
            from .parallel_exec import parallel_scan_ids

            triples = parallel_scan_ids(
                self._sharded,
                s,
                p,
                o,
                stats=self.exec_stats,
                pool=self._scan_pool,
                obs=self.obs,
            )
            yield from _triples_to_scan_rows(triples, positions)
            return
        yield from _triples_to_scan_rows(self.graph.triples_ids(s, p, o), positions)

    def _scan_path(self, ep: _EncodedPattern, s_spec, o_spec) -> Iterator[Tuple]:
        """Path-pattern scan; spec entries as in :class:`_EncodedPattern`."""
        from .paths import evaluate_path, evaluate_path_ids

        graph = self.graph
        if isinstance(s_spec, Term) and not isinstance(s_spec, Variable) or (
            isinstance(o_spec, Term) and not isinstance(o_spec, Variable)
        ):
            # A non-interned ground endpoint: only zero-length closure
            # semantics can satisfy it -- delegate to the term level.
            s_term = self._path_endpoint_term(s_spec)
            o_term = self._path_endpoint_term(o_spec)
            pairs = self._encode_pairs(evaluate_path(graph, ep.path, s_term, o_term))
        else:
            s = s_spec if type(s_spec) is int else None
            o = o_spec if type(o_spec) is int else None
            pairs = evaluate_path_ids(graph, ep.path, s, o)
        yield from self._pairs_to_rows(ep, pairs)

    def _path_endpoint_term(self, spec) -> Optional[Term]:
        if type(spec) is int:
            return self.graph.decode_id(spec)
        if isinstance(spec, Term) and not isinstance(spec, Variable):
            return spec
        return None

    def _encode_pairs(self, pairs) -> Iterator[Tuple]:
        """Map term pairs back into hybrid ID space (raw terms survive)."""
        lookup = self.graph.lookup_id
        for s_term, o_term in pairs:
            s = lookup(s_term)
            o = lookup(o_term)
            yield (s if s is not None else s_term, o if o is not None else o_term)

    def _pairs_to_rows(self, ep: _EncodedPattern, pairs) -> Iterator[Tuple]:
        """Turn path (s, o) pairs into scan rows over ``ep.variables``."""
        s_spec, o_spec = ep.spec[0], ep.spec[2]
        s_var = s_spec if isinstance(s_spec, Variable) else None
        o_var = o_spec if isinstance(o_spec, Variable) else None
        # Compare by equality: the parser mints distinct-but-equal Variable
        # objects for the two positions of ``?x path ?x``.
        if s_var is not None and s_var == o_var:
            for s, o in pairs:
                if s == o:
                    yield (s,)
            return
        if s_var is not None and o_var is not None:
            yield from pairs
            return
        if s_var is not None:
            for s, _ in pairs:
                yield (s,)
            return
        if o_var is not None:
            for _, o in pairs:
                yield (o,)
            return
        for _ in pairs:
            yield ()
            return  # ground-ground path: one witness is enough

    def _index_join(
        self,
        ep: _EncodedPattern,
        rows: List[Tuple],
        col_of: Dict[Variable, int],
        new_col_of: Dict[Variable, int],
        extra_width: int,
    ) -> List[Tuple]:
        """Per-row index lookups (the INLJ side of the pipeline)."""
        if ep.path is None and all(
            len(positions) == 1 for positions in ep.var_positions.values()
        ):
            bound_columns = [col_of[v] for v in ep.variables if v in col_of]
            homogeneous = not any(
                row[column] is _UNBOUND for column in bound_columns for row in rows
            )
            if homogeneous:
                return self._index_join_plain(ep, rows, col_of)
        return self._index_join_general(ep, rows, col_of, new_col_of, extra_width)

    def _index_join_plain(
        self, ep: _EncodedPattern, rows: List[Tuple], col_of: Dict[Variable, int]
    ) -> List[Tuple]:
        """INLJ fast path: no repeated variables, every row binds the shared
        columns.  Bound positions are per-row constants, so matches append
        straight onto the row -- no merge bookkeeping -- and the index dicts
        are walked directly.

        On a sharded graph the probes route: a subject-bound row walks the
        owning shard's local indexes (same O(1) dict hops, no fan-out), and
        an unbound-subject row consumes the store's canonical sorted-merge
        stream, so probe results stay shard-count-invariant.
        """
        graph = self.graph
        store = self._sharded
        if store is None:
            spo, pos, osp = graph.spo_ids(), graph.pos_ids(), graph.osp_ids()
        else:
            spo = pos = osp = None  # routed per row below

        resolved = []
        for spec in ep.spec:
            if isinstance(spec, Variable):
                column = col_of.get(spec)
                resolved.append(("col", column) if column is not None else ("free", None))
            elif type(spec) is int:
                resolved.append(("const", spec))
            else:  # wildcard (blank node); raw terms are impossible here
                resolved.append(("free", None))
        (s_kind, s_val), (p_kind, p_val), (o_kind, o_val) = resolved
        # New variables appear in ascending position order (no repeats), so
        # the extractor table below covers every combination.
        extra_positions = tuple(
            ep.var_positions[v][0] for v in ep.variables if v not in col_of
        )
        make = _ROW_EXTRACTORS[extra_positions]

        out: List[Tuple] = []
        append = out.append
        for row in rows:
            s = s_val if s_kind == "const" else (row[s_val] if s_kind == "col" else None)
            p = p_val if p_kind == "const" else (row[p_val] if p_kind == "col" else None)
            o = o_val if o_kind == "const" else (row[o_val] if o_kind == "col" else None)
            if (
                (s is not None and type(s) is not int)
                or (p is not None and type(p) is not int)
                or (o is not None and type(o) is not int)
            ):
                continue  # a raw non-interned term matches no triple
            if store is not None:
                if s is None:
                    if p is not None and o is not None:
                        # The common fully-bound probe: one small subject
                        # set per shard -- concatenate and sort once, no
                        # per-shard run/merge machinery.  Same output as
                        # the routed stream ((p, o) fixed, so sorting the
                        # subjects is sorting the triples).
                        matched = [
                            subj
                            for probe_shard in store.shards
                            for subj in probe_shard.pos.get(p, {}).get(o, ())
                        ]
                        matched.sort()
                        for subj in matched:
                            append(row + make(subj, p, o))
                        continue
                    # Shard-spanning probe: consume the canonical routed
                    # stream (sorted fan-out merge) instead of global dicts.
                    for triple in store.triples_ids(None, p, o):
                        append(row + make(*triple))
                    continue
                shard = store.shard_of(s)
                spo, osp = shard.spo, shard.osp
            if s is not None:
                by_predicate = spo.get(s)
                if not by_predicate:
                    continue
                if p is not None:
                    objects = by_predicate.get(p)
                    if not objects:
                        continue
                    if o is not None:
                        if o in objects:
                            append(row + make(s, p, o))
                        continue
                    for obj in objects:
                        append(row + make(s, p, obj))
                    continue
                if o is not None:
                    predicates = osp.get(o, {}).get(s)
                    if predicates:
                        for pred in predicates:
                            append(row + make(s, pred, o))
                    continue
                for pred, objects in by_predicate.items():
                    for obj in objects:
                        append(row + make(s, pred, obj))
                continue
            if p is not None:
                by_object = pos.get(p)
                if not by_object:
                    continue
                if o is not None:
                    for subj in by_object.get(o, ()):
                        append(row + make(subj, p, o))
                    continue
                for obj, subjects in by_object.items():
                    for subj in subjects:
                        append(row + make(subj, p, obj))
                continue
            if o is not None:
                for subj, predicates in osp.get(o, {}).items():
                    for pred in predicates:
                        append(row + make(subj, pred, o))
                continue
            for triple in graph.triples_ids(None, None, None):
                append(row + make(*triple))
        return out

    def _index_join_general(
        self,
        ep: _EncodedPattern,
        rows: List[Tuple],
        col_of: Dict[Variable, int],
        new_col_of: Dict[Variable, int],
        extra_width: int,
    ) -> List[Tuple]:
        """Per-row index lookups: the fully general merge (repeated
        variables, heterogeneous rows, property paths)."""
        graph = self.graph
        out: List[Tuple] = []
        width = len(col_of)
        is_node_id = graph.is_node_id
        for row in rows:
            # Resolve each position against this row.
            resolved: List = []
            dead = False
            for position, spec in enumerate(ep.spec):
                if isinstance(spec, Variable):
                    column = col_of.get(spec)
                    value = row[column] if column is not None else _UNBOUND
                    if value is _UNBOUND:
                        resolved.append(None)
                    elif type(value) is int:
                        if (
                            ep.path is not None
                            and position != 1
                            and not is_node_id(value)
                        ):
                            # A variable path endpoint ranges over the node
                            # universe only (join-order independence; the
                            # scan pipeline enforces the same rule).
                            dead = True
                            break
                        resolved.append(value)
                    else:
                        dead = True  # non-interned term can match no triple
                        break
                else:
                    resolved.append(spec)
            if dead:
                continue

            if ep.path is not None:
                matches = self._row_path_matches(ep, resolved[0], resolved[2])
            else:
                matches = self._row_plain_matches(ep, resolved)

            for bound in matches:  # bound: value per ep.variables
                merged = None
                extra = [_UNBOUND] * extra_width
                for variable, value in zip(ep.variables, bound):
                    column = col_of.get(variable)
                    if column is None:
                        extra[new_col_of[variable] - width] = value
                    elif row[column] is _UNBOUND:
                        if merged is None:
                            merged = list(row)
                        merged[column] = value
                base = tuple(merged) if merged is not None else row
                out.append(base + tuple(extra))
        return out

    def _row_plain_matches(self, ep: _EncodedPattern, resolved: List) -> Iterator[Tuple]:
        """Matches for a plain pattern with per-row constants substituted."""
        s, p, o = resolved
        positions = [ep.var_positions[v] for v in ep.variables]
        yield from _triples_to_scan_rows(self.graph.triples_ids(s, p, o), positions)

    def _row_path_matches(
        self, ep: _EncodedPattern, s_value: Optional[int], o_value: Optional[int]
    ) -> Iterator[Tuple]:
        """Matches for a path pattern with per-row endpoint bindings.

        Endpoints are node IDs or None by this point: the resolution step
        already rejected rows binding a path-endpoint variable to a raw or
        non-node term.
        """
        from .paths import evaluate_path_ids

        pairs = evaluate_path_ids(self.graph, ep.path, s_value, o_value)
        yield from self._pairs_to_rows(ep, pairs)

    # -- the streaming (volcano-style) pipeline --------------------------------
    #
    # Every operator is a generator over ID-tuple rows; a row is pulled
    # through the whole chain before the next one is produced, so a bounded
    # consumer (LIMIT, ASK, EXISTS) stops the scans underneath it early.
    # Physical operators are shared with the hash pipeline (_scan_pattern,
    # _index_join); what changes is the control flow around them.

    def _evaluate_group_stream(
        self, group: GroupPattern, solutions: Iterator[Solution]
    ) -> Iterator[Solution]:
        """Lazy group pipeline: compose generators element by element."""
        stream = solutions
        filters: List[FilterPattern] = []
        pending: List[TriplePattern] = []
        for element in group.elements:
            if isinstance(element, TriplePattern):
                pending.append(element)
                continue
            if isinstance(element, FilterPattern):
                filters.append(element)
                continue
            if pending:
                stream = self._stream_bgp(tuple(pending), stream)
                pending = []
            if isinstance(element, OptionalPattern):
                stream = self._stream_optional(element, stream)
            elif isinstance(element, UnionPattern):
                stream = self._stream_union(element, stream)
            elif isinstance(element, GroupPattern):
                stream = self._evaluate_group_stream(element, stream)
            elif isinstance(element, ValuesPattern):
                stream = self._stream_values(element, stream)
            else:  # pragma: no cover - parser prevents this
                raise SparqlEvaluationError(f"unknown pattern element {element!r}")
        if pending:
            stream = self._stream_bgp(tuple(pending), stream)
        for filter_pattern in filters:
            stream = self._stream_filter(filter_pattern.expression, stream)
        return stream

    def _stream_filter(
        self, expression: Expression, stream: Iterator[Solution]
    ) -> Iterator[Solution]:
        for solution in stream:
            if self._filter_passes(expression, solution):
                yield solution

    def _stream_optional(
        self, element: OptionalPattern, stream: Iterator[Solution]
    ) -> Iterator[Solution]:
        for solution in stream:
            extended = self._evaluate_group_stream(element.group, iter((solution,)))
            first = next(extended, _UNBOUND)
            if first is _UNBOUND:
                yield solution
            else:
                yield first
                yield from extended

    def _stream_union(
        self, element: UnionPattern, stream: Iterator[Solution]
    ) -> Iterator[Solution]:
        # UNION replays its input once per alternative, so the input is the
        # one place the stream pipeline has to buffer.  Alternatives still
        # evaluate lazily, alternative-major like the eager pipeline.
        buffered = list(stream)
        for alternative in element.alternatives:
            yield from self._evaluate_group_stream(alternative, iter(buffered))

    def _stream_values(
        self, element: ValuesPattern, stream: Iterator[Solution]
    ) -> Iterator[Solution]:
        for solution in stream:
            for row in element.rows:
                candidate = dict(solution)
                compatible = True
                for variable, value in zip(element.variables, row):
                    if value is None:
                        continue  # UNDEF leaves the variable unconstrained
                    existing = candidate.get(variable)
                    if existing is None:
                        candidate[variable] = value
                    elif existing != value:
                        compatible = False
                        break
                if compatible:
                    yield candidate

    def _stream_bgp(
        self, patterns: Sequence[TriplePattern], solutions: Iterator[Solution]
    ) -> Iterator[Solution]:
        """The BGP join chain as a per-input-solution volcano pipeline.

        Each input solution seeds a single ID row; one generator per
        pattern extends rows lazily.  Operator state that is worth sharing
        across input solutions (hash-join build tables, cartesian scan
        buffers) lives in ``state`` keyed by pattern, so heterogeneous
        input headers each get a layout but the expensive scans run once.
        """
        encoded = self._compile_patterns(patterns)
        if any(ep.impossible for ep in encoded):
            return
        graph = self.graph
        lookup = graph.lookup_id
        decode = graph.decode_id
        plans: Dict[frozenset, Tuple] = {}
        state: Dict = {}
        for solution in solutions:
            header = frozenset(solution)
            plan = plans.get(header)
            if plan is None:
                plan = plans[header] = self._stream_plan(encoded, solution)
            columns, steps, out_layout = plan
            row: List = []
            for variable in columns:
                term = solution[variable]
                term_id = lookup(term)
                # Non-interned terms ride along raw; they can never equal a
                # scanned ID, which is the join semantics they need.
                row.append(term_id if term_id is not None else term)
            source: Iterator[Tuple] = iter((tuple(row),))
            for step in steps:
                source = self._stream_step(step, source, state)
            for out_row in source:
                out: Solution = {}
                for variable, column in out_layout:
                    value = out_row[column]
                    if value is _UNBOUND:
                        continue
                    out[variable] = decode(value) if type(value) is int else value
                yield out

    def _stream_plan(
        self, encoded: List[_EncodedPattern], solution: Solution
    ) -> Tuple[List[Variable], List[Tuple], List[Tuple[Variable, int]]]:
        """Join order + per-step column layouts for one input header.

        Greedy selectivity order, same scoring as the hash pipeline; the
        layouts are precomputed here so each solution only pays tuple
        construction at run time.
        """
        columns = sorted(solution, key=lambda variable: variable.name)
        col_of: Dict[Variable, int] = {v: i for i, v in enumerate(columns)}
        steps: List[Tuple] = []
        remaining = list(encoded)
        while remaining:
            bound = col_of
            chosen = min(
                remaining,
                key=lambda ep: (
                    ep.est / (16.0 ** sum(1 for v in ep.variables if v in bound)),
                    ep.index,
                ),
            )
            remaining.remove(chosen)
            shared = tuple(v for v in chosen.variables if v in col_of)
            new_vars = tuple(v for v in chosen.variables if v not in col_of)
            new_col_of = dict(col_of)
            for variable in new_vars:
                new_col_of[variable] = len(new_col_of)
            steps.append((chosen, col_of, new_col_of, new_vars, shared))
            col_of = new_col_of
        return columns, steps, list(col_of.items())

    #: hash-join build tables above this estimated cardinality would scan
    #: the pattern eagerly and defeat LIMIT pushdown, so anything larger
    #: joins by per-row index lookups instead.  Kept deliberately small:
    #: the build is the one eager scan the streaming pipeline allows
    #: itself, and a bounded consumer must stay O(limit + constant).
    STREAM_HASH_BUILD_MAX = 64.0

    def _stream_step(
        self, step: Tuple, upstream: Iterator[Tuple], state: Dict
    ) -> Iterator[Tuple]:
        """Extend each upstream row with one pattern's matches, lazily."""
        ep, col_of, new_col_of, new_vars, shared = step
        extra_width = len(new_vars)

        if not shared and ep.path is None:
            # Cartesian extension.  The single-upstream-row case (every
            # BGP's first pattern) streams straight off the index scan; a
            # multi-row upstream needs the scan replayed, so it buffers.
            first = next(upstream, _UNBOUND)
            if first is _UNBOUND:
                return
            second = next(upstream, _UNBOUND)
            if second is _UNBOUND:
                for srow in self._scan_pattern(ep):
                    yield first + srow
                return
            key = (ep.index, "scan")
            scan = state.get(key)
            if scan is None:
                scan = state[key] = list(self._scan_pattern(ep))
            for row in _chain((first, second), upstream):
                for srow in scan:
                    yield row + srow
            return

        if shared and ep.path is None and ep.est <= self.STREAM_HASH_BUILD_MAX:
            # Hash join against a small pattern: build the table once per
            # BGP (shared across input solutions), probe row by row.
            key = (ep.index, tuple(v.name for v in shared))
            table = state.get(key)
            if table is None:
                table = state[key] = self._build_probe_table(ep, shared, new_vars)
            shared_cols = [col_of[v] for v in shared]
            get = table.get
            if len(shared_cols) == 1:
                shared_col = shared_cols[0]
                for row in upstream:
                    probe = row[shared_col]
                    if probe is _UNBOUND:
                        yield from self._index_join(
                            ep, [row], col_of, new_col_of, extra_width
                        )
                        continue
                    bucket = get(probe)
                    if bucket:
                        for extra in bucket:
                            yield row + extra
            else:
                for row in upstream:
                    probe = tuple(row[c] for c in shared_cols)
                    if _UNBOUND in probe:
                        yield from self._index_join(
                            ep, [row], col_of, new_col_of, extra_width
                        )
                        continue
                    bucket = get(probe)
                    if bucket:
                        for extra in bucket:
                            yield row + extra
            return

        # Index nested-loop join: per-row index lookups, no upfront scan.
        # Covers property paths, repeated variables and large patterns.
        for row in upstream:
            yield from self._index_join(ep, [row], col_of, new_col_of, extra_width)

    # -- the legacy substitute-and-scan pipeline -------------------------------

    def _evaluate_bgp_scan(
        self, patterns: List[TriplePattern], solutions: List[Solution]
    ) -> List[Solution]:
        """Index nested-loop join, re-picking the most selective pattern."""
        if not patterns:
            return solutions

        current = solutions
        remaining = list(patterns)
        bound_vars = set()
        for solution in solutions:
            bound_vars.update(solution.keys())
            break  # the header is identical across input solutions

        while remaining:
            remaining.sort(
                key=lambda p: -self._selectivity_score(p, bound_vars)
            )
            pattern = remaining.pop(0)
            next_solutions: List[Solution] = []
            for solution in current:
                next_solutions.extend(self._match_pattern(pattern, solution))
            current = next_solutions
            for variable in pattern.variables():
                bound_vars.add(variable)
            if not current:
                return []
        return current

    @staticmethod
    def _selectivity_score(pattern: TriplePattern, bound_vars: set) -> int:
        """Higher = evaluate earlier. Ground/bound positions add selectivity."""
        score = 0
        for position, weight in (
            (pattern.subject, 4),
            (pattern.object, 3),
            (pattern.predicate, 2),
        ):
            if not isinstance(position, Variable):
                score += weight
            elif position in bound_vars:
                score += weight - 1
        return score

    def _match_pattern(
        self, pattern: TriplePattern, solution: Solution
    ) -> Iterator[Solution]:
        s, p, o = _substitute(pattern, solution)

        from .paths import evaluate_path, is_path

        if is_path(pattern.predicate):
            # Variable endpoints range over the node universe only.  A
            # binding carried in from elsewhere that names a non-node term
            # could only be satisfied by zero-length closure, which a
            # variable endpoint does not admit; enforcing it here keeps
            # path evaluation independent of join order (and in agreement
            # with the hash pipeline).
            if (
                isinstance(pattern.subject, Variable)
                and s is not None
                and not self.graph.is_node_term(s)
            ):
                return
            if (
                isinstance(pattern.object, Variable)
                and o is not None
                and not self.graph.is_node_term(o)
            ):
                return
            for subject, obj in evaluate_path(self.graph, pattern.predicate, s, o):
                out = dict(solution)
                compatible = True
                for variable, value in (
                    (pattern.subject, subject),
                    (pattern.object, obj),
                ):
                    if isinstance(variable, Variable):
                        existing = out.get(variable)
                        if existing is None:
                            out[variable] = value
                        elif existing != value:
                            compatible = False
                            break
                if compatible:
                    yield out
            return

        for triple in self.graph.triples(s, p, o):
            out = dict(solution)
            compatible = True
            for variable, value in (
                (pattern.subject, triple.subject),
                (pattern.predicate, triple.predicate),
                (pattern.object, triple.object),
            ):
                if isinstance(variable, Variable):
                    existing = out.get(variable)
                    if existing is None:
                        out[variable] = value
                    elif existing != value:
                        compatible = False
                        break
            if compatible:
                yield out

    def _evaluate_optional(
        self, element: OptionalPattern, solutions: List[Solution]
    ) -> List[Solution]:
        out: List[Solution] = []
        for solution in solutions:
            extended = list(self._evaluate_group(element.group, [solution]))
            if extended:
                out.extend(extended)
            else:
                out.append(solution)
        return out

    def _evaluate_values(
        self, element: ValuesPattern, solutions: List[Solution]
    ) -> List[Solution]:
        out: List[Solution] = []
        for solution in solutions:
            for row in element.rows:
                candidate = dict(solution)
                compatible = True
                for variable, value in zip(element.variables, row):
                    if value is None:
                        continue  # UNDEF leaves the variable unconstrained
                    existing = candidate.get(variable)
                    if existing is None:
                        candidate[variable] = value
                    elif existing != value:
                        compatible = False
                        break
                if compatible:
                    out.append(candidate)
        return out

    def _filter_passes(self, expression: Expression, solution: Solution) -> bool:
        try:
            value = evaluate_expression(expression, solution, self._evaluate_exists)
            return effective_boolean_value(value)
        except ExpressionError:
            return False

    def _evaluate_exists(self, expression: ExistsExpression, solution: Solution) -> bool:
        for _ in self._evaluate_group(expression.group, [dict(solution)]):
            return True
        return False

    def _any_solution(self, group: GroupPattern) -> bool:
        # Fast path for the ubiquitous liveness probe ``ASK { ?s ?p ?o }``
        # (and any single plain pattern): probe the ID indexes directly
        # instead of materializing the full scan.
        if self.strategy in ("hash", "stream", "batch") and len(group.elements) == 1:
            element = group.elements[0]
            from .paths import is_path

            if isinstance(element, TriplePattern) and not is_path(element.predicate):
                compiled = self._compile_patterns((element,))[0]
                if compiled.impossible:
                    return False
                for row in self._scan_pattern(compiled):
                    return True
                return False
        if self.strategy == "scan":
            for _ in self._evaluate_group(group, [{}]):
                return True
            return False
        # ASK needs exactly one witness: the streaming pipeline stops the
        # underlying scans as soon as it surfaces (the eager pipeline would
        # materialize the complete join first).
        for _ in self._evaluate_group_stream(group, iter(({},))):
            return True
        return False

    # -- SELECT pipeline -----------------------------------------------------

    #: the eager engine hands a SELECT to the streaming operators only when
    #: LIMIT is at most this.  Small limits are where pushdown pays by
    #: construction; large limits are usually pagination pages, where the
    #: limit rarely binds and the eager ID-space batch path is faster.
    STREAM_DELEGATE_LIMIT = 64

    def _run_select(self, query: SelectQuery) -> SelectResult:
        if self.strategy == "batch":
            # The columnar fast path owns every simple-shape SELECT
            # (plain BGP + term-test filters): batched scan -> vectorized
            # probe -> columnar filter -> batched sink.  ``None`` means
            # the shape needs row-at-a-time machinery; fall through to
            # the hash delegation ladder below, exactly like hash falls
            # through to the streaming operators.
            batched = self._run_select_batch(query)
            if batched is not None:
                return batched
        if self.strategy in ("hash", "batch"):
            # Small-LIMIT queries pay for every row an eager pipeline
            # materializes and then throws away; route them through the
            # streaming operators instead.  Unordered DISTINCT stays on
            # the eager fast path, which deduplicates in ID space before
            # decoding; DISTINCT + ORDER BY rides the top-k operator's
            # per-key champion table.  The gate must not involve OFFSET:
            # all pages of one paginated query then land on the same
            # pipeline, keeping row order stable across pages.
            if (
                query.limit is not None
                and query.limit <= self.STREAM_DELEGATE_LIMIT
            ):
                if not query.distinct and self._streamable(query):
                    return self._run_select_streaming(query)
                if self._topk_shape(query):
                    # ORDER BY ... LIMIT k: the bounded top-k operator.
                    # On this eager engine the join itself still
                    # materializes (same batch ID-join as the general
                    # path), but only offset+k rows are ever decoded,
                    # scoped or sorted; the O(offset+k) peak-row bound
                    # holds on the stream engine's lazy variant only.
                    return self._run_select_topk(query)
            if query.order_by and not query.has_aggregates():
                # ORDER BY that the bounded top-k did not take (no LIMIT,
                # a large LIMIT, or DISTINCT): sort raw ID rows, decode
                # only the emitted page.
                ordered = self._try_order_fast(query)
                if ordered is not None:
                    return ordered
            fast = self._try_select_fast(query)
            if fast is not None:
                return fast
            if self._stream_aggregate_shape(query):
                # Column-shaped aggregation the ID-space fast path could
                # not take (OPTIONAL/UNION/paths in the WHERE clause):
                # fold incrementally instead of materializing group
                # member lists.
                return self._run_select_aggregate_stream(query)
        elif self.strategy == "stream":
            if self._streamable(query):
                return self._run_select_streaming(query)
            if self._topk_shape(query):
                return self._run_select_topk(query)
            if query.order_by and not query.has_aggregates():
                # un-LIMITed ORDER BY: no heap bound to exploit, but the
                # ID-space sorter still sorts undecoded rows and decodes
                # only the emitted page -- same delegation the hash
                # engine makes, so stream never falls back to the general
                # path for a shape its sibling handles in ID space.
                ordered = self._try_order_fast(query)
                if ordered is not None:
                    return ordered
            if self._stream_aggregate_shape(query):
                return self._run_select_aggregate_stream(query)
        return self._run_select_general(query)

    @staticmethod
    def _streamable(query: SelectQuery) -> bool:
        """Can SELECT evaluation run without a pipeline breaker?

        ORDER BY, grouping/aggregation and HAVING need the full solution
        multiset before the first output row; ``SELECT *`` derives its
        header from the solutions, which would make a truncated stream
        observable.  Everything else keeps row-at-a-time semantics.
        """
        return (
            not query.order_by
            and query.having is None
            and not query.select_all
            and not query.has_aggregates()
        )

    @staticmethod
    def _topk_shape(query: SelectQuery) -> bool:
        """Is this ``ORDER BY ... LIMIT k`` the bounded heap can run?

        DISTINCT rides along through a per-key champion table: each
        distinct projected row keeps only its earliest-in-sort-order
        entry, and the heap then slices the champions -- equivalent to
        sort, stable dedup, slice (the modifier order the spec defines).
        Aggregation routes through the streaming GROUP BY fold instead
        (its O(groups) output is then ordered whole).
        """
        return (
            bool(query.order_by)
            and query.limit is not None
            and query.having is None
            and not query.has_aggregates()
        )

    @staticmethod
    def _stream_aggregate_shape(query: SelectQuery) -> bool:
        """Can grouping/aggregation fold incrementally (O(groups) state)?

        Expression-valued group keys, aggregate arguments and projections
        stay on the materialized path -- ``aggregate_plan`` is the same
        column-shape probe the ID-space fast path uses.  HAVING rides
        along when it is a conjunction of aggregate-vs-constant
        comparisons (``having_aggregate_conjuncts``): those gate groups
        at fold-result time; any other HAVING still re-evaluates over
        materialized member lists.
        """
        return (
            query.has_aggregates()
            and (
                query.having is None
                or query.having_aggregate_conjuncts() is not None
            )
            and not query.select_all
            and query.aggregate_plan() is not None
        )

    def _run_select_streaming(self, query: SelectQuery) -> SelectResult:
        """Row-at-a-time SELECT: project, deduplicate and paginate while
        pulling, so OFFSET/LIMIT bound the work the joins underneath do."""
        names: List[str] = []
        for projection in query.projections:
            variable = projection.variable
            if variable is None:
                raise SparqlEvaluationError("projection without output variable")
            names.append(variable.name)
        if query.limit == 0:
            return SelectResult(names, [])

        solutions = self._evaluate_group_stream(query.where, iter(({},)))
        rows: List[Row] = []
        seen = set() if query.distinct else None
        skip = query.offset or 0
        limit = query.limit
        for solution in solutions:
            row = self._project_row(query, names, solution)
            if seen is not None:
                dedup_key = tuple(row.get(name) for name in names)
                if dedup_key in seen:
                    continue
                seen.add(dedup_key)
            if skip:
                skip -= 1
                continue
            rows.append(row)
            if limit is not None and len(rows) >= limit:
                break
        return SelectResult(names, rows)

    # -- bounded top-k ORDER BY -------------------------------------------------

    def _run_select_topk(self, query: SelectQuery) -> SelectResult:
        """``ORDER BY ... LIMIT k`` as a streaming operator.

        The full join still has to be consumed (ordering admits no early
        exit), but only ``offset + k`` rows are ever *kept*: a bounded
        heap replaces materialize-everything-then-sort.  Two variants
        share the heap: an ID-space one for pure BGP(+simple FILTER)
        queries with bare-variable sort keys, which keeps raw ID rows and
        decodes only the survivors, and a term-space one that runs the
        same scopes as the materialized path (sort keys may reference
        unprojected WHERE variables and projection aliases; unbound keys
        sort first, stably).
        """
        fast = self._try_topk_fast(query)
        if fast is not None:
            return fast
        return self._run_select_topk_general(query)

    def _try_topk_fast(self, query: SelectQuery) -> Optional[SelectResult]:
        """The ID-space top-k: heap over raw ID rows, decode k survivors."""
        order_vars = query.order_variables()
        if order_vars is None:
            return None
        shape = self._simple_where_shape(query)
        if shape is None:
            return None
        patterns, simple_filters = shape
        if not query.select_all:
            for projection in query.projections:
                if projection.alias is not None or not isinstance(
                    projection.expression, VariableExpression
                ):
                    return None
            if query.limit == 0:
                # Nothing can survive the slice and the header is known
                # without consuming the join (SELECT * must still drain
                # it for header derivation, so only this branch returns).
                names = [p.expression.variable.name for p in query.projections]
                self.exec_stats.update(
                    operator="topk-id", input_rows=0, tracked_rows=0
                )
                if self.obs.detail:
                    self._operator_event()
                return SelectResult(names, [])

        decode = self.graph.decode_id
        col_of: Dict[Variable, int] = {}
        rows_iter: Iterator[Tuple] = iter(())
        if self.strategy in ("hash", "batch"):
            # The heap has to consume the whole join either way, so the
            # delegating eager engine feeds it from its batch ID-join --
            # same row production (and tie order) as its materialized
            # path, minus the decode/sort of everything beyond k.
            joined = self._bgp_id_rows(patterns, [{}])
            if joined is not None:
                rows, col_of = joined
                rows_iter = iter(rows)
        else:
            # The stream engine keeps the memory contract too: rows come
            # off the lazy volcano chain, so peak state is offset+k ID
            # rows plus the operator chain's own bounded buffers.
            encoded = self._compile_patterns(patterns)
            if not any(ep.impossible for ep in encoded):
                _columns, steps, out_layout = self._stream_plan(encoded, {})
                col_of = dict(out_layout)
                state: Dict = {}
                source: Iterator[Tuple] = iter(((),))
                for step in steps:
                    source = self._stream_step(step, source, state)
                rows_iter = source

        filter_specs = []
        for test, variable in simple_filters:
            column = col_of.get(variable)
            if column is None:
                # Filter over an unbound variable drops every row (the
                # general pipeline raises-and-rejects per row).
                rows_iter = iter(())
                filter_specs = []
                break
            filter_specs.append((test, column, {}))

        key_columns = [col_of.get(variable) for variable in order_vars]
        flags = tuple(condition.descending for condition in query.order_by)
        keep = (query.offset or 0) + query.limit
        unbound_key = (0, ())
        key_memo: Dict[int, Tuple] = {}
        stats = {"operator": "topk-id", "input_rows": 0, "survivors": 0}

        def entries() -> Iterator[_TopKEntry]:
            for row in rows_iter:
                stats["input_rows"] += 1
                passed = True
                for test, column, memo in filter_specs:
                    value = row[column]
                    verdict = memo.get(value)
                    if verdict is None:
                        verdict = memo[value] = test(
                            decode(value) if type(value) is int else value
                        )
                    if not verdict:
                        passed = False
                        break
                if not passed:
                    continue
                keys = []
                for column in key_columns:
                    if column is None:
                        keys.append(unbound_key)
                        continue
                    value = row[column]
                    if type(value) is int:
                        key = key_memo.get(value)
                        if key is None:
                            key = key_memo[value] = (1, decode(value).sort_key())
                    else:  # raw non-interned term carried through a seed row
                        key = (1, value.sort_key())
                    keys.append(key)
                yield _TopKEntry(tuple(keys), flags, stats["survivors"], row)
                stats["survivors"] += 1

        distinct_keys = None
        if query.distinct:
            if query.select_all:
                dedup_columns = [
                    column
                    for _name, column in sorted(
                        (variable.name, column)
                        for variable, column in col_of.items()
                    )
                ]
            else:
                dedup_columns = [
                    col_of.get(p.expression.variable) for p in query.projections
                ]
            champions = _champion_fold(
                entries(),
                lambda row: tuple(
                    row[column] if column is not None else None
                    for column in dedup_columns
                ),
            )
            distinct_keys = len(champions)
            kept_all = _topk_fold(iter(champions.values()), keep)
        else:
            kept_all = _topk_fold(entries(), keep)
        kept = kept_all[query.offset or 0 :]

        names, columns = self._id_projection_layout(
            query, col_of, stats["survivors"] > 0
        )
        out_rows = self._decode_id_rows(
            (entry.payload for entry in kept), names, columns
        )
        self.exec_stats.update(
            operator="topk-id",
            input_rows=stats["input_rows"],
            tracked_rows=len(kept_all),
        )
        if distinct_keys is not None:
            self.exec_stats["distinct_keys"] = distinct_keys
        if self.obs.detail:
            self._operator_event()
        return SelectResult(names, out_rows)

    def _run_select_topk_general(self, query: SelectQuery) -> SelectResult:
        """Term-space bounded ORDER BY: the materialized path's scopes
        (solution + projected row), a heap instead of a full sort."""
        conditions = query.order_by
        flags = tuple(condition.descending for condition in conditions)
        keep = (query.offset or 0) + query.limit
        stats = {"operator": "topk", "input_rows": 0, "tracked_rows": 0}

        if not query.select_all:
            names: List[str] = []
            for projection in query.projections:
                variable = projection.variable
                if variable is None:
                    raise SparqlEvaluationError("projection without output variable")
                names.append(variable.name)
            if query.limit == 0:
                self.exec_stats.update(stats)
                return SelectResult(names, [])

        solutions = self._evaluate_group_stream(query.where, iter(({},)))

        if query.select_all:
            seen_names = set()

            def entries() -> Iterator[_TopKEntry]:
                for seq, solution in enumerate(solutions):
                    stats["input_rows"] += 1
                    for variable in solution:
                        seen_names.add(variable.name)
                    keys = tuple(
                        self._order_key(condition, solution)
                        for condition in conditions
                    )
                    yield _TopKEntry(keys, flags, seq, solution)

            if query.distinct:
                # DISTINCT on SELECT *: the projected row is determined by
                # the solution's bound items (unbound projects to None and
                # None is never a bound value), so the item set is the
                # dedup key.
                champions = _champion_fold(
                    entries(),
                    lambda solution: frozenset(
                        (variable.name, term)
                        for variable, term in solution.items()
                    ),
                )
                stats["distinct_keys"] = len(champions)
                kept = _topk_fold(iter(champions.values()), keep)
            else:
                kept = _topk_fold(entries(), keep)
            names = sorted(seen_names)
            rows = [
                {name: entry.payload.get(Variable(name)) for name in names}
                for entry in kept[query.offset or 0 :]
            ]
        else:
            # Sort keys need the projected row in scope only when a
            # condition could see an alias-bound value: a non-variable
            # condition (its expression may name any alias) or a bare
            # sort variable that an ``(expr AS ?alias)`` projection
            # rebinds.  Bare projections bind the same value the
            # solution already holds, so they never change a key.
            alias_names = {
                projection.alias.name
                for projection in query.projections
                if projection.alias is not None
            }
            keys_need_row = any(
                condition.variable is None or condition.variable.name in alias_names
                for condition in conditions
            )

            if query.distinct:
                # DISTINCT dedups on the projected row, so every input row
                # projects (no survivors-only shortcut) and the row is the
                # entry payload.
                def entries() -> Iterator[_TopKEntry]:
                    for seq, solution in enumerate(solutions):
                        stats["input_rows"] += 1
                        row = self._project_row(query, names, solution)
                        if keys_need_row:
                            scope = dict(solution)
                            for name, term in row.items():
                                if term is not None:
                                    scope[Variable(name)] = term
                        else:
                            scope = solution
                        keys = tuple(
                            self._order_key(condition, scope)
                            for condition in conditions
                        )
                        yield _TopKEntry(keys, flags, seq, row)

                champions = _champion_fold(
                    entries(), lambda row: tuple(row[name] for name in names)
                )
                stats["distinct_keys"] = len(champions)
                kept = _topk_fold(iter(champions.values()), keep)
                rows = [entry.payload for entry in kept[query.offset or 0 :]]
            elif keys_need_row:

                def entries() -> Iterator[_TopKEntry]:
                    for seq, solution in enumerate(solutions):
                        stats["input_rows"] += 1
                        row = self._project_row(query, names, solution)
                        # ORDER BY may reference WHERE variables that were
                        # not projected (ordering happens before projection
                        # in the spec) and the projection aliases -- same
                        # scope the materialized path sorts with.
                        scope = dict(solution)
                        for name, term in row.items():
                            if term is not None:
                                scope[Variable(name)] = term
                        keys = tuple(
                            self._order_key(condition, scope)
                            for condition in conditions
                        )
                        yield _TopKEntry(keys, flags, seq, row)

                kept = _topk_fold(entries(), keep)
                rows = [entry.payload for entry in kept[query.offset or 0 :]]
            else:
                # Keys read straight off the solutions; project only the
                # offset+k survivors instead of every input row.
                def entries() -> Iterator[_TopKEntry]:
                    for seq, solution in enumerate(solutions):
                        stats["input_rows"] += 1
                        keys = tuple(
                            self._order_key(condition, solution)
                            for condition in conditions
                        )
                        yield _TopKEntry(keys, flags, seq, solution)

                kept = _topk_fold(entries(), keep)
                rows = [
                    self._project_row(query, names, entry.payload)
                    for entry in kept[query.offset or 0 :]
                ]

        stats["tracked_rows"] = len(kept)
        self.exec_stats.update(stats)
        if self.obs.detail:
            self._operator_event()
        return SelectResult(names, rows)

    # -- streaming (incremental) aggregation ------------------------------------

    @staticmethod
    def _having_fold_passes(value: Optional[Term], op: str, constant: Term) -> bool:
        """One pushed-down HAVING conjunct, evaluated on a fold result.

        Runs the real expression interpreter on ``value op constant`` so
        numeric promotion and error semantics cannot diverge from the
        materialized path (which substitutes the same fold result into
        the original expression); a None fold result (e.g. AVG over no
        numerics) is an expression error there, so it gates here.
        """
        if value is None:
            return False
        try:
            result = evaluate_expression(
                CompareExpression(op, TermExpression(value), TermExpression(constant)),
                {},
                None,
            )
            return effective_boolean_value(result)
        except ExpressionError:
            return False

    def _run_select_aggregate_stream(self, query: SelectQuery) -> SelectResult:
        """GROUP BY/aggregation as an incremental fold: one pass over the
        solution stream, O(groups) tracked state, never a member list.

        Under ``strategy="stream"`` the input is the lazy volcano
        pipeline, so peak memory really is the accumulator table; under
        the eager strategies the same fold replaces the materialized
        group-then-rescan machinery.  ORDER BY / DISTINCT / OFFSET /
        LIMIT then apply to the O(groups) output rows in spec order --
        which is what makes "top-k entities by count" queries cheap.
        """
        group_vars, items = query.aggregate_plan()
        agg_specs = [
            (index, payload)
            for index, (kind, payload, _name) in enumerate(items)
            if kind == "agg"
        ]
        # Pushed-down HAVING conjuncts fold alongside the projected
        # aggregates (negative slots so they never collide with item
        # indexes) and gate each group when its row is emitted.
        having = (
            query.having_aggregate_conjuncts() if query.having is not None else None
        )
        having_specs = [
            (-(position + 1), aggregate, op, constant)
            for position, (aggregate, op, constant) in enumerate(having or ())
        ]
        fold_specs = agg_specs + [
            (slot, aggregate) for slot, aggregate, _op, _constant in having_specs
        ]

        def fresh_folds() -> Dict[int, _AggFold]:
            return {index: _AggFold(aggregate) for index, aggregate in fold_specs}

        solutions = self._evaluate_group(query.where, [{}])
        groups: Dict[Tuple, Tuple[Solution, Dict[int, _AggFold]]] = {}
        input_rows = 0
        for solution in solutions:
            input_rows += 1
            key = tuple(solution.get(variable) for variable in group_vars)
            state = groups.get(key)
            if state is None:
                state = groups[key] = (solution, fresh_folds())
            folds = state[1]
            for index, aggregate in fold_specs:
                fold = folds[index]
                if aggregate.expression is None:  # COUNT(*)
                    if aggregate.distinct:
                        fold.add_star(
                            tuple(sorted((v.name, t) for v, t in solution.items()))
                        )
                    else:
                        fold.add_star()
                    continue
                value = solution.get(aggregate.expression.variable)
                if value is not None:
                    fold.add(value)
        if not group_vars and not groups:
            # Implicit single group; aggregates over an empty pattern still
            # produce one row (COUNT(*) = 0) per the spec.
            groups[()] = ({}, fresh_folds())

        names = [name for _kind, _payload, name in items]
        rows: List[Row] = []
        having_pruned = 0
        for first_solution, folds in groups.values():
            if having_specs and not all(
                self._having_fold_passes(folds[slot].result(), op, constant)
                for slot, _aggregate, op, constant in having_specs
            ):
                having_pruned += 1
                continue
            row: Row = {}
            for index, (kind, payload, name) in enumerate(items):
                if kind == "var":
                    row[name] = first_solution.get(payload)
                else:
                    row[name] = folds[index].result()
            rows.append(row)
        self.exec_stats.update(
            operator="stream-aggregate",
            input_rows=input_rows,
            tracked_rows=len(groups),
        )
        if having_specs:
            self.exec_stats["having_pruned"] = having_pruned
        if self.obs.detail:
            self._operator_event()
        return SelectResult(names, self._apply_modifiers(query, rows, names))

    # -- the ID-space SELECT fast path ----------------------------------------

    @staticmethod
    def _simple_where_shape(query: SelectQuery):
        """``(patterns, simple_filters)`` when the WHERE clause is plain
        triple patterns plus one-variable term-test filters, else None --
        the shape whose rows are guaranteed pure ID tuples."""
        from .paths import is_path

        patterns: List[TriplePattern] = []
        simple_filters = []
        for element in query.where.elements:
            if isinstance(element, TriplePattern):
                if is_path(element.predicate):
                    return None  # path rows can carry raw terms; keep general
                patterns.append(element)
            elif isinstance(element, FilterPattern):
                compiled = _simple_filter(element.expression)
                if compiled is None:
                    return None
                simple_filters.append(compiled)
            else:
                return None
        if not patterns:
            return None
        return patterns, simple_filters

    def _try_select_fast(self, query: SelectQuery) -> Optional[SelectResult]:
        """Execute BGP(+simple FILTER) SELECTs without decoding intermediates.

        Covers the whole index-extraction workload: plain triple patterns,
        one-variable term-test filters, bare-variable projections, bare
        GROUP BY / aggregates, DISTINCT and OFFSET/LIMIT -- plus ORDER BY
        over aggregate output (top-k-entities queries order the O(groups)
        fold result, not the join).  Rows stay ID tuples until
        projection/fold time, so DISTINCT and grouping hash machine
        integers and pagination decodes only the surviving page.
        Returns None when the query needs the general pipeline.
        """
        if query.having is not None and (
            not query.has_aggregates()
            or query.having_aggregate_conjuncts() is None
        ):
            return None
        if query.order_by and not query.has_aggregates():
            # plain ORDER BY belongs to the bounded top-k operator (when
            # delegated), the ID-space sorter (_try_order_fast) or the
            # general sort, not this batch path
            return None
        shape = self._simple_where_shape(query)
        if shape is None:
            return None
        patterns, simple_filters = shape

        plan = None
        if query.has_aggregates():
            plan = query.aggregate_plan()
            if plan is None:
                return None
        elif not query.select_all:
            for projection in query.projections:
                if projection.alias is not None or not isinstance(
                    projection.expression, VariableExpression
                ):
                    return None

        joined = self._bgp_id_rows(patterns, [{}])
        if joined is None:
            rows: List[Tuple] = []
            col_of: Dict[Variable, int] = {}
        else:
            rows, col_of = joined

        rows = self._filter_id_rows(rows, col_of, simple_filters)

        if plan is not None:
            return self._fast_aggregate_result(query, plan, rows, col_of)

        names, columns = self._id_projection_layout(query, col_of, bool(rows))
        if query.distinct:
            seen = set()
            deduped = []
            for row in rows:
                key = tuple(
                    row[column] if column is not None else None for column in columns
                )
                if key not in seen:
                    seen.add(key)
                    deduped.append(row)
            rows = deduped
        if query.offset:
            rows = rows[query.offset:]
        if query.limit is not None:
            rows = rows[: query.limit]
        return SelectResult(names, self._decode_id_rows(rows, names, columns))

    def _filter_id_rows(
        self, rows: List[Tuple], col_of: Dict[Variable, int], simple_filters
    ) -> List[Tuple]:
        """Apply one-variable term-test filters to ID rows (memo-free: the
        term-kind tests are cheap, the decode dominates and is per-row).
        A filter over an unbound variable drops every row, matching the
        general pipeline's raise-and-reject."""
        if not rows or not simple_filters:
            return rows
        decode = self.graph.decode_id
        for test, variable in simple_filters:
            column = col_of.get(variable)
            if column is None:
                return []
            kept = []
            for row in rows:
                value = row[column]
                if value is _UNBOUND:
                    continue
                if test(decode(value) if type(value) is int else value):
                    kept.append(row)
            rows = kept
            if not rows:
                break
        return rows

    def _try_order_fast(self, query: SelectQuery) -> Optional[SelectResult]:
        """ORDER BY *without* a delegated LIMIT, kept in ID space.

        The former remaining materializer: plain ``ORDER BY`` (no LIMIT,
        or a LIMIT past the top-k delegation bound, or DISTINCT) used to
        decode every solution into term dicts, build per-row sort scopes
        and sort those.  For the simple shape (plain BGP + term-test
        filters, bare-variable projections and sort keys) the rows are
        pure ID tuples: sort them directly -- each distinct ID decodes to
        its sort key exactly once via a memo -- then dedupe/slice in ID
        space and decode only the emitted page.  Tie-breaks match the
        materialized sort because both consume the same ``_bgp_id_rows``
        order with the same stable per-condition passes.
        """
        order_vars = query.order_variables()
        if order_vars is None or query.having is not None:
            return None
        shape = self._simple_where_shape(query)
        if shape is None:
            return None
        patterns, simple_filters = shape
        if not query.select_all:
            for projection in query.projections:
                if projection.alias is not None or not isinstance(
                    projection.expression, VariableExpression
                ):
                    return None

        joined = self._bgp_id_rows(patterns, [{}])
        if joined is None:
            rows: List[Tuple] = []
            col_of: Dict[Variable, int] = {}
        else:
            rows, col_of = joined
        rows = self._filter_id_rows(rows, col_of, simple_filters)
        input_rows = len(rows)

        if rows:
            decode = self.graph.decode_id
            unbound_key = (0, ())
            key_memo: Dict[int, Tuple] = {}
            key_columns = [col_of.get(variable) for variable in order_vars]
            decorated = []
            for row in rows:
                keys = []
                for column in key_columns:
                    if column is None:
                        keys.append(unbound_key)
                        continue
                    value = row[column]
                    if value is _UNBOUND:
                        keys.append(unbound_key)
                    elif type(value) is int:
                        key = key_memo.get(value)
                        if key is None:
                            key = key_memo[value] = (1, decode(value).sort_key())
                        keys.append(key)
                    else:  # raw non-interned term carried through a seed row
                        keys.append((1, value.sort_key()))
                decorated.append((keys, row))
            # Stable multi-key sort, same discipline as _order: sort by the
            # last condition first; equal keys keep input order.
            for position in range(len(query.order_by) - 1, -1, -1):
                reverse = query.order_by[position].descending
                decorated.sort(key=lambda item: item[0][position], reverse=reverse)
            rows = [row for _keys, row in decorated]

        names, columns = self._id_projection_layout(query, col_of, bool(rows))
        if query.distinct:
            seen = set()
            deduped = []
            for row in rows:
                key = tuple(
                    row[column] if column is not None else None for column in columns
                )
                if key not in seen:
                    seen.add(key)
                    deduped.append(row)
            rows = deduped
        if query.offset:
            rows = rows[query.offset :]
        if query.limit is not None:
            rows = rows[: query.limit]
        self.exec_stats.update(
            operator="order-id", input_rows=input_rows, decoded_rows=len(rows)
        )
        if self.obs.detail:
            self._operator_event()
        return SelectResult(names, self._decode_id_rows(rows, names, columns))

    def _id_projection_layout(
        self, query: SelectQuery, col_of: Dict[Variable, int], any_solutions: bool
    ) -> Tuple[List[str], List[Optional[int]]]:
        """``(names, columns)`` for projecting ID rows.

        Shared by the eager fast path and the ID-space top-k so the
        ``SELECT *`` header rule stays in one place: the header comes from
        the (complete) solution multiset -- zero solutions, empty header.
        """
        if query.select_all:
            if not any_solutions:
                return [], []
            names = sorted(variable.name for variable in col_of)
            by_name = {variable.name: column for variable, column in col_of.items()}
            return names, [by_name[name] for name in names]
        names = [p.expression.variable.name for p in query.projections]
        return names, [col_of.get(p.expression.variable) for p in query.projections]

    def _decode_id_rows(
        self, rows: Iterable[Tuple], names: List[str], columns: List[Optional[int]]
    ) -> List[Row]:
        """Decode + project ID rows into result rows (the one decode loop)."""
        decode = self.graph.decode_id
        out_rows: List[Row] = []
        for row in rows:
            projected: Row = {}
            for name, column in zip(names, columns):
                if column is None:
                    projected[name] = None
                    continue
                value = row[column]
                if value is _UNBOUND:
                    projected[name] = None
                else:
                    projected[name] = decode(value) if type(value) is int else value
            out_rows.append(projected)
        return out_rows

    def _fast_aggregate_result(
        self,
        query: SelectQuery,
        plan,
        rows: List[Tuple],
        col_of: Dict[Variable, int],
    ) -> SelectResult:
        """Fold ID rows group by group without materializing member lists.

        One pass: each row lands in its group's :class:`_AggFold`
        accumulators (per projected aggregate) and is forgotten -- state
        is O(groups), or O(distinct values) for DISTINCT folds, never
        O(rows).  Values stay encoded until a fold actually needs the
        term (COUNT and COUNT DISTINCT never decode at all).
        """
        group_vars, items = plan
        decode = self.graph.decode_id

        group_columns, fold_specs, having_specs = self._aggregate_fold_specs(
            query, plan, col_of
        )

        # key -> (first member row, {item index: fold})
        groups: Dict[Tuple, Tuple[Optional[Tuple], Dict[int, _AggFold]]] = {}
        for row in rows:
            key = tuple(
                row[column] if column is not None else None
                for column in group_columns
            )
            state = groups.get(key)
            if state is None:
                state = groups[key] = (
                    row,
                    {index: _AggFold(agg) for index, agg, _ in fold_specs},
                )
            folds = state[1]
            for index, aggregate, column in fold_specs:
                if aggregate.expression is None:  # COUNT(*)
                    folds[index].add_star(row if aggregate.distinct else None)
                    continue
                if column is None:
                    continue
                value = row[column]
                if value is not _UNBOUND:
                    folds[index].add(value, decode)
        if not group_vars and not groups:
            # Implicit single group; aggregates over an empty pattern still
            # produce one row (COUNT(*) = 0) per the spec.
            groups[()] = (None, {index: _AggFold(agg) for index, agg, _ in fold_specs})

        names, out_rows, having_pruned = self._aggregate_groups_rows(
            items, groups, col_of, having_specs
        )

        self.exec_stats.update(
            operator="fast-aggregate",
            input_rows=len(rows),
            tracked_rows=len(groups),
        )
        if having_specs:
            self.exec_stats["having_pruned"] = having_pruned
        if self.obs.detail:
            self._operator_event()
        return SelectResult(names, self._apply_modifiers(query, out_rows, names))

    def _aggregate_fold_specs(self, query: SelectQuery, plan, col_of):
        """``(group columns, fold specs, having specs)`` for an ID-space
        aggregation -- the spec layout both the row-at-a-time fold and
        the batched fold consume, so their group/fold/HAVING semantics
        cannot diverge."""
        group_vars, items = plan
        group_columns = [col_of.get(variable) for variable in group_vars]
        agg_specs = []  # (item index, aggregate, value column or None)
        for index, (kind, payload, _name) in enumerate(items):
            if kind == "agg":
                column = (
                    col_of.get(payload.expression.variable)
                    if payload.expression is not None
                    else None
                )
                agg_specs.append((index, payload, column))
        # Pushed-down HAVING conjuncts: extra folds on negative slots,
        # gating groups at result time instead of falling back to the
        # materialized member-list path.
        having = (
            query.having_aggregate_conjuncts() if query.having is not None else None
        )
        having_specs = []  # (slot, aggregate, value column, op, constant)
        for position, (aggregate, op, constant) in enumerate(having or ()):
            column = (
                col_of.get(aggregate.expression.variable)
                if aggregate.expression is not None
                else None
            )
            having_specs.append((-(position + 1), aggregate, column, op, constant))
        fold_specs = agg_specs + [
            (slot, aggregate, column)
            for slot, aggregate, column, _op, _constant in having_specs
        ]
        return group_columns, fold_specs, having_specs

    def _aggregate_groups_rows(self, items, groups, col_of, having_specs):
        """Project folded groups into result rows (shared assembly tail):
        HAVING gates on the negative-slot folds, ``var`` items decode the
        group's first member row, ``agg`` items read their fold."""
        decode = self.graph.decode_id
        names = [name for _, _, name in items]
        out_rows: List[Row] = []
        having_pruned = 0
        for first_row, folds in groups.values():
            if having_specs and not all(
                self._having_fold_passes(folds[slot].result(), op, constant)
                for slot, _aggregate, _column, op, constant in having_specs
            ):
                having_pruned += 1
                continue
            projected: Row = {}
            for index, (kind, payload, name) in enumerate(items):
                if kind == "var":
                    column = col_of.get(payload)
                    if column is None or first_row is None:
                        projected[name] = None
                        continue
                    value = first_row[column]
                    if value is _UNBOUND:
                        projected[name] = None
                    else:
                        projected[name] = decode(value) if type(value) is int else value
                    continue
                projected[name] = folds[index].result()
            out_rows.append(projected)
        return names, out_rows, having_pruned

    # -- the columnar batch pipeline (strategy="batch") ------------------------

    def _run_select_batch(self, query: SelectQuery) -> Optional[SelectResult]:
        """Vectorized SELECT over column batches; None when unsupported.

        Covers the simple shape (plain triple patterns + one-variable
        term-test filters, bare-variable projections, bare GROUP BY /
        aggregates with pushable HAVING, DISTINCT, OFFSET/LIMIT and
        ``ORDER BY ... LIMIT k``) -- the shape whose rows are guaranteed
        pure ID tuples, so operators can pass ``batch_size``-row column
        vectors instead of per-row tuples: batched index scans, a
        vectorized hash-probe, columnar FILTER via selection vectors,
        then a batched select / top-k / aggregate sink.  Control flow
        stays volcano *between* batches, so LIMIT-bounded sinks stop
        pulling early.  Returns None for every other shape; the caller
        falls through to the hash delegation ladder.
        """
        if query.having is not None and (
            not query.has_aggregates()
            or query.having_aggregate_conjuncts() is None
        ):
            return None
        shape = self._simple_where_shape(query)
        if shape is None:
            return None
        patterns, simple_filters = shape

        plan = None
        if query.has_aggregates():
            plan = query.aggregate_plan()
            if plan is None:
                return None
        elif not query.select_all:
            for projection in query.projections:
                if projection.alias is not None or not isinstance(
                    projection.expression, VariableExpression
                ):
                    return None

        order_vars = None
        if query.order_by and plan is None:
            order_vars = query.order_variables()
            if order_vars is None:
                return None
            if query.limit is None:
                # No heap bound to exploit: the ID-space sorter
                # (_try_order_fast, via the delegation ladder) owns
                # un-LIMITed ORDER BY.
                return None

        compiled = self._compile_patterns(patterns)
        if any(not ep.variables for ep in compiled):
            # A fully-ground pattern is an existence gate, not a column
            # source; the row pipelines handle it.
            return None

        if any(ep.impossible for ep in compiled):
            batches: Iterator[List] = iter(())
            col_of: Dict[Variable, int] = {}
        else:
            limit_hint = self._batch_limit_hint(query, compiled, simple_filters, plan)
            batches, col_of = self._batch_join(compiled, limit_hint)
            filter_specs = []
            for test, variable in simple_filters:
                column = col_of.get(variable)
                if column is None:
                    # Filter over an unbound variable drops every row
                    # (the general pipeline raises-and-rejects per row).
                    batches = iter(())
                    filter_specs = []
                    break
                filter_specs.append((test, column, {}))
            if filter_specs:
                batches = self._filter_batches(batches, filter_specs)

        if plan is not None:
            return self._batch_aggregate(query, plan, batches, col_of)
        if order_vars is not None:
            return self._batch_topk(query, order_vars, batches, col_of)
        return self._batch_select(query, batches, col_of)

    @staticmethod
    def _batch_limit_hint(query, compiled, simple_filters, plan) -> Optional[int]:
        """Per-shard row bound for the bounded lazy fan-out.

        Only a LIMIT-bounded single-pattern scan with nothing between
        the scan and the slice (no filter, DISTINCT, ORDER BY or
        aggregation, and no repeated-variable row drops) can truncate
        each shard's run to its first ``offset+limit`` rows: any global
        top-``k`` of the sorted-run merge lies within the first ``k``
        of every per-shard run, so results are unchanged -- only the
        rows shipped (and charged) shrink.
        """
        if (
            plan is not None
            or query.limit is None
            or query.order_by
            or query.distinct
            or simple_filters
            or len(compiled) != 1
        ):
            return None
        ep = compiled[0]
        if any(len(ep.var_positions[v]) > 1 for v in ep.variables):
            return None
        hint = (query.offset or 0) + query.limit
        if query.select_all:
            # SELECT * derives its header from solution existence: keep
            # at least one witness row even for LIMIT 0.
            hint = max(hint, 1)
        return hint

    def _batch_join(
        self, encoded: List[_EncodedPattern], limit_hint: Optional[int] = None
    ) -> Tuple[Iterator[List], Dict[Variable, int]]:
        """``(column-batch iterator, col_of)``: the vectorized BGP join.

        Join order replays ``_bgp_id_rows``' greedy selectivity rule
        exactly (the bound-variable discount never depends on the
        intermediate cardinality), so the batch pipeline scans and
        probes the same patterns in the same order as the eager hash
        join.  The first pattern streams as column batches; every later
        pattern is a vectorized hash-probe (shared variables; probe
        table built once) or a cartesian block product (none shared).
        """
        col_of: Dict[Variable, int] = {}
        stages = []
        remaining = list(encoded)
        while remaining:
            chosen = min(
                remaining,
                key=lambda ep: (
                    ep.est / (16.0 ** sum(1 for v in ep.variables if v in col_of)),
                    ep.index,
                ),
            )
            remaining.remove(chosen)
            shared = [v for v in chosen.variables if v in col_of]
            new_vars = [v for v in chosen.variables if v not in col_of]
            stages.append((chosen, shared, new_vars))
            for variable in new_vars:
                col_of[variable] = len(col_of)
        batches = self._scan_batches(stages[0][0], limit_hint)
        for ep, shared, new_vars in stages[1:]:
            if shared:
                batches = self._probe_batches(batches, ep, shared, new_vars, col_of)
            else:
                batches = self._cartesian_batches(batches, ep)
        return batches, col_of

    def _scan_batches(
        self, ep: _EncodedPattern, limit_hint: Optional[int] = None
    ) -> Iterator[List]:
        """Stream *ep*'s matches as per-variable ID column batches.

        On a sharded graph a subject-unbound scan consumes the merged
        column batches straight off the per-shard sorted runs (zero-copy
        on one shard: the batches are slices of the shard's cached run);
        everything else chunks the routed row iterator and transposes.
        """
        s, p, o = (v if type(v) is int else None for v in ep.spec)
        positions = [ep.var_positions[v] for v in ep.variables]
        simple = all(len(position) == 1 for position in positions)
        batch_size = self.batch_size
        if self._sharded is not None and s is None:
            from .parallel_exec import parallel_scan_batches

            triple_cols = parallel_scan_batches(
                self._sharded,
                p,
                o,
                batch_size,
                stats=self.exec_stats,
                pool=self._scan_pool,
                obs=self.obs,
                limit_hint=limit_hint if simple else None,
            )
            for tcols in triple_cols:
                cols = _project_triple_columns(tcols, positions, simple)
                if cols is not None:
                    yield cols
            return
        triples = iter(self.graph.triples_ids(s, p, o))
        if limit_hint is not None and simple:
            triples = _islice(triples, limit_hint)
        while True:
            block = list(_islice(triples, batch_size))
            if not block:
                return
            cols = _project_triple_columns(tuple(zip(*block)), positions, simple)
            if cols is not None:
                yield cols

    def _probe_batches(
        self,
        batches: Iterator[List],
        ep: _EncodedPattern,
        shared: List[Variable],
        new_vars: List[Variable],
        col_of: Dict[Variable, int],
    ) -> Iterator[List]:
        """Vectorized hash-probe: build the table once, probe a column at
        a time.

        Match order is row-major exactly like the eager hash join (each
        input row in batch order, its bucket's entries in build order),
        so batch row production order equals the eager pipeline's.  A
        batch that matches nothing yields nothing -- downstream
        operators never see empty batches.
        """
        shared_columns = [col_of[v] for v in shared]
        width_new = len(new_vars)

        def stage():
            table = self._build_probe_table(ep, shared, new_vars)
            # Columnar bucket table: key -> (match count, per-new-variable
            # value columns), transposed once per key rather than once
            # per probe.  The count rides along explicitly because a
            # zero-new-variable bucket transposes to an empty tuple.
            if new_vars:
                columnar = {
                    key: (len(bucket), tuple(zip(*bucket)))
                    for key, bucket in table.items()
                }
            else:
                columnar = {key: (len(bucket), ()) for key, bucket in table.items()}
            get = columnar.get
            for cols in batches:
                n = len(cols[0])
                if len(shared_columns) == 1:
                    keys = cols[shared_columns[0]]
                else:
                    keys = zip(*(cols[c] for c in shared_columns))
                buckets = list(map(get, keys))
                selection = []
                counts = []
                keep = selection.append
                count = counts.append
                for i, bucket in enumerate(buckets):
                    if bucket is not None:
                        keep(i)
                        count(bucket[0])
                if not selection:
                    continue
                if len(selection) == n and sum(counts) == n:
                    # 1:1 join: every row matched exactly once; the
                    # existing columns pass through untouched.
                    out = list(cols)
                else:
                    picked = (
                        cols
                        if len(selection) == n
                        else [[column[i] for i in selection] for column in cols]
                    )
                    out = [
                        list(_chain.from_iterable(map(_repeat, column, counts)))
                        for column in picked
                    ]
                for j in range(width_new):
                    out.append(
                        list(
                            _chain.from_iterable(
                                buckets[i][1][j] for i in selection
                            )
                        )
                    )
                yield out

        return stage()

    def _cartesian_batches(
        self, batches: Iterator[List], ep: _EncodedPattern
    ) -> Iterator[List]:
        """Block cartesian product with a no-shared-variable pattern:
        scan once, then per batch repeat each input row over the scan
        tile (row-major, matching the eager pipeline's order)."""

        def stage():
            scan = list(self._scan_pattern(ep))
            if not scan:
                return
            k = len(scan)
            tile = [list(column) for column in zip(*scan)]
            for cols in batches:
                n = len(cols[0])
                out = [
                    list(_chain.from_iterable(map(_repeat, column, _repeat(k, n))))
                    for column in cols
                ]
                for column in tile:
                    out.append(column * n)
                yield out

        return stage()

    def _filter_batches(self, batches: Iterator[List], filter_specs) -> Iterator[List]:
        """Columnar FILTER: memoized term-kind tests build a selection
        vector per batch; the survivors compact into fresh columns.  A
        batch that loses every row yields nothing."""
        decode = self.graph.decode_id

        def stage():
            for cols in batches:
                n = len(cols[0])
                selection = None  # None = every row survives so far
                for test, column, memo in filter_specs:
                    values = cols[column]
                    lookup = memo.get
                    kept = []
                    keep = kept.append
                    for i in range(n) if selection is None else selection:
                        value = values[i]
                        verdict = lookup(value)
                        if verdict is None:
                            verdict = memo[value] = test(decode(value))
                        if verdict:
                            keep(i)
                    selection = kept
                    if not selection:
                        break
                if selection is None or len(selection) == n:
                    yield cols
                elif selection:
                    yield [[column[i] for i in selection] for column in cols]

        return stage()

    def _batch_select(
        self, query: SelectQuery, batches: Iterator[List], col_of: Dict[Variable, int]
    ) -> SelectResult:
        """Batched projection / DISTINCT / OFFSET-LIMIT sink.

        LIMIT pushdown across batches: stop pulling once ``offset +
        limit`` surviving (post-DISTINCT) rows are buffered.  ``SELECT
        *`` still needs one witness row for its header rule, so the cap
        never stops the pull before the first non-empty batch.
        """
        offset = query.offset or 0
        cap = None if query.limit is None else offset + query.limit
        distinct = query.distinct
        if distinct:
            if query.select_all:
                dedup_columns = [
                    column
                    for _name, column in sorted(
                        (variable.name, column) for variable, column in col_of.items()
                    )
                ]
            else:
                dedup_columns = [
                    col_of.get(p.expression.variable) for p in query.projections
                ]
            seen = set()
        if cap == 0 and not query.select_all:
            batches = iter(())  # the header is known without a witness
        kept: List[Tuple] = []
        input_rows = 0
        n_batches = 0
        for cols in batches:
            n_batches += 1
            n = len(cols[0])
            input_rows += n
            if distinct:
                add = seen.add
                for row in zip(*cols):
                    key = tuple(
                        row[column] if column is not None else None
                        for column in dedup_columns
                    )
                    if key not in seen:
                        add(key)
                        kept.append(row)
            else:
                kept.extend(zip(*cols))
            if cap is not None and len(kept) >= cap:
                break
        page = kept[offset:] if cap is None else kept[offset:cap]
        names, columns = self._id_projection_layout(query, col_of, input_rows > 0)
        self.exec_stats.update(
            operator="batch-select",
            input_rows=input_rows,
            batches=n_batches,
            decoded_rows=len(page),
        )
        if distinct:
            self.exec_stats["distinct_keys"] = len(seen)
        if self.obs.detail:
            self._operator_event()
        return SelectResult(names, self._decode_id_rows(page, names, columns))

    def _batch_topk(
        self,
        query: SelectQuery,
        order_vars: List[Variable],
        batches: Iterator[List],
        col_of: Dict[Variable, int],
    ) -> SelectResult:
        """Batched ``ORDER BY ... LIMIT k``: per-batch sort-key columns
        (per-ID memo) feed the bounded heap; ties break on the global
        row sequence, so batch-edge ties keep exactly the rows the
        row-at-a-time heap keeps."""
        decode = self.graph.decode_id
        key_columns = [col_of.get(variable) for variable in order_vars]
        flags = tuple(condition.descending for condition in query.order_by)
        keep = (query.offset or 0) + query.limit
        unbound_key = (0, ())
        key_memo: Dict[int, Tuple] = {}
        stats = {"input_rows": 0, "batches": 0, "seq": 0}

        def entries() -> Iterator[_TopKEntry]:
            for cols in batches:
                stats["batches"] += 1
                n = len(cols[0])
                stats["input_rows"] += n
                lookup = key_memo.get
                batch_keys = []
                for column in key_columns:
                    if column is None:
                        batch_keys.append(None)
                        continue
                    keys = []
                    append = keys.append
                    for value in cols[column]:
                        key = lookup(value)
                        if key is None:
                            key = key_memo[value] = (1, decode(value).sort_key())
                        append(key)
                    batch_keys.append(keys)
                seq = stats["seq"]
                for i, row in enumerate(zip(*cols)):
                    yield _TopKEntry(
                        tuple(
                            unbound_key if keys is None else keys[i]
                            for keys in batch_keys
                        ),
                        flags,
                        seq + i,
                        row,
                    )
                stats["seq"] = seq + n

        distinct_keys = None
        if query.distinct:
            if query.select_all:
                dedup_columns = [
                    column
                    for _name, column in sorted(
                        (variable.name, column) for variable, column in col_of.items()
                    )
                ]
            else:
                dedup_columns = [
                    col_of.get(p.expression.variable) for p in query.projections
                ]
            champions = _champion_fold(
                entries(),
                lambda row: tuple(
                    row[column] if column is not None else None
                    for column in dedup_columns
                ),
            )
            distinct_keys = len(champions)
            kept_all = _topk_fold(iter(champions.values()), keep)
        else:
            kept_all = _topk_fold(entries(), keep)
        kept = kept_all[query.offset or 0 :]

        names, columns = self._id_projection_layout(
            query, col_of, stats["input_rows"] > 0
        )
        out_rows = self._decode_id_rows(
            (entry.payload for entry in kept), names, columns
        )
        self.exec_stats.update(
            operator="batch-topk",
            input_rows=stats["input_rows"],
            tracked_rows=len(kept_all),
            batches=stats["batches"],
        )
        if distinct_keys is not None:
            self.exec_stats["distinct_keys"] = distinct_keys
        if self.obs.detail:
            self._operator_event()
        return SelectResult(names, out_rows)

    def _batch_aggregate(
        self, query: SelectQuery, plan, batches: Iterator[List], col_of: Dict[Variable, int]
    ) -> SelectResult:
        """GROUP BY / aggregation over column batches, O(groups) state.

        Pure-COUNT grouping vectorizes through :class:`Counter` (one
        C-speed update per batch; Counter preserves first-seen insertion
        order, matching the dict-based fold's group order).  Everything
        else slices each batch's value columns per group and folds them
        through :meth:`_AggFold.fold_batch`, so results are identical to
        the row-at-a-time fold at any batch size.
        """
        group_vars, items = plan
        group_columns, fold_specs, having_specs = self._aggregate_fold_specs(
            query, plan, col_of
        )

        if (
            not having_specs
            and len(group_columns) == 1
            and group_columns[0] is not None
            and all(
                (kind == "var" and payload == group_vars[0])
                or (
                    kind == "agg"
                    and payload.function == "COUNT"
                    and not payload.distinct
                    and (
                        payload.expression is None
                        or col_of.get(payload.expression.variable) is not None
                    )
                )
                for kind, payload, _name in items
            )
        ):
            # COUNT over a column that is bound in every row equals the
            # group size (this shape never produces unbound values), so
            # the whole aggregation is one Counter over the key column.
            return self._batch_count_groups(query, items, group_columns[0], batches)

        decode = self.graph.decode_id
        groups: Dict = {}
        input_rows = 0
        n_batches = 0
        single_group = not group_vars
        for cols in batches:
            n_batches += 1
            n = len(cols[0])
            input_rows += n
            if single_group:
                buckets = {(): None}  # None selection = the whole batch
            else:
                if len(group_columns) == 1:
                    column = group_columns[0]
                    keys = cols[column] if column is not None else _repeat(None, n)
                else:
                    keys = zip(
                        *(
                            cols[column] if column is not None else _repeat(None, n)
                            for column in group_columns
                        )
                    )
                buckets = {}
                for i, key in enumerate(keys):
                    indices = buckets.get(key)
                    if indices is None:
                        buckets[key] = indices = []
                    indices.append(i)
            for key, indices in buckets.items():
                state = groups.get(key)
                if state is None:
                    first_index = 0 if indices is None else indices[0]
                    state = groups[key] = (
                        tuple(column[first_index] for column in cols),
                        {index: _AggFold(agg) for index, agg, _ in fold_specs},
                    )
                folds = state[1]
                whole = indices is None or len(indices) == n
                for index, aggregate, column in fold_specs:
                    fold = folds[index]
                    if aggregate.expression is None:  # COUNT(*)
                        if not aggregate.distinct:
                            fold.add_star_batch(n if whole else len(indices))
                        elif whole:
                            fold.add_star_batch(n, zip(*cols))
                        else:
                            fold.add_star_batch(
                                len(indices),
                                (
                                    tuple(column[i] for column in cols)
                                    for i in indices
                                ),
                            )
                        continue
                    if column is None:
                        continue
                    values = (
                        cols[column]
                        if whole
                        else [cols[column][i] for i in indices]
                    )
                    fold.fold_batch(values, decode)

        if single_group and not groups:
            # Implicit single group over an empty input still produces
            # one row (COUNT(*) = 0) per the spec.
            groups[()] = (None, {index: _AggFold(agg) for index, agg, _ in fold_specs})

        names, out_rows, having_pruned = self._aggregate_groups_rows(
            items, groups, col_of, having_specs
        )
        self.exec_stats.update(
            operator="batch-aggregate",
            input_rows=input_rows,
            tracked_rows=len(groups),
            batches=n_batches,
        )
        if having_specs:
            self.exec_stats["having_pruned"] = having_pruned
        if self.obs.detail:
            self._operator_event()
        return SelectResult(names, self._apply_modifiers(query, out_rows, names))

    def _batch_count_groups(
        self, query: SelectQuery, items, group_column: int, batches: Iterator[List]
    ) -> SelectResult:
        """The fully-vectorized aggregation: single-key pure-COUNT GROUP
        BY as one :class:`Counter` update per batch."""
        decode = self.graph.decode_id
        counter: Counter = Counter()
        input_rows = 0
        n_batches = 0
        for cols in batches:
            n_batches += 1
            n = len(cols[0])
            input_rows += n
            counter.update(cols[group_column])
        names = [name for _, _, name in items]
        out_rows: List[Row] = []
        for key, count in counter.items():
            projected: Row = {}
            for kind, _payload, name in items:
                projected[name] = decode(key) if kind == "var" else Literal(count)
            out_rows.append(projected)
        self.exec_stats.update(
            operator="batch-aggregate",
            input_rows=input_rows,
            tracked_rows=len(counter),
            batches=n_batches,
        )
        if self.obs.detail:
            self._operator_event()
        return SelectResult(names, self._apply_modifiers(query, out_rows, names))

    def _run_select_general(self, query: SelectQuery) -> SelectResult:
        solutions = list(self._evaluate_group(query.where, [{}]))

        if query.has_aggregates():
            rows, variables = self._aggregate(query, solutions)
            scopes: Optional[List[Solution]] = None  # rebuilt from the rows
        else:
            rows, variables = self._project(query, solutions)
            # ORDER BY may reference WHERE variables that were not projected
            # (ordering happens before projection in the spec), and also the
            # projection aliases -- merge both into the sort scope.
            scopes = []
            for row, solution in zip(rows, solutions):
                scope = dict(solution)
                for name, term in row.items():
                    if term is not None:
                        scope[Variable(name)] = term
                scopes.append(scope)

        rows = self._apply_modifiers(query, rows, variables, scopes=scopes)
        return SelectResult(variables, rows)

    def _project(
        self, query: SelectQuery, solutions: List[Solution]
    ) -> Tuple[List[Row], List[str]]:
        if query.select_all:
            names: List[str] = []
            seen = set()
            for solution in solutions:
                for variable in solution:
                    if variable.name not in seen:
                        seen.add(variable.name)
                        names.append(variable.name)
            names.sort()
            rows = [
                {name: solution.get(Variable(name)) for name in names}
                for solution in solutions
            ]
            return rows, names

        names = []
        for projection in query.projections:
            variable = projection.variable
            if variable is None:
                raise SparqlEvaluationError("projection without output variable")
            names.append(variable.name)

        rows = [self._project_row(query, names, solution) for solution in solutions]
        return rows, names

    def _project_row(
        self, query: SelectQuery, names: List[str], solution: Solution
    ) -> Row:
        row: Row = {}
        for projection, name in zip(query.projections, names):
            if isinstance(projection.expression, VariableExpression) and (
                projection.alias is None
            ):
                row[name] = solution.get(projection.expression.variable)
            else:
                try:
                    row[name] = evaluate_expression(
                        projection.expression, solution, self._evaluate_exists
                    )
                except ExpressionError:
                    row[name] = None
        return row

    # -- aggregation -----------------------------------------------------------

    def _aggregate(
        self, query: SelectQuery, solutions: List[Solution]
    ) -> Tuple[List[Row], List[str]]:
        groups: Dict[Tuple, List[Solution]] = {}
        if query.group_by:
            for solution in solutions:
                key = []
                for expression in query.group_by:
                    try:
                        key.append(
                            evaluate_expression(expression, solution, self._evaluate_exists)
                        )
                    except ExpressionError:
                        key.append(None)
                groups.setdefault(tuple(key), []).append(solution)
        else:
            # Implicit single group; aggregates over an empty pattern still
            # produce one row (COUNT(*) = 0) per the spec.
            groups[()] = solutions

        names: List[str] = []
        for projection in query.projections:
            variable = projection.variable
            if variable is None:
                raise SparqlEvaluationError(
                    "aggregate projections need an AS alias or bare variable"
                )
            names.append(variable.name)

        rows: List[Row] = []
        for key, members in groups.items():
            representative = members[0] if members else {}
            key_bindings: Solution = {}
            for expression, value in zip(query.group_by, key):
                if isinstance(expression, VariableExpression) and value is not None:
                    key_bindings[expression.variable] = value

            if query.having is not None:
                if not self._having_passes(query.having, members, key_bindings):
                    continue

            row: Row = {}
            for projection, name in zip(query.projections, names):
                row[name] = self._evaluate_projection_in_group(
                    projection.expression, members, representative, key_bindings
                )
            rows.append(row)
        return rows, names

    def _having_passes(
        self, expression: Expression, members: List[Solution], key_bindings: Solution
    ) -> bool:
        try:
            value = self._evaluate_projection_in_group(
                expression, members, members[0] if members else {}, key_bindings
            )
            return value is not None and effective_boolean_value(value)
        except ExpressionError:
            return False

    def _evaluate_projection_in_group(
        self,
        expression: Expression,
        members: List[Solution],
        representative: Solution,
        key_bindings: Solution,
    ) -> Optional[Term]:
        if isinstance(expression, Aggregate):
            return self._fold_aggregate(expression, members)
        if contains_aggregate(expression):
            # Rebuild the expression with aggregates replaced by their folds.
            substituted = self._substitute_aggregates(expression, members)
            try:
                return evaluate_expression(substituted, key_bindings, self._evaluate_exists)
            except ExpressionError:
                return None
        scope = dict(representative)
        scope.update(key_bindings)
        try:
            return evaluate_expression(expression, scope, self._evaluate_exists)
        except ExpressionError:
            return None

    def _substitute_aggregates(self, expression: Expression, members: List[Solution]):
        import copy

        from .nodes import TermExpression  # local to avoid confusion at top level

        if isinstance(expression, Aggregate):
            value = self._fold_aggregate(expression, members)
            if value is None:
                raise ExpressionError("aggregate over empty group")
            return TermExpression(value)
        clone = copy.copy(expression)  # never mutate the parsed AST
        for slot in expression.__slots__:
            value = getattr(expression, slot)
            if isinstance(value, Expression):
                setattr(clone, slot, self._substitute_aggregates(value, members))
            elif isinstance(value, list):
                setattr(
                    clone,
                    slot,
                    [
                        self._substitute_aggregates(v, members)
                        if isinstance(v, Expression)
                        else v
                        for v in value
                    ],
                )
        return clone

    def _fold_aggregate(self, aggregate: Aggregate, members: List[Solution]) -> Optional[Term]:
        values: List[Term] = []
        if aggregate.expression is None:  # COUNT(*)
            if aggregate.distinct:
                unique = {tuple(sorted((v.name, t) for v, t in m.items())) for m in members}
                return Literal(len(unique))
            return Literal(len(members))

        for member in members:
            try:
                values.append(
                    evaluate_expression(aggregate.expression, member, self._evaluate_exists)
                )
            except ExpressionError:
                continue

        if aggregate.distinct:
            seen = []
            for value in values:
                if value not in seen:
                    seen.append(value)
            values = seen
        return self._fold_values(aggregate, values)

    @staticmethod
    def _fold_values(aggregate: Aggregate, values: List[Term]) -> Optional[Term]:
        """Fold already-extracted (and deduplicated) values per the spec.

        Thin wrapper over :class:`_AggFold` (distinct handling disabled --
        callers dedupe before extraction), so the materialized path and
        the incremental paths share one fold.
        """
        fold = _AggFold(aggregate, distinct=False)
        for value in values:
            fold.add(value)
        return fold.result()

    # -- ordering / distinct -----------------------------------------------------

    def _apply_modifiers(
        self,
        query: SelectQuery,
        rows: List[Row],
        names: List[str],
        scopes: Optional[List[Solution]] = None,
    ) -> List[Row]:
        """The solution-modifier tail in spec order: ORDER BY, DISTINCT,
        OFFSET, LIMIT.

        ``scopes`` are the per-row sort scopes; when omitted they are
        rebuilt from the rows themselves (correct whenever the rows carry
        every variable ORDER BY may name, i.e. aggregate output).  Every
        pipeline ends in this one tail so the modifier order cannot
        diverge between paths.
        """
        if query.order_by:
            if scopes is None:
                scopes = [
                    {
                        Variable(name): term
                        for name, term in row.items()
                        if term is not None
                    }
                    for row in rows
                ]
            rows = self._order(query, rows, scopes)
        if query.distinct:
            rows = self._distinct(rows, names)
        if query.offset:
            rows = rows[query.offset :]
        if query.limit is not None:
            rows = rows[: query.limit]
        return rows

    def _order_key(self, condition, scope: Solution) -> Tuple:
        """One condition's sort key for one scope: ``(1, term key)`` or
        ``(0, ())`` when the key is unbound/errors (unbound sorts first).

        Shared by the materialized sort and the bounded top-k heap so the
        two orderings cannot diverge.
        """
        expression = condition.expression
        if isinstance(expression, VariableExpression):
            value = scope.get(expression.variable)
            return (1, value.sort_key()) if value is not None else (0, ())
        try:
            value = evaluate_expression(expression, scope, self._evaluate_exists)
            return (1, value.sort_key())
        except ExpressionError:
            return (0, ())

    def _order(
        self, query: SelectQuery, rows: List[Row], scopes: List[Solution]
    ) -> List[Row]:
        def sort_key(scope: Solution):
            return [
                self._order_key(condition, scope) for condition in query.order_by
            ]

        # Stable multi-key sort: sort by the last condition first; Python's
        # sort keeps equal elements in place even with reverse=True.
        decorated = [(sort_key(scope), row) for scope, row in zip(scopes, rows)]
        for position in range(len(query.order_by) - 1, -1, -1):
            reverse = query.order_by[position].descending
            decorated.sort(key=lambda item: item[0][position], reverse=reverse)
        return [row for _, row in decorated]

    @staticmethod
    def _distinct(rows: List[Row], variables: List[str]) -> List[Row]:
        seen = set()
        out: List[Row] = []
        for row in rows:
            key = tuple(row.get(name) for name in variables)
            if key not in seen:
                seen.add(key)
                out.append(row)
        return out


def evaluate(
    graph: Graph, query: Union[str, Query], strategy: str = "hash"
) -> Union[SelectResult, AskResult]:
    """Evaluate *query* (text or AST) against *graph*.

    ``strategy`` is ``"hash"`` (eager, default), ``"stream"`` (lazy
    volcano pipeline), ``"batch"`` (vectorized columnar pipeline) or
    ``"scan"`` (legacy oracle).
    """
    return QueryEngine(graph, strategy=strategy).run(query)
