"""Partition-parallel SPARQL operators over a :class:`ShardedTripleStore`.

Two physical operators fan out across shards, both dispatched through the
deterministic simulated worker pool (:func:`repro.core.parallel.run_parallel`)
with one worker per shard:

* :func:`parallel_scan_ids` -- a triple-pattern scan whose subject is
  unbound (so it spans shards).  Each shard task scans its local indexes
  and returns its matches as a run sorted by the ``(s, p, o)`` ID triple;
  the merged stream is the lazy ordered merge of those runs.
* :func:`parallel_probe_table` -- the build side of a BGP's hash join.
  Each shard task folds its sorted run straight into a shard-local probe
  table whose bucket entries carry the source triple as a merge rank;
  buckets merge rank-ordered across shards, so the final table is
  entry-for-entry identical to one built from the canonical merged scan.

Subjects partition disjointly and the merge key is the full ID triple, so
both operators produce **shard-count-invariant** output: any query runs
byte-identically (including row order) at shards=1 and shards=N.  That is
the merge determinism rule the conformance/property suites pin.

Simulated cost model: each shard task charges the pool timebase (the
store's private clock) a fixed dispatch overhead plus a per-scanned-row
cost -- the same order of magnitude as the endpoint latency model's
execution term.  The engine threads one :class:`ShardScanPool` through
all of a query's batches, so only the first batch pays the cold
spin-up dispatch; later batches reuse the warm workers at the reduced
:data:`SHARD_WARM_DISPATCH_MS`.  The pool then advances that clock by the batch makespan
only, and the makespan / sequential-sum pair is recorded both on the
store (``shard_stats``) and in the engine's per-query ``exec_stats``
(``shard_parallel_ms`` / ``shard_sequential_ms``), which is what the
endpoint latency model and the scaling benchmarks read.  Wall-clock time
on this single-CPU simulator is unchanged by design; the win is the
simulated makespan, exactly like the fleet-level pool.
"""

from __future__ import annotations

import heapq
from array import array
from itertools import islice
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "SHARD_DISPATCH_MS",
    "SHARD_WARM_DISPATCH_MS",
    "SHARD_ROW_MS",
    "ShardScanPool",
    "parallel_scan_ids",
    "parallel_scan_batches",
    "parallel_probe_table",
]

#: fixed simulated cost of handing one shard task to a *cold* pool worker
#: (the first batch of a query: workers spin up, per-shard cursors open)
SHARD_DISPATCH_MS = 0.05
#: dispatch cost on a *warm* worker -- later batches of the same query
#: reuse the worker set a :class:`ShardScanPool` tracks, paying only the
#: hand-off, not the spin-up
SHARD_WARM_DISPATCH_MS = 0.01
#: simulated cost per row a shard task scans (matches the scale of the
#: endpoint model's ``len(graph) * 0.0004`` execution term)
SHARD_ROW_MS = 0.0004


class ShardScanPool:
    """The warm worker set an engine reuses across its shard batches.

    PR 4 dispatched every shard-spanning scan as its own isolated pool
    batch, paying the full worker spin-up (:data:`SHARD_DISPATCH_MS` per
    task) each time; PR 5 threaded one pool through all of a *query's*
    batches.  The pool is now **per engine**, keyed on the store's shard
    layout (``layout_key``): back-to-back queries on one engine reuse
    the already-warm workers, so only the engine's first batch after a
    layout change (fresh engine, ``clear()``, shard re-partition) pays
    the cold spin-up -- every later batch, across queries, dispatches at
    :data:`SHARD_WARM_DISPATCH_MS`.

    Purely a simulated-cost concern: task *results* are identical with
    or without a pool (the underlying deterministic executor is
    unchanged), so shard-count invariance and conformance are untouched.
    ``warm_batches`` is cumulative pool accounting; the engine's
    per-query ``exec_stats`` counts each query's own warm batches.
    """

    __slots__ = ("store", "batches", "warm_batches", "layout_key")

    def __init__(self, store, layout_key=None):
        self.store = store
        self.batches = 0
        self.warm_batches = 0
        self.layout_key = layout_key

    @property
    def dispatch_ms(self) -> float:
        return SHARD_DISPATCH_MS if self.batches == 0 else SHARD_WARM_DISPATCH_MS

    def batch_done(self) -> None:
        self.batches += 1
        if self.batches > 1:
            self.warm_batches += 1


def _record(
    store,
    stats: Optional[Dict],
    parallel_ms: float,
    sequential_ms: float,
    rows: int,
    pool: Optional[ShardScanPool] = None,
    obs=None,
) -> None:
    """Accumulate one pool batch into the store's and the query's stats."""
    totals = store.shard_stats
    totals["batches"] += 1
    totals["parallel_ms"] += parallel_ms
    totals["sequential_ms"] += sequential_ms
    totals["rows"] += rows
    # Whether *this* batch ran warm, judged before the pool counts it.
    # The pool is per engine now, so the cumulative ``pool.warm_batches``
    # spans queries; exec_stats wants only this query's share.
    was_warm = pool is not None and pool.batches > 0
    if pool is not None:
        pool.batch_done()
    if stats is not None:
        stats["shard_batches"] = stats.get("shard_batches", 0) + 1
        stats["shard_parallel_ms"] = stats.get("shard_parallel_ms", 0.0) + parallel_ms
        stats["shard_sequential_ms"] = (
            stats.get("shard_sequential_ms", 0.0) + sequential_ms
        )
        stats["shard_rows"] = stats.get("shard_rows", 0) + rows
        if pool is not None:
            stats["shard_warm_batches"] = stats.get("shard_warm_batches", 0) + (
                1 if was_warm else 0
            )
    if obs is not None and obs.detail:
        obs.event(
            "shard.fanout",
            shards=len(store.shards),
            parallel_ms=round(parallel_ms, 6),
            sequential_ms=round(sequential_ms, 6),
            rows_out=rows,
            warm=was_warm,
        )


def _run_shard_batch(store, tasks) -> List:
    """Dispatch ``(index, thunk)`` tasks through the deterministic pool.

    One worker per shard; shard work cannot legitimately fail, so any
    captured exception is re-raised (a swallowed shard would silently
    drop rows).  Returns task values in input (= shard) order plus the
    batch makespan and sequential sum.
    """
    # Lazy import: repro.core pulls in the endpoint/application layers,
    # which import this package's evaluator at module load.
    from ..core.parallel import run_parallel

    outcomes, makespan = run_parallel(store.clock, tasks, parallelism=len(tasks))
    values = []
    for outcome in outcomes:
        if outcome.error is not None:
            raise outcome.error
        values.append(outcome.value)
    sequential = sum(outcome.elapsed_ms for outcome in outcomes)
    return values, makespan, sequential


def parallel_scan_ids(
    store,
    s: Optional[int],
    p: Optional[int],
    o: Optional[int],
    stats: Optional[Dict] = None,
    pool: Optional[ShardScanPool] = None,
    obs=None,
) -> Iterator[Tuple[int, int, int]]:
    """Scan all shards for the ID pattern; merge runs in ``(s, p, o)`` order.

    Each shard materializes its (sorted) run -- the simulated analogue of
    a partition returning a sorted result block -- and the merge itself
    is lazy, so bounded consumers above (LIMIT, top-k, ASK) keep their
    operator-level behaviour.  A *pool* (one per query execution) makes
    every batch after the first run on warm workers at the reduced
    dispatch cost.
    """
    clock = store.clock
    dispatch_ms = pool.dispatch_ms if pool is not None else SHARD_DISPATCH_MS
    tasks = []
    for index, shard in enumerate(store.shards):
        def thunk(shard=shard):
            run = sorted(shard.triples_ids(s, p, o))
            clock.advance(dispatch_ms + len(run) * SHARD_ROW_MS)
            return run
        tasks.append((index, thunk))
    runs, makespan, sequential = _run_shard_batch(store, tasks)
    _record(
        store, stats, makespan, sequential, sum(len(run) for run in runs), pool, obs
    )
    if len(runs) == 1:
        return iter(runs[0])
    return heapq.merge(*runs)


def _shard_run_columns(shard, p: Optional[int], o: Optional[int]):
    """One shard's sorted ``(None, p, o)`` matches as ``(s, p, o)`` columns.

    The full-scan pattern serves the shard's cached columnar run directly
    (zero-copy -- for snapshot-loaded shards these are the mmap-decoded
    arrays themselves), which is what makes snapshot load -> batch scan
    O(1)-copy.  Constrained patterns still materialize the matching
    subset, sorted, as fresh ``array('q')`` columns.
    """
    if p is None and o is None:
        return shard.columns()
    rows = sorted(shard.triples_ids(None, p, o))
    if not rows:
        empty = array("q")
        return (empty, empty, empty)
    s_col, p_col, o_col = zip(*rows)
    return (array("q", s_col), array("q", p_col), array("q", o_col))


def parallel_scan_batches(
    store,
    p: Optional[int],
    o: Optional[int],
    batch_size: int,
    stats: Optional[Dict] = None,
    pool: Optional[ShardScanPool] = None,
    obs=None,
    limit_hint: Optional[int] = None,
) -> Iterator[Tuple[Sequence[int], Sequence[int], Sequence[int]]]:
    """Batched spanning scan: yield ``(s_col, p_col, o_col)`` column chunks.

    The columnar analogue of :func:`parallel_scan_ids` for a
    subject-unbound pattern: every chunk holds up to ``batch_size`` rows
    and the concatenation of all chunks is exactly the canonical merged
    ``(s, p, o)``-ordered run, so shard-count invariance carries over
    row-for-row.  On a single shard the chunks are plain slices of the
    shard's cached run (no per-row Python objects at all); across shards
    the runs merge lazily and re-transpose per chunk.

    ``limit_hint`` is the bounded lazy fan-out for LIMIT-style consumers:
    each shard truncates its run to the first ``limit_hint`` rows before
    shipping (any global top-``k`` of the merge lies within the first
    ``k`` of every per-shard run), and is charged only for the rows it
    ships.  Results are unchanged -- only the simulated cost and shipped
    volume shrink.
    """
    clock = store.clock
    dispatch_ms = pool.dispatch_ms if pool is not None else SHARD_DISPATCH_MS
    tasks = []
    for index, shard in enumerate(store.shards):
        def thunk(shard=shard):
            cols = _shard_run_columns(shard, p, o)
            if limit_hint is not None and limit_hint < len(cols[0]):
                cols = tuple(col[:limit_hint] for col in cols)
            clock.advance(dispatch_ms + len(cols[0]) * SHARD_ROW_MS)
            return cols
        tasks.append((index, thunk))
    runs, makespan, sequential = _run_shard_batch(store, tasks)
    _record(
        store, stats, makespan, sequential, sum(len(r[0]) for r in runs), pool, obs
    )
    runs = [run for run in runs if run[0]]
    if not runs:
        return iter(())
    if len(runs) == 1:
        s_col, p_col, o_col = runs[0]

        def slices():
            for start in range(0, len(s_col), batch_size):
                stop = start + batch_size
                yield (s_col[start:stop], p_col[start:stop], o_col[start:stop])

        return slices()
    merged = heapq.merge(*(zip(*run) for run in runs))

    def chunks():
        while True:
            block = list(islice(merged, batch_size))
            if not block:
                return
            s_chunk, p_chunk, o_chunk = zip(*block)
            yield (
                array("q", s_chunk),
                array("q", p_chunk),
                array("q", o_chunk),
            )

    return chunks()


def parallel_probe_table(
    store,
    s: Optional[int],
    p: Optional[int],
    o: Optional[int],
    positions: Sequence[Sequence[int]],
    key_positions: Sequence[int],
    new_positions: Sequence[int],
    stats: Optional[Dict] = None,
    pool: Optional[ShardScanPool] = None,
    obs=None,
) -> Dict:
    """Build a hash-join probe table shard-by-shard and merge the buckets.

    ``positions`` maps each pattern variable to its triple positions
    (repeated variables must agree, same rule as the sequential scan);
    ``key_positions``/``new_positions`` index into the resulting scan row.
    The table shape matches ``QueryEngine._build_probe_table``: a single
    shared variable keys on the bare value, entries are tuples of the new
    variables' values.  Bucket entries merge across shards on their
    source ``(s, p, o)`` rank, reproducing canonical-scan build order at
    any shard count.
    """
    clock = store.clock
    dispatch_ms = pool.dispatch_ms if pool is not None else SHARD_DISPATCH_MS
    single_key = len(key_positions) == 1
    key_position = key_positions[0] if single_key else None

    tasks = []
    for index, shard in enumerate(store.shards):
        def thunk(shard=shard):
            table: Dict = {}
            setdefault = table.setdefault
            run = sorted(shard.triples_ids(s, p, o))
            for triple in run:
                srow = []
                for var_positions in positions:
                    value = triple[var_positions[0]]
                    if len(var_positions) > 1 and any(
                        triple[extra] != value for extra in var_positions[1:]
                    ):
                        srow = None
                        break
                    srow.append(value)
                if srow is None:
                    continue
                key = (
                    srow[key_position]
                    if single_key
                    else tuple(srow[i] for i in key_positions)
                )
                setdefault(key, []).append(
                    (triple, tuple(srow[i] for i in new_positions))
                )
            clock.advance(dispatch_ms + len(run) * SHARD_ROW_MS)
            return table
        tasks.append((index, thunk))

    tables, makespan, sequential = _run_shard_batch(store, tasks)
    rows = sum(len(bucket) for table in tables for bucket in table.values())
    _record(store, stats, makespan, sequential, rows, pool, obs)

    if len(tables) == 1:
        return {
            key: [entry for _rank, entry in bucket]
            for key, bucket in tables[0].items()
        }
    collected: Dict = {}
    for table in tables:
        for key, bucket in table.items():
            collected.setdefault(key, []).append(bucket)
    merged: Dict = {}
    for key, buckets in collected.items():
        if len(buckets) == 1:
            merged[key] = [entry for _rank, entry in buckets[0]]
        else:
            # Ranks are unique triples, so the merge never compares entries.
            merged[key] = [entry for _rank, entry in heapq.merge(*buckets)]
    return merged
