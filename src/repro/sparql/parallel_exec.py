"""Partition-parallel SPARQL operators over a :class:`ShardedTripleStore`.

Two physical operators fan out across shards, both dispatched through the
deterministic simulated worker pool (:func:`repro.core.parallel.run_parallel`)
with one worker per shard:

* :func:`parallel_scan_ids` -- a triple-pattern scan whose subject is
  unbound (so it spans shards).  Each shard task scans its local indexes
  and returns its matches as a run sorted by the ``(s, p, o)`` ID triple;
  the merged stream is the lazy ordered merge of those runs.
* :func:`parallel_probe_table` -- the build side of a BGP's hash join.
  Each shard task folds its sorted run straight into a shard-local probe
  table whose bucket entries carry the source triple as a merge rank;
  buckets merge rank-ordered across shards, so the final table is
  entry-for-entry identical to one built from the canonical merged scan.

Subjects partition disjointly and the merge key is the full ID triple, so
both operators produce **shard-count-invariant** output: any query runs
byte-identically (including row order) at shards=1 and shards=N.  That is
the merge determinism rule the conformance/property suites pin.

Simulated cost model: each shard task charges the pool timebase (the
store's private clock) a fixed dispatch overhead plus a per-scanned-row
cost -- the same order of magnitude as the endpoint latency model's
execution term.  The engine threads one :class:`ShardScanPool` through
all of a query's batches, so only the first batch pays the cold
spin-up dispatch; later batches reuse the warm workers at the reduced
:data:`SHARD_WARM_DISPATCH_MS`.  The pool then advances that clock by the batch makespan
only, and the makespan / sequential-sum pair is recorded both on the
store (``shard_stats``) and in the engine's per-query ``exec_stats``
(``shard_parallel_ms`` / ``shard_sequential_ms``), which is what the
endpoint latency model and the scaling benchmarks read.  Wall-clock time
on this single-CPU simulator is unchanged by design; the win is the
simulated makespan, exactly like the fleet-level pool.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "SHARD_DISPATCH_MS",
    "SHARD_WARM_DISPATCH_MS",
    "SHARD_ROW_MS",
    "ShardScanPool",
    "parallel_scan_ids",
    "parallel_probe_table",
]

#: fixed simulated cost of handing one shard task to a *cold* pool worker
#: (the first batch of a query: workers spin up, per-shard cursors open)
SHARD_DISPATCH_MS = 0.05
#: dispatch cost on a *warm* worker -- later batches of the same query
#: reuse the worker set a :class:`ShardScanPool` tracks, paying only the
#: hand-off, not the spin-up
SHARD_WARM_DISPATCH_MS = 0.01
#: simulated cost per row a shard task scans (matches the scale of the
#: endpoint model's ``len(graph) * 0.0004`` execution term)
SHARD_ROW_MS = 0.0004


class ShardScanPool:
    """The worker set one query reuses across its shard batches.

    PR 4 dispatched every shard-spanning scan as its own isolated pool
    batch, paying the full worker spin-up (:data:`SHARD_DISPATCH_MS` per
    task) each time -- a multi-pattern BGP runs one batch per spanning
    scan plus one per parallel hash-join build.  The engine now creates
    one ``ShardScanPool`` per query execution and threads it through
    every batch: the first batch is charged cold, subsequent batches run
    on the already-warm workers at :data:`SHARD_WARM_DISPATCH_MS`.

    Purely a simulated-cost concern: task *results* are identical with
    or without a pool (the underlying deterministic executor is
    unchanged), so shard-count invariance and conformance are untouched.
    ``warm_batches`` feeds the engine's ``exec_stats``.
    """

    __slots__ = ("store", "batches", "warm_batches")

    def __init__(self, store):
        self.store = store
        self.batches = 0
        self.warm_batches = 0

    @property
    def dispatch_ms(self) -> float:
        return SHARD_DISPATCH_MS if self.batches == 0 else SHARD_WARM_DISPATCH_MS

    def batch_done(self) -> None:
        self.batches += 1
        if self.batches > 1:
            self.warm_batches += 1


def _record(
    store,
    stats: Optional[Dict],
    parallel_ms: float,
    sequential_ms: float,
    rows: int,
    pool: Optional[ShardScanPool] = None,
    obs=None,
) -> None:
    """Accumulate one pool batch into the store's and the query's stats."""
    totals = store.shard_stats
    totals["batches"] += 1
    totals["parallel_ms"] += parallel_ms
    totals["sequential_ms"] += sequential_ms
    totals["rows"] += rows
    if pool is not None:
        pool.batch_done()
    if stats is not None:
        stats["shard_batches"] = stats.get("shard_batches", 0) + 1
        stats["shard_parallel_ms"] = stats.get("shard_parallel_ms", 0.0) + parallel_ms
        stats["shard_sequential_ms"] = (
            stats.get("shard_sequential_ms", 0.0) + sequential_ms
        )
        stats["shard_rows"] = stats.get("shard_rows", 0) + rows
        if pool is not None:
            stats["shard_warm_batches"] = pool.warm_batches
    if obs is not None and obs.detail:
        obs.event(
            "shard.fanout",
            shards=len(store.shards),
            parallel_ms=round(parallel_ms, 6),
            sequential_ms=round(sequential_ms, 6),
            rows_out=rows,
            warm=pool is not None and pool.warm_batches > 0,
        )


def _run_shard_batch(store, tasks) -> List:
    """Dispatch ``(index, thunk)`` tasks through the deterministic pool.

    One worker per shard; shard work cannot legitimately fail, so any
    captured exception is re-raised (a swallowed shard would silently
    drop rows).  Returns task values in input (= shard) order plus the
    batch makespan and sequential sum.
    """
    # Lazy import: repro.core pulls in the endpoint/application layers,
    # which import this package's evaluator at module load.
    from ..core.parallel import run_parallel

    outcomes, makespan = run_parallel(store.clock, tasks, parallelism=len(tasks))
    values = []
    for outcome in outcomes:
        if outcome.error is not None:
            raise outcome.error
        values.append(outcome.value)
    sequential = sum(outcome.elapsed_ms for outcome in outcomes)
    return values, makespan, sequential


def parallel_scan_ids(
    store,
    s: Optional[int],
    p: Optional[int],
    o: Optional[int],
    stats: Optional[Dict] = None,
    pool: Optional[ShardScanPool] = None,
    obs=None,
) -> Iterator[Tuple[int, int, int]]:
    """Scan all shards for the ID pattern; merge runs in ``(s, p, o)`` order.

    Each shard materializes its (sorted) run -- the simulated analogue of
    a partition returning a sorted result block -- and the merge itself
    is lazy, so bounded consumers above (LIMIT, top-k, ASK) keep their
    operator-level behaviour.  A *pool* (one per query execution) makes
    every batch after the first run on warm workers at the reduced
    dispatch cost.
    """
    clock = store.clock
    dispatch_ms = pool.dispatch_ms if pool is not None else SHARD_DISPATCH_MS
    tasks = []
    for index, shard in enumerate(store.shards):
        def thunk(shard=shard):
            run = sorted(shard.triples_ids(s, p, o))
            clock.advance(dispatch_ms + len(run) * SHARD_ROW_MS)
            return run
        tasks.append((index, thunk))
    runs, makespan, sequential = _run_shard_batch(store, tasks)
    _record(
        store, stats, makespan, sequential, sum(len(run) for run in runs), pool, obs
    )
    if len(runs) == 1:
        return iter(runs[0])
    return heapq.merge(*runs)


def parallel_probe_table(
    store,
    s: Optional[int],
    p: Optional[int],
    o: Optional[int],
    positions: Sequence[Sequence[int]],
    key_positions: Sequence[int],
    new_positions: Sequence[int],
    stats: Optional[Dict] = None,
    pool: Optional[ShardScanPool] = None,
    obs=None,
) -> Dict:
    """Build a hash-join probe table shard-by-shard and merge the buckets.

    ``positions`` maps each pattern variable to its triple positions
    (repeated variables must agree, same rule as the sequential scan);
    ``key_positions``/``new_positions`` index into the resulting scan row.
    The table shape matches ``QueryEngine._build_probe_table``: a single
    shared variable keys on the bare value, entries are tuples of the new
    variables' values.  Bucket entries merge across shards on their
    source ``(s, p, o)`` rank, reproducing canonical-scan build order at
    any shard count.
    """
    clock = store.clock
    dispatch_ms = pool.dispatch_ms if pool is not None else SHARD_DISPATCH_MS
    single_key = len(key_positions) == 1
    key_position = key_positions[0] if single_key else None

    tasks = []
    for index, shard in enumerate(store.shards):
        def thunk(shard=shard):
            table: Dict = {}
            setdefault = table.setdefault
            run = sorted(shard.triples_ids(s, p, o))
            for triple in run:
                srow = []
                for var_positions in positions:
                    value = triple[var_positions[0]]
                    if len(var_positions) > 1 and any(
                        triple[extra] != value for extra in var_positions[1:]
                    ):
                        srow = None
                        break
                    srow.append(value)
                if srow is None:
                    continue
                key = (
                    srow[key_position]
                    if single_key
                    else tuple(srow[i] for i in key_positions)
                )
                setdefault(key, []).append(
                    (triple, tuple(srow[i] for i in new_positions))
                )
            clock.advance(dispatch_ms + len(run) * SHARD_ROW_MS)
            return table
        tasks.append((index, thunk))

    tables, makespan, sequential = _run_shard_batch(store, tasks)
    rows = sum(len(bucket) for table in tables for bucket in table.values())
    _record(store, stats, makespan, sequential, rows, pool, obs)

    if len(tables) == 1:
        return {
            key: [entry for _rank, entry in bucket]
            for key, bucket in tables[0].items()
        }
    collected: Dict = {}
    for table in tables:
        for key, bucket in table.items():
            collected.setdefault(key, []).append(bucket)
    merged: Dict = {}
    for key, buckets in collected.items():
        if len(buckets) == 1:
            merged[key] = [entry for _rank, entry in buckets[0]]
        else:
            # Ranks are unique triples, so the merge never compares entries.
            merged[key] = [entry for _rank, entry in heapq.merge(*buckets)]
    return merged
