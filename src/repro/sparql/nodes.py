"""AST node classes for the SPARQL subset.

The parser builds these; the evaluator consumes them.  Expression nodes form
their own small hierarchy under :class:`Expression`.  All nodes are plain
data holders with ``repr`` support for debugging and structural equality to
make parser tests pleasant.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..rdf.terms import IRI, Literal, Term, Variable

__all__ = [
    "TriplePattern",
    "GroupPattern",
    "OptionalPattern",
    "UnionPattern",
    "FilterPattern",
    "ValuesPattern",
    "Expression",
    "TermExpression",
    "VariableExpression",
    "AndExpression",
    "OrExpression",
    "NotExpression",
    "CompareExpression",
    "ArithmeticExpression",
    "FunctionCall",
    "InExpression",
    "ExistsExpression",
    "Aggregate",
    "Projection",
    "OrderCondition",
    "SelectQuery",
    "AskQuery",
    "Query",
]


class _Node:
    """Base: structural equality + readable repr over ``__slots__``."""

    __slots__ = ()

    def _fields(self) -> Tuple:
        return tuple(getattr(self, name) for name in self.__slots__)

    def __eq__(self, other) -> bool:
        return type(other) is type(self) and other._fields() == self._fields()

    def __hash__(self) -> int:
        return hash((type(self),) + self._fields())

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={getattr(self, n)!r}" for n in self.__slots__)
        return f"{type(self).__name__}({inner})"


# --------------------------------------------------------------------------
# Graph patterns
# --------------------------------------------------------------------------

PatternTerm = Union[Term, Variable]


class TriplePattern(_Node):
    """A triple pattern; any position may hold a :class:`Variable`."""

    __slots__ = ("subject", "predicate", "object")

    def __init__(self, subject: PatternTerm, predicate: PatternTerm, object: PatternTerm):
        self.subject = subject
        self.predicate = predicate
        self.object = object

    def variables(self) -> List[Variable]:
        return [t for t in (self.subject, self.predicate, self.object) if isinstance(t, Variable)]

    def bound_positions(self) -> int:
        """How many positions are ground terms — a crude selectivity proxy."""
        return sum(
            0 if isinstance(t, Variable) else 1
            for t in (self.subject, self.predicate, self.object)
        )


class GroupPattern(_Node):
    """``{ ... }`` — an ordered list of pattern elements."""

    __slots__ = ("elements",)

    def __init__(self, elements: Sequence):
        self.elements = list(elements)

    def _fields(self):
        return (tuple(self.elements),)


class OptionalPattern(_Node):
    """``OPTIONAL { ... }``"""

    __slots__ = ("group",)

    def __init__(self, group: GroupPattern):
        self.group = group


class UnionPattern(_Node):
    """``{ A } UNION { B } UNION ...`` — two or more alternatives."""

    __slots__ = ("alternatives",)

    def __init__(self, alternatives: Sequence[GroupPattern]):
        self.alternatives = list(alternatives)

    def _fields(self):
        return (tuple(self.alternatives),)


class FilterPattern(_Node):
    """``FILTER ( expr )``"""

    __slots__ = ("expression",)

    def __init__(self, expression: "Expression"):
        self.expression = expression


class ValuesPattern(_Node):
    """``VALUES ?v { ... }`` / ``VALUES (?a ?b) { (..) (..) }`` inline data."""

    __slots__ = ("variables", "rows")

    def __init__(self, variables: Sequence[Variable], rows: Sequence[Tuple[Optional[Term], ...]]):
        self.variables = list(variables)
        self.rows = [tuple(row) for row in rows]

    def _fields(self):
        return (tuple(self.variables), tuple(self.rows))


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


class Expression(_Node):
    """Marker base class for filter / projection expressions."""

    __slots__ = ()


class TermExpression(Expression):
    """A constant RDF term inside an expression."""

    __slots__ = ("term",)

    def __init__(self, term: Term):
        self.term = term


class VariableExpression(Expression):
    __slots__ = ("variable",)

    def __init__(self, variable: Variable):
        self.variable = variable


class AndExpression(Expression):
    __slots__ = ("left", "right")

    def __init__(self, left: Expression, right: Expression):
        self.left = left
        self.right = right


class OrExpression(Expression):
    __slots__ = ("left", "right")

    def __init__(self, left: Expression, right: Expression):
        self.left = left
        self.right = right


class NotExpression(Expression):
    __slots__ = ("operand",)

    def __init__(self, operand: Expression):
        self.operand = operand


class CompareExpression(Expression):
    """``=  !=  <  <=  >  >=`` on RDF terms with numeric promotion."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in ("=", "!=", "<", "<=", ">", ">="):
            raise ValueError(f"bad comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right


class ArithmeticExpression(Expression):
    """``+ - * /`` on numeric literals."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in ("+", "-", "*", "/"):
            raise ValueError(f"bad arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right


class FunctionCall(Expression):
    """A builtin call: REGEX, STR, LANG, DATATYPE, BOUND, CONTAINS, ..."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[Expression]):
        self.name = name.upper()
        self.args = list(args)

    def _fields(self):
        return (self.name, tuple(self.args))


class InExpression(Expression):
    """``expr IN (e1, e2, ...)`` / ``expr NOT IN (...)``"""

    __slots__ = ("operand", "choices", "negated")

    def __init__(self, operand: Expression, choices: Sequence[Expression], negated: bool):
        self.operand = operand
        self.choices = list(choices)
        self.negated = negated

    def _fields(self):
        return (self.operand, tuple(self.choices), self.negated)


class ExistsExpression(Expression):
    """``EXISTS { ... }`` / ``NOT EXISTS { ... }``"""

    __slots__ = ("group", "negated")

    def __init__(self, group: GroupPattern, negated: bool):
        self.group = group
        self.negated = negated


class Aggregate(Expression):
    """``COUNT/SUM/AVG/MIN/MAX/SAMPLE/GROUP_CONCAT`` (expr may be None for COUNT(*))."""

    __slots__ = ("function", "expression", "distinct", "separator")

    def __init__(
        self,
        function: str,
        expression: Optional[Expression],
        distinct: bool = False,
        separator: str = " ",
    ):
        function = function.upper()
        if function not in ("COUNT", "SUM", "AVG", "MIN", "MAX", "SAMPLE", "GROUP_CONCAT"):
            raise ValueError(f"unknown aggregate {function!r}")
        self.function = function
        self.expression = expression
        self.distinct = distinct
        self.separator = separator


# --------------------------------------------------------------------------
# Query forms
# --------------------------------------------------------------------------


class Projection(_Node):
    """One SELECT item: a bare variable or ``(expr AS ?alias)``."""

    __slots__ = ("expression", "alias")

    def __init__(self, expression: Expression, alias: Optional[Variable] = None):
        self.expression = expression
        self.alias = alias

    @property
    def variable(self) -> Optional[Variable]:
        """The output variable this projection binds."""
        if self.alias is not None:
            return self.alias
        if isinstance(self.expression, VariableExpression):
            return self.expression.variable
        return None


class OrderCondition(_Node):
    __slots__ = ("expression", "descending")

    def __init__(self, expression: Expression, descending: bool = False):
        self.expression = expression
        self.descending = descending

    @property
    def variable(self) -> Optional[Variable]:
        """The bare sort variable, or None for expression conditions.

        ``ORDER BY ?x``, ``ORDER BY ASC(?x)`` and ``ORDER BY (?x)`` all
        parse to a :class:`VariableExpression` condition, so this is the
        planner's one test for "can the sort key be read straight off a
        solution column".
        """
        if isinstance(self.expression, VariableExpression):
            return self.expression.variable
        return None


class SelectQuery(_Node):
    """A parsed SELECT query."""

    __slots__ = (
        "projections",
        "select_all",
        "distinct",
        "where",
        "group_by",
        "having",
        "order_by",
        "limit",
        "offset",
    )

    def __init__(
        self,
        projections: Sequence[Projection],
        where: GroupPattern,
        select_all: bool = False,
        distinct: bool = False,
        group_by: Optional[Sequence[Expression]] = None,
        having: Optional[Expression] = None,
        order_by: Optional[Sequence[OrderCondition]] = None,
        limit: Optional[int] = None,
        offset: Optional[int] = None,
    ):
        self.projections = list(projections)
        self.select_all = select_all
        self.distinct = distinct
        self.where = where
        self.group_by = list(group_by) if group_by else []
        self.having = having
        self.order_by = list(order_by) if order_by else []
        self.limit = limit
        self.offset = offset

    def _fields(self):
        return (
            tuple(self.projections),
            self.select_all,
            self.distinct,
            self.where,
            tuple(self.group_by),
            self.having,
            tuple(self.order_by),
            self.limit,
            self.offset,
        )

    def has_aggregates(self) -> bool:
        return bool(self.group_by) or any(
            _contains_aggregate(p.expression) for p in self.projections
        )

    # -- planner shape probes ------------------------------------------------
    #
    # The evaluator's streaming operators (bounded top-k ORDER BY, the
    # incremental GROUP BY fold) only cover queries whose sort keys and
    # aggregates are column-shaped.  The probes live here, next to the
    # grammar that produces the nodes, so every pipeline asks the same
    # question the same way.

    def order_variables(self) -> Optional[List[Variable]]:
        """The sort columns when every ORDER BY condition is a bare
        variable (in condition order), else None."""
        variables: List[Variable] = []
        for condition in self.order_by:
            variable = condition.variable
            if variable is None:
                return None
            variables.append(variable)
        return variables

    def aggregate_plan(self):
        """``(group_vars, items)`` when grouping/aggregation is bare-variable
        shaped, else None.

        ``items`` holds one entry per projection: ``("var", Variable, name)``
        for a bare grouped variable, ``("agg", Aggregate, name)`` for an
        aggregate whose argument is ``*`` or a bare variable.  This is the
        shape both the ID-space fast path and the streaming fold can
        execute without the expression interpreter.
        """
        group_vars: List[Variable] = []
        for expression in self.group_by:
            if not isinstance(expression, VariableExpression):
                return None
            group_vars.append(expression.variable)
        items = []
        for projection in self.projections:
            variable = projection.variable
            if variable is None:
                return None
            expression = projection.expression
            if isinstance(expression, VariableExpression):
                items.append(("var", expression.variable, variable.name))
            elif isinstance(expression, Aggregate):
                if expression.expression is not None and not isinstance(
                    expression.expression, VariableExpression
                ):
                    return None
                items.append(("agg", expression, variable.name))
            else:
                return None
        return group_vars, items

    def having_aggregate_conjuncts(self):
        """``[(aggregate, op, constant)]`` when HAVING is a conjunction of
        aggregate-vs-constant comparisons, else None.

        The shape the incremental fold can gate at result time:
        ``HAVING (COUNT(?s) > 3)``, ``HAVING (2 <= COUNT(?s) &&
        SUM(?n) < 10)`` and the like.  Each conjunct must compare one
        column-shaped aggregate (argument ``*`` or a bare variable)
        against a ground term; the aggregate may sit on either side
        (the operator is flipped so it always reads aggregate-vs-
        constant).  Anything else -- non-aggregate operands, nested
        expressions, OR -- returns None and stays on the materialized
        member-list path.
        """
        if self.having is None:
            return None
        conjuncts: List[Tuple[Aggregate, str, Term]] = []
        _FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}

        def walk(expression: Expression) -> bool:
            if isinstance(expression, AndExpression):
                return walk(expression.left) and walk(expression.right)
            if not isinstance(expression, CompareExpression):
                return False
            left, right = expression.left, expression.right
            if isinstance(left, Aggregate) and isinstance(right, TermExpression):
                aggregate, op, constant = left, expression.op, right.term
            elif isinstance(right, Aggregate) and isinstance(left, TermExpression):
                aggregate, op, constant = right, _FLIP[expression.op], left.term
            else:
                return False
            if aggregate.expression is not None and not isinstance(
                aggregate.expression, VariableExpression
            ):
                return False
            conjuncts.append((aggregate, op, constant))
            return True

        return conjuncts if walk(self.having) else None


class AskQuery(_Node):
    """A parsed ASK query."""

    __slots__ = ("where",)

    def __init__(self, where: GroupPattern):
        self.where = where


Query = Union[SelectQuery, AskQuery]


def _contains_aggregate(expression: Expression) -> bool:
    if isinstance(expression, Aggregate):
        return True
    for slot in expression.__slots__:
        value = getattr(expression, slot)
        if isinstance(value, Expression) and _contains_aggregate(value):
            return True
        if isinstance(value, list):
            if any(isinstance(v, Expression) and _contains_aggregate(v) for v in value):
                return True
    return False


def contains_aggregate(expression: Expression) -> bool:
    """Public wrapper: does *expression* contain an :class:`Aggregate`?"""
    return _contains_aggregate(expression)
