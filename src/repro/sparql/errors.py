"""Exception hierarchy for the SPARQL engine.

Endpoint simulation layers (timeouts, result limits) raise their own errors
on top of these; everything query-shaped funnels through ``SparqlError`` so
callers can catch one type at the boundary.
"""

from __future__ import annotations

__all__ = [
    "SparqlError",
    "SparqlSyntaxError",
    "SparqlEvaluationError",
    "UnsupportedSparqlError",
]


class SparqlError(Exception):
    """Base class for every error raised by the SPARQL engine."""


class SparqlSyntaxError(SparqlError):
    """The query text failed to tokenize or parse."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SparqlEvaluationError(SparqlError):
    """A well-formed query failed during evaluation (type errors etc.)."""


class UnsupportedSparqlError(SparqlSyntaxError):
    """The query uses SPARQL 1.1 syntax outside the implemented subset."""
