"""Result containers for SELECT and ASK queries.

``SelectResult`` mimics the shape of the SPARQL 1.1 JSON results format so
that the endpoint simulator can hand callers exactly what a remote endpoint
would: a ``head`` with variable names and ``results.bindings`` rows.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Iterator, List, Optional, Sequence

from ..rdf.terms import BNode, IRI, Literal, Term

__all__ = ["SelectResult", "AskResult", "binding_to_json", "term_from_json"]

Row = Dict[str, Optional[Term]]


def binding_to_json(term: Term) -> Dict[str, str]:
    """Encode one term as a SPARQL-JSON binding object."""
    if isinstance(term, IRI):
        return {"type": "uri", "value": term.value}
    if isinstance(term, BNode):
        return {"type": "bnode", "value": term.label}
    if isinstance(term, Literal):
        out: Dict[str, str] = {"type": "literal", "value": term.lexical}
        if term.language:
            out["xml:lang"] = term.language
        elif term.datatype:
            out["datatype"] = term.datatype
        return out
    raise TypeError(f"cannot serialize {term!r}")


def term_from_json(binding: Dict[str, str]) -> Term:
    """Decode a SPARQL-JSON binding object back into a term."""
    kind = binding["type"]
    if kind == "uri":
        return IRI(binding["value"])
    if kind == "bnode":
        return BNode(binding["value"])
    if kind in ("literal", "typed-literal"):
        return Literal(
            binding["value"],
            language=binding.get("xml:lang"),
            datatype=binding.get("datatype"),
        )
    raise ValueError(f"unknown binding type {kind!r}")


class SelectResult:
    """An ordered sequence of solution rows with a fixed variable header.

    Rows are dictionaries keyed by variable *name* (no ``?``); unbound
    variables are ``None``, matching how the JSON format omits them.
    """

    def __init__(self, variables: Sequence[str], rows: List[Row], truncated: bool = False):
        self.variables = list(variables)
        self.rows = rows
        #: set by the endpoint layer when a result-size limit cut the data off
        self.truncated = truncated

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __getitem__(self, index: int) -> Row:
        return self.rows[index]

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __repr__(self) -> str:
        return f"<SelectResult {len(self.rows)} rows x {self.variables}>"

    # -- column access helpers ----------------------------------------------

    def column(self, variable: str) -> List[Optional[Term]]:
        """All values of one output variable, in row order."""
        return [row.get(variable) for row in self.rows]

    def scalar(self) -> Optional[Term]:
        """The single value of a 1x1 result (e.g. ``SELECT (COUNT(*) AS ?n)``)."""
        if len(self.rows) != 1 or len(self.variables) != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, have {len(self.rows)}x{len(self.variables)}"
            )
        return self.rows[0].get(self.variables[0])

    def scalar_int(self, default: int = 0) -> int:
        """The single value as an int — the common COUNT(*) accessor."""
        value = self.scalar()
        if value is None:
            return default
        if isinstance(value, Literal):
            number = value.numeric_value()
            if number is not None:
                return int(number)
            try:
                return int(value.lexical)
            except ValueError:
                return default
        return default

    # -- serialization ---------------------------------------------------------

    def to_json(self) -> str:
        """SPARQL 1.1 Query Results JSON Format."""
        bindings = []
        for row in self.rows:
            encoded = {}
            for name, term in row.items():
                if term is not None:
                    encoded[name] = binding_to_json(term)
            bindings.append(encoded)
        document = {
            "head": {"vars": self.variables},
            "results": {"bindings": bindings},
        }
        return json.dumps(document, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SelectResult":
        document = json.loads(text)
        variables = document["head"]["vars"]
        rows: List[Row] = []
        for binding in document["results"]["bindings"]:
            row: Row = {name: None for name in variables}
            for name, encoded in binding.items():
                row[name] = term_from_json(encoded)
            rows.append(row)
        return cls(variables, rows)

    def to_csv(self) -> str:
        """SPARQL 1.1 CSV results: header row then plain lexical values."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.variables)
        for row in self.rows:
            record = []
            for name in self.variables:
                term = row.get(name)
                if term is None:
                    record.append("")
                elif isinstance(term, IRI):
                    record.append(term.value)
                elif isinstance(term, BNode):
                    record.append(f"_:{term.label}")
                else:
                    record.append(term.lexical)
            writer.writerow(record)
        return buffer.getvalue()


class AskResult:
    """The boolean result of an ASK query, serializable like SelectResult."""

    def __init__(self, value: bool):
        self.value = bool(value)

    def __bool__(self) -> bool:
        return self.value

    def __eq__(self, other) -> bool:
        if isinstance(other, AskResult):
            return other.value == self.value
        if isinstance(other, bool):
            return other == self.value
        return NotImplemented

    def __hash__(self) -> int:
        return hash((AskResult, self.value))

    def __repr__(self) -> str:
        return f"AskResult({self.value})"

    def to_json(self) -> str:
        return json.dumps({"head": {}, "boolean": self.value})
