"""SPARQL 1.1 property paths (the subset schema tools use).

Supported path syntax in the predicate position:

* ``iri`` and ``a``            -- plain links
* ``^path``                    -- inverse
* ``path1 / path2``            -- sequence
* ``path1 | path2``            -- alternative
* ``path*`` / ``path+``        -- reflexive / transitive closure

This enables the "inferred schema" queries of the LODeX lineage, e.g.::

    SELECT ?s WHERE { ?s a/rdfs:subClassOf* ex:Agent }

Path evaluation yields (subject, object) pairs; closures are computed by
BFS from the bound side (or over the whole node universe when both ends
are unbound, per the spec's zero-length-path semantics).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional, Set, Tuple, Union

from ..rdf.graph import Graph
from ..rdf.terms import IRI, Term

__all__ = [
    "Path",
    "LinkPath",
    "InversePath",
    "SequencePath",
    "AlternativePath",
    "ClosurePath",
    "evaluate_path",
    "evaluate_path_ids",
    "is_path",
]


class Path:
    """Base class: structural equality + repr over __slots__."""

    __slots__ = ()

    def _fields(self) -> Tuple:
        return tuple(getattr(self, name) for name in self.__slots__)

    def __eq__(self, other) -> bool:
        return type(other) is type(self) and other._fields() == self._fields()

    def __hash__(self) -> int:
        return hash((type(self),) + self._fields())

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={getattr(self, n)!r}" for n in self.__slots__)
        return f"{type(self).__name__}({inner})"


class LinkPath(Path):
    """A plain predicate IRI used inside a larger path."""

    __slots__ = ("iri",)

    def __init__(self, iri: IRI):
        self.iri = iri


class InversePath(Path):
    __slots__ = ("inner",)

    def __init__(self, inner: "PathLike"):
        self.inner = inner


class SequencePath(Path):
    __slots__ = ("steps",)

    def __init__(self, steps):
        self.steps = tuple(steps)
        if len(self.steps) < 2:
            raise ValueError("sequence path needs at least two steps")


class AlternativePath(Path):
    __slots__ = ("choices",)

    def __init__(self, choices):
        self.choices = tuple(choices)
        if len(self.choices) < 2:
            raise ValueError("alternative path needs at least two choices")


class ClosurePath(Path):
    """``path*`` (include_zero=True) or ``path+`` (include_zero=False)."""

    __slots__ = ("inner", "include_zero")

    def __init__(self, inner: "PathLike", include_zero: bool):
        self.inner = inner
        self.include_zero = include_zero


PathLike = Union[Path, IRI]


def is_path(value) -> bool:
    return isinstance(value, Path)


def _node_universe(graph: Graph) -> Set[Term]:
    """All subjects and objects -- the domain of zero-length paths."""
    nodes: Set[Term] = set()
    for triple in graph.triples():
        nodes.add(triple.subject)
        nodes.add(triple.object)
    return nodes


def _step_pairs(
    graph: Graph, path: PathLike, subject: Optional[Term], obj: Optional[Term]
) -> Iterator[Tuple[Term, Term]]:
    """(s, o) pairs for a single-step path with optional bindings."""
    if isinstance(path, IRI):
        for triple in graph.triples(subject, path, obj):
            yield triple.subject, triple.object
        return
    if isinstance(path, LinkPath):
        yield from _step_pairs(graph, path.iri, subject, obj)
        return
    if isinstance(path, InversePath):
        for o, s in _step_pairs(graph, path.inner, obj, subject):
            yield s, o
        return
    if isinstance(path, AlternativePath):
        seen: Set[Tuple[Term, Term]] = set()
        for choice in path.choices:
            for pair in _step_pairs(graph, choice, subject, obj):
                if pair not in seen:
                    seen.add(pair)
                    yield pair
        return
    if isinstance(path, SequencePath):
        yield from _sequence_pairs(graph, path.steps, subject, obj)
        return
    if isinstance(path, ClosurePath):
        yield from _closure_pairs(graph, path, subject, obj)
        return
    raise TypeError(f"not a path: {path!r}")


def _sequence_pairs(
    graph: Graph, steps, subject: Optional[Term], obj: Optional[Term]
) -> Iterator[Tuple[Term, Term]]:
    first, rest = steps[0], steps[1:]
    if not rest:
        yield from _step_pairs(graph, first, subject, obj)
        return
    seen: Set[Tuple[Term, Term]] = set()
    for s, middle in _step_pairs(graph, first, subject, None):
        for _, o in _sequence_pairs(graph, rest, middle, obj):
            if (s, o) not in seen:
                seen.add((s, o))
                yield s, o


def _closure_pairs(
    graph: Graph, path: ClosurePath, subject: Optional[Term], obj: Optional[Term]
) -> Iterator[Tuple[Term, Term]]:
    inner = path.inner

    def forward_reachable(start: Term) -> Set[Term]:
        reached: Set[Term] = set()
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for _, target in _step_pairs(graph, inner, node, None):
                if target not in reached:
                    reached.add(target)
                    queue.append(target)
        return reached

    def backward_reachable(end: Term) -> Set[Term]:
        reached: Set[Term] = set()
        queue = deque([end])
        while queue:
            node = queue.popleft()
            for source, _ in _step_pairs(graph, inner, None, node):
                if source not in reached:
                    reached.add(source)
                    queue.append(source)
        return reached

    if subject is not None:
        targets = forward_reachable(subject)
        if path.include_zero:
            targets = targets | {subject}
        for target in targets:
            if obj is None or obj == target:
                yield subject, target
        return

    if obj is not None:
        sources = backward_reachable(obj)
        if path.include_zero:
            sources = sources | {obj}
        for source in sources:
            yield source, obj
        return

    # both unbound: closure from every node in the universe
    universe = _node_universe(graph)
    seen: Set[Tuple[Term, Term]] = set()
    for node in universe:
        targets = forward_reachable(node)
        if path.include_zero:
            targets = targets | {node}
        for target in targets:
            if (node, target) not in seen:
                seen.add((node, target))
                yield node, target


def evaluate_path(
    graph: Graph, path: PathLike, subject: Optional[Term], obj: Optional[Term]
) -> Iterator[Tuple[Term, Term]]:
    """All (subject, object) pairs connected by *path* under the bindings."""
    yield from _step_pairs(graph, path, subject, obj)


# --------------------------------------------------------------------------
# ID-level fast path
#
# Mirrors of the term-level functions above operating on dictionary IDs
# (ints) from the graph's intern table.  The hash-join evaluator uses these
# so closures and sequences never hash term objects; pairs decode back to
# terms only at the result boundary.  Semantics are identical to the
# term-level code for endpoints that are interned; callers handle
# non-interned endpoint terms (only reachable through zero-length closure
# semantics) at the term level.
# --------------------------------------------------------------------------


def _step_pairs_ids(
    graph: Graph, path: PathLike, subject: Optional[int], obj: Optional[int]
) -> Iterator[Tuple[int, int]]:
    """(s, o) ID pairs for a single-step path with optional ID bindings."""
    if isinstance(path, IRI):
        predicate = graph.lookup_id(path)
        if predicate is None:
            return
        for s, _, o in graph.triples_ids(subject, predicate, obj):
            yield s, o
        return
    if isinstance(path, LinkPath):
        yield from _step_pairs_ids(graph, path.iri, subject, obj)
        return
    if isinstance(path, InversePath):
        for o, s in _step_pairs_ids(graph, path.inner, obj, subject):
            yield s, o
        return
    if isinstance(path, AlternativePath):
        seen: Set[Tuple[int, int]] = set()
        for choice in path.choices:
            for pair in _step_pairs_ids(graph, choice, subject, obj):
                if pair not in seen:
                    seen.add(pair)
                    yield pair
        return
    if isinstance(path, SequencePath):
        yield from _sequence_pairs_ids(graph, path.steps, subject, obj)
        return
    if isinstance(path, ClosurePath):
        yield from _closure_pairs_ids(graph, path, subject, obj)
        return
    raise TypeError(f"not a path: {path!r}")


def _sequence_pairs_ids(
    graph: Graph, steps, subject: Optional[int], obj: Optional[int]
) -> Iterator[Tuple[int, int]]:
    first, rest = steps[0], steps[1:]
    if not rest:
        yield from _step_pairs_ids(graph, first, subject, obj)
        return
    seen: Set[Tuple[int, int]] = set()
    for s, middle in _step_pairs_ids(graph, first, subject, None):
        for _, o in _sequence_pairs_ids(graph, rest, middle, obj):
            if (s, o) not in seen:
                seen.add((s, o))
                yield s, o


def _closure_pairs_ids(
    graph: Graph, path: ClosurePath, subject: Optional[int], obj: Optional[int]
) -> Iterator[Tuple[int, int]]:
    inner = path.inner

    def forward_reachable(start: int) -> Set[int]:
        reached: Set[int] = set()
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for _, target in _step_pairs_ids(graph, inner, node, None):
                if target not in reached:
                    reached.add(target)
                    queue.append(target)
        return reached

    def backward_reachable(end: int) -> Set[int]:
        reached: Set[int] = set()
        queue = deque([end])
        while queue:
            node = queue.popleft()
            for source, _ in _step_pairs_ids(graph, inner, None, node):
                if source not in reached:
                    reached.add(source)
                    queue.append(source)
        return reached

    if subject is not None:
        targets = forward_reachable(subject)
        if path.include_zero:
            targets = targets | {subject}
        for target in targets:
            if obj is None or obj == target:
                yield subject, target
        return

    if obj is not None:
        sources = backward_reachable(obj)
        if path.include_zero:
            sources = sources | {obj}
        for source in sources:
            yield source, obj
        return

    universe = graph.node_ids()
    seen: Set[Tuple[int, int]] = set()
    for node in universe:
        targets = forward_reachable(node)
        if path.include_zero:
            targets = targets | {node}
        for target in targets:
            if (node, target) not in seen:
                seen.add((node, target))
                yield node, target


def evaluate_path_ids(
    graph: Graph, path: PathLike, subject: Optional[int], obj: Optional[int]
) -> Iterator[Tuple[int, int]]:
    """All (subject, object) ID pairs connected by *path* under ID bindings."""
    yield from _step_pairs_ids(graph, path, subject, obj)
