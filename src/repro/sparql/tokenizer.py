"""Tokenizer for the SPARQL subset.

Produces a flat token list consumed by :mod:`repro.sparql.parser`.  Keywords
are recognized case-insensitively (per the SPARQL grammar) and normalized to
upper case in the token stream.
"""

from __future__ import annotations

import re
from typing import List

from .errors import SparqlSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "REDUCED",
        "WHERE",
        "FILTER",
        "OPTIONAL",
        "UNION",
        "PREFIX",
        "BASE",
        "ORDER",
        "BY",
        "ASC",
        "DESC",
        "LIMIT",
        "OFFSET",
        "GROUP",
        "HAVING",
        "AS",
        "ASK",
        "CONSTRUCT",
        "DESCRIBE",
        "COUNT",
        "SUM",
        "AVG",
        "MIN",
        "MAX",
        "SAMPLE",
        "GROUP_CONCAT",
        "REGEX",
        "STR",
        "LANG",
        "LANGMATCHES",
        "DATATYPE",
        "BOUND",
        "IRI",
        "URI",
        "ISIRI",
        "ISURI",
        "ISBLANK",
        "ISLITERAL",
        "ISNUMERIC",
        "CONTAINS",
        "STRSTARTS",
        "STRENDS",
        "STRLEN",
        "UCASE",
        "LCASE",
        "CONCAT",
        "REPLACE",
        "ABS",
        "CEIL",
        "FLOOR",
        "ROUND",
        "NOT",
        "IN",
        "EXISTS",
        "VALUES",
        "UNDEF",
        "TRUE",
        "FALSE",
        "SEPARATOR",
        "COALESCE",
        "IF",
        "STRAFTER",
        "STRBEFORE",
    }
)

# PNAME is tried before NAME so "dcat:Dataset" lexes as one prefixed name
# rather than a keyword-lookalike followed by a colon.
_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>\#[^\n]*)
  | (?P<IRIREF><[^<>"{}|^`\\\x00-\x20]*>)
  | (?P<VAR>[?$][A-Za-z_][A-Za-z0-9_]*)
  | (?P<LONG_STRING>\"\"\"(?:[^"\\]|\\.|"(?!""))*\"\"\"|'''(?:[^'\\]|\\.|'(?!''))*''')
  | (?P<STRING>"(?:[^"\\\n\r]|\\.)*"|'(?:[^'\\\n\r]|\\.)*')
  | (?P<LANGTAG>@[a-zA-Z]+(?:-[a-zA-Z0-9]+)*)
  | (?P<DOUBLE_CARET>\^\^)
  | (?P<CARET>\^)
  | (?P<DOUBLE>[+-]?(?:\d+\.\d*|\.\d+|\d+)[eE][+-]?\d+)
  | (?P<DECIMAL>[+-]?\d*\.\d+)
  | (?P<INTEGER>[+-]?\d+)
  | (?P<BNODE>_:[A-Za-z0-9_][A-Za-z0-9_.-]*)
  | (?P<PNAME>[A-Za-z_][A-Za-z0-9_.-]*:[A-Za-z0-9_]?[A-Za-z0-9_.%-]*|:[A-Za-z0-9_][A-Za-z0-9_.-]*|[A-Za-z_][A-Za-z0-9_.-]*:(?![A-Za-z0-9_]))
  | (?P<NAME>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<OP>&&|\|\||!=|<=|>=|[=<>!*/+\-|])
  | (?P<PUNCT>[{}()\[\].;,])
    """,
    re.VERBOSE,
)


class Token:
    """A single lexical token with position info for error messages."""

    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int, column: int):
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "KEYWORD" and self.text in names


def tokenize(query: str) -> List[Token]:
    """Tokenize *query*, raising :class:`SparqlSyntaxError` on junk input."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(query):
        match = _TOKEN_RE.match(query, pos)
        if not match:
            raise SparqlSyntaxError(
                f"unexpected character {query[pos]!r}", line, pos - line_start + 1
            )
        kind = match.lastgroup
        text = match.group()
        column = pos - line_start + 1
        if kind == "NAME":
            upper = text.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, line, column))
            elif upper == "A" or text == "a":
                tokens.append(Token("A", "a", line, column))
            else:
                raise SparqlSyntaxError(f"unexpected name {text!r}", line, column)
        elif kind not in ("WS", "COMMENT"):
            tokens.append(Token(kind, text, line, column))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = pos + text.rindex("\n") + 1
        pos = match.end()
    tokens.append(Token("EOF", "", line, pos - line_start + 1))
    return tokens
